//! The marketplace crawler (§3.2).
//!
//! One [`MarketplaceCrawler`] per marketplace: it fetches the storefront,
//! seeds the frontier with every platform's listing index, walks pages
//! depth-first, opens every offer, and extracts an [`OfferRecord`]. The
//! crawler is polite (client-side token bucket), robots-respecting (the
//! [`acctrade_net::client::Client`] enforces that), and never interacts
//! with the offers — the paper's passive-collection constraint.

use crate::extract;
use crate::frontier::{CrawlOrder, Frontier};
use crate::record::OfferRecord;
use acctrade_market::config::MarketplaceId;
use acctrade_net::client::Client;
use acctrade_net::http::Status;
use acctrade_net::url::Url;

/// Statistics of one marketplace crawl.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Pages fetched.
    pub pages_fetched: usize,
    /// Offers collected.
    pub offers_collected: usize,
    /// Fetch errors.
    pub fetch_errors: usize,
    /// Gone offers.
    pub gone_offers: usize,
}

/// Crawler for one public marketplace.
pub struct MarketplaceCrawler<'a> {
    client: &'a Client,
    market: MarketplaceId,
    frontier: Frontier,
}

impl<'a> MarketplaceCrawler<'a> {
    /// Create a crawler bound to a client and marketplace (depth-first,
    /// the paper's strategy).
    pub fn new(client: &'a Client, market: MarketplaceId) -> MarketplaceCrawler<'a> {
        MarketplaceCrawler { client, market, frontier: Frontier::new() }
    }

    /// Create a crawler with an explicit visit order (the ablation knob).
    pub fn with_order(
        client: &'a Client,
        market: MarketplaceId,
        order: CrawlOrder,
    ) -> MarketplaceCrawler<'a> {
        MarketplaceCrawler { client, market, frontier: Frontier::with_order(order) }
    }

    /// The marketplace this crawler covers.
    pub fn market(&self) -> MarketplaceId {
        self.market
    }

    /// Crawl the whole marketplace once. `iteration` stamps the records.
    pub fn crawl(&mut self, iteration: usize) -> (Vec<OfferRecord>, CrawlStats) {
        let mut stats = CrawlStats::default();
        let host = self.market.host();
        let base = Url::http(host, "/");

        // Seed: the storefront's platform listing links (the paper's
        // manually identified seed URLs).
        let Ok(front) = self.client.get_url(&base) else {
            stats.fetch_errors += 1;
            self.record_stats(&stats);
            return (Vec::new(), stats);
        };
        stats.pages_fetched += 1;
        for path in extract::parse_storefront(&front.text()) {
            self.frontier.push(format!("http://{host}{path}"));
        }

        let records = self.drain_frontier(iteration, &mut stats);
        self.record_stats(&stats);
        (records, stats)
    }

    /// Fetch the storefront only and return the seed listing URLs, one
    /// per platform chain. The parallel engine runs this discovery phase
    /// sequentially on the coordinator, then crawls each chain as its
    /// own shard via [`MarketplaceCrawler::crawl_chain`].
    pub fn discover(&mut self) -> (Vec<String>, CrawlStats) {
        let mut stats = CrawlStats::default();
        let host = self.market.host();
        let base = Url::http(host, "/");
        let Ok(front) = self.client.get_url(&base) else {
            stats.fetch_errors += 1;
            self.record_stats(&stats);
            return (Vec::new(), stats);
        };
        stats.pages_fetched += 1;
        let seeds: Vec<String> = extract::parse_storefront(&front.text())
            .into_iter()
            .map(|path| format!("http://{host}{path}"))
            .collect();
        self.record_stats(&stats);
        (seeds, stats)
    }

    /// Crawl one platform listing chain starting from `seed_url` (a URL
    /// returned by [`MarketplaceCrawler::discover`]). Walks the chain's
    /// pagination and every offer it links, exactly as the whole-market
    /// crawl would have.
    pub fn crawl_chain(
        &mut self,
        seed_url: &str,
        iteration: usize,
    ) -> (Vec<OfferRecord>, CrawlStats) {
        let mut stats = CrawlStats::default();
        self.frontier.push(seed_url.to_string());
        let records = self.drain_frontier(iteration, &mut stats);
        self.record_stats(&stats);
        (records, stats)
    }

    /// DFS over listing pages and offers until the frontier is empty.
    fn drain_frontier(&mut self, iteration: usize, stats: &mut CrawlStats) -> Vec<OfferRecord> {
        let host = self.market.host();
        let mut records = Vec::new();
        while let Some(url) = self.frontier.pop() {
            telemetry::with_recorder(|r| {
                r.observe("crawl.frontier_depth", &[], self.frontier.pending() as u64);
            });
            let resp = match self.client.get(&url) {
                Ok(r) => r,
                Err(_) => {
                    stats.fetch_errors += 1;
                    continue;
                }
            };
            stats.pages_fetched += 1;
            if resp.status == Status::Gone {
                stats.gone_offers += 1;
                continue;
            }
            if resp.status != Status::Ok {
                continue;
            }
            let is_offer = url.contains("/offer/");
            if is_offer {
                let mut record = extract::parse_offer(self.market, &resp.text());
                record.offer_url = url.clone();
                record.collected_unix = self.client.virtual_now_unix();
                record.iteration = iteration;
                records.push(record);
                stats.offers_collected += 1;
            } else {
                let page = extract::parse_index(&resp.text());
                // DFS: push the next listing page first so offers on the
                // current page are drained before moving on.
                if let Some(next) = page.next_path {
                    self.frontier.push(format!("http://{host}{next}"));
                }
                for offer in page.offer_paths {
                    self.frontier.push(format!("http://{host}{offer}"));
                }
            }
        }
        records
    }

    /// Mirror one crawl's stats into the current telemetry recorder, keyed
    /// by marketplace — the `crawl` section of the run manifest.
    fn record_stats(&self, stats: &CrawlStats) {
        telemetry::with_recorder(|r| {
            let market = self.market.name();
            let labels = [("marketplace", market)];
            r.incr("crawl.pages", &labels, stats.pages_fetched as u64);
            r.incr("crawl.offers", &labels, stats.offers_collected as u64);
            r.incr("crawl.fetch_errors", &labels, stats.fetch_errors as u64);
            r.incr("crawl.gone_offers", &labels, stats.gone_offers as u64);
        });
    }

    /// Forget visit history (between iterations we re-visit everything;
    /// the campaign layer dedups offers by URL).
    pub fn reset(&mut self) {
        self.frontier.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::sim::SimNet;
    use acctrade_workload::world::{World, WorldParams};

    #[test]
    fn crawls_every_active_offer_of_a_marketplace() {
        let world = World::generate(WorldParams { seed: 5, scale: 0.01 });
        let net = SimNet::new(5);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1").with_politeness(50.0, 10.0);

        let market = MarketplaceId::Accsmarket;
        let mut crawler = MarketplaceCrawler::new(&client, market);
        let (records, stats) = crawler.crawl(0);

        let active = world.markets[&market].read().active_count();
        assert_eq!(records.len(), active, "must collect every active offer");
        assert_eq!(stats.offers_collected, active);
        assert_eq!(stats.fetch_errors, 0);
        // Every record parsed a price and platform.
        assert!(records.iter().all(|r| r.price_usd.is_some()));
        assert!(records.iter().all(|r| r.platform.is_some()));
    }

    #[test]
    fn visible_records_carry_handles() {
        let world = World::generate(WorldParams { seed: 6, scale: 0.02 });
        let net = SimNet::new(6);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::FameSwap);
        let (records, _) = crawler.crawl(0);
        let visible: Vec<_> = records.iter().filter(|r| r.is_visible()).collect();
        assert!(!visible.is_empty(), "some offers must link profiles");
        for v in &visible {
            assert!(v.handle.is_some(), "visible offer without handle: {}", v.offer_url);
        }
        // Roughly the platform-weighted share of ~30%/visible-fraction.
        let frac = visible.len() as f64 / records.len() as f64;
        assert!((0.1..0.75).contains(&frac), "visible fraction {frac}");
    }

    #[test]
    fn second_crawl_after_reset_sees_churned_market() {
        let mut world = World::generate(WorldParams { seed: 7, scale: 0.01 });
        let net = SimNet::new(7);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let market = MarketplaceId::Z2U;
        let mut crawler = MarketplaceCrawler::new(&client, market);
        let (first, _) = crawler.crawl(0);
        world.step_iteration(net.clock().now_unix());
        crawler.reset();
        let (second, _) = crawler.crawl(1);
        // Churn + replenishment must change the active set.
        let first_urls: std::collections::HashSet<_> =
            first.iter().map(|r| r.offer_url.clone()).collect();
        let new_offers = second.iter().filter(|r| !first_urls.contains(&r.offer_url)).count();
        assert!(new_offers > 0, "replenished offers must appear");
    }

    #[test]
    fn hidden_seller_market_yields_no_sellers() {
        let world = World::generate(WorldParams { seed: 8, scale: 0.02 });
        let net = SimNet::new(8);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let mut crawler = MarketplaceCrawler::new(&client, MarketplaceId::SocialTradia);
        let (records, _) = crawler.crawl(0);
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.seller.is_none()));
    }
}
