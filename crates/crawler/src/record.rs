//! Dataset records — what the measurement campaign stores.
//!
//! The shapes mirror §3.2's collection: "offer URL, title, seller
//! information, price, payment methods, social media account handles,
//! account properties ..., and the offer description" for marketplaces;
//! profile metadata and posts for visible accounts; and the §4.2 manual
//! fields for underground postings.

use foundation::json;
use foundation::{json_codec_enum, json_codec_struct};

/// One scraped marketplace offer.
#[derive(Debug, Clone, PartialEq)]
pub struct OfferRecord {
    /// Marketplace display name.
    pub marketplace: String,
    /// Full offer URL.
    pub offer_url: String,
    /// Title.
    pub title: String,
    /// Seller username, when the marketplace displays sellers.
    pub seller: Option<String>,
    /// Seller country.
    pub seller_country: Option<String>,
    /// Parsed price in USD.
    pub price_usd: Option<f64>,
    /// Platform name as advertised.
    pub platform: Option<String>,
    /// Category.
    pub category: Option<String>,
    /// Claimed followers.
    pub claimed_followers: Option<u64>,
    /// Claims verified.
    pub claims_verified: bool,
    /// Monthly revenue usd.
    pub monthly_revenue_usd: Option<f64>,
    /// Income source.
    pub income_source: Option<String>,
    /// Description.
    pub description: Option<String>,
    /// Link to the social profile, when advertised (the "visible
    /// account" marker).
    pub profile_link: Option<String>,
    /// Handle extracted from the profile link.
    pub handle: Option<String>,
    /// Virtual time of collection (unix seconds).
    pub collected_unix: i64,
    /// Crawl iteration that first saw this offer.
    pub iteration: usize,
}

impl OfferRecord {
    /// Does the record point at a visible social profile?
    pub fn is_visible(&self) -> bool {
        self.profile_link.is_some()
    }
}

/// Outcome of querying a platform API for one account.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchStatus {
    /// 200 with profile JSON.
    Ok,
    /// 403 — banned (X's `Forbidden`).
    Forbidden,
    /// 404 — deleted / renamed / suspended-elsewhere.
    NotFound,
    /// Transport-level failure.
    Error,
}

impl FetchStatus {
    /// §8's conservative "inactive" definition: Forbidden or NotFound.
    pub fn is_inactive(self) -> bool {
        matches!(self, FetchStatus::Forbidden | FetchStatus::NotFound)
    }
}

/// One resolved social media profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRecord {
    /// Platform.
    pub platform: String,
    /// Handle.
    pub handle: String,
    /// Status.
    pub status: FetchStatus,
    /// The body of a failed lookup (the platform's phrasing: "Page Not
    /// Found", "Forbidden", ...).
    pub status_detail: Option<String>,
    /// User id.
    pub user_id: Option<u64>,
    /// Name.
    pub name: Option<String>,
    /// Description.
    pub description: Option<String>,
    /// Location.
    pub location: Option<String>,
    /// Category.
    pub category: Option<String>,
    /// Email.
    pub email: Option<String>,
    /// Phone.
    pub phone: Option<String>,
    /// Website.
    pub website: Option<String>,
    /// Created unix.
    pub created_unix: Option<i64>,
    /// Account type.
    pub account_type: Option<String>,
    /// Followers.
    pub followers: Option<u64>,
    /// Post count.
    pub post_count: Option<u64>,
}

/// One collected post.
#[derive(Debug, Clone, PartialEq)]
pub struct PostRecord {
    /// Platform.
    pub platform: String,
    /// Handle.
    pub handle: String,
    /// Author id.
    pub author_id: u64,
    /// Post id.
    pub post_id: u64,
    /// Text.
    pub text: String,
    /// Created unix.
    pub created_unix: i64,
    /// Likes.
    pub likes: u64,
    /// Views.
    pub views: u64,
}

/// One manually collected underground posting (§4.2's fields).
#[derive(Debug, Clone, PartialEq)]
pub struct UndergroundRecord {
    /// Market.
    pub market: String,
    /// Url.
    pub url: String,
    /// Title.
    pub title: String,
    /// Body.
    pub body: String,
    /// Author.
    pub author: String,
    /// Platform.
    pub platform: Option<String>,
    /// Published unix.
    pub published_unix: Option<i64>,
    /// Replies.
    pub replies: Option<u32>,
    /// Price usd.
    pub price_usd: Option<f64>,
    /// Quantity.
    pub quantity: Option<u32>,
    /// The paper captured a screenshot of every posting.
    pub screenshot: bool,
}

/// One repricing of an already-collected offer, observed when a later
/// crawl iteration re-visits the same offer URL and parses a different
/// price than the iteration that first recorded it.
///
/// Deliberately *not* part of [`Dataset`]: the paper's released dataset
/// keeps one row per offer, and this series is a separate stream (WAL
/// kind `KIND_PRICE_OBS`) so enabling the economy subsystem cannot
/// perturb a single byte of the baseline artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct PriceObservationRecord {
    /// Marketplace display name.
    pub marketplace: String,
    /// Offer URL (the dedup identity of the underlying offer).
    pub offer_url: String,
    /// Crawl iteration that observed the new price.
    pub iteration: usize,
    /// Virtual time of the observation (unix seconds).
    pub collected_unix: i64,
    /// Price parsed by the previous observation of this offer.
    pub prev_price_usd: f64,
    /// Price parsed now.
    pub price_usd: f64,
}

/// The full campaign dataset.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    /// Offers.
    pub offers: Vec<OfferRecord>,
    /// Profiles.
    pub profiles: Vec<ProfileRecord>,
    /// Posts.
    pub posts: Vec<PostRecord>,
    /// Underground.
    pub underground: Vec<UndergroundRecord>,
}

impl Dataset {
    /// Offers that advertise a visible profile.
    pub fn visible_offers(&self) -> impl Iterator<Item = &OfferRecord> {
        self.offers.iter().filter(|o| o.is_visible())
    }

    /// Serialize to pretty JSON (the release format of the paper's
    /// artifact).
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Parse a dataset back from JSON.
    pub fn from_json(text: &str) -> Result<Dataset, json::JsonError> {
        json::from_str(text)
    }

    /// Merge another dataset into this one.
    pub fn merge(&mut self, other: Dataset) {
        self.offers.extend(other.offers);
        self.profiles.extend(other.profiles);
        self.posts.extend(other.posts);
        self.underground.extend(other.underground);
    }
}

json_codec_enum! {
    FetchStatus { Ok, Forbidden, NotFound, Error }
}

json_codec_struct! {
    OfferRecord {
        marketplace, offer_url, title, seller, seller_country, price_usd,
        platform, category, claimed_followers, claims_verified,
        monthly_revenue_usd, income_source, description, profile_link,
        handle, collected_unix, iteration,
    }
    ProfileRecord {
        platform, handle, status, status_detail, user_id, name, description,
        location, category, email, phone, website, created_unix,
        account_type, followers, post_count,
    }
    PostRecord {
        platform, handle, author_id, post_id, text, created_unix, likes,
        views,
    }
    UndergroundRecord {
        market, url, title, body, author, platform, published_unix, replies,
        price_usd, quantity, screenshot,
    }
    PriceObservationRecord {
        marketplace, offer_url, iteration, collected_unix, prev_price_usd,
        price_usd,
    }
    Dataset { offers, profiles, posts, underground }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer(visible: bool) -> OfferRecord {
        OfferRecord {
            marketplace: "Accsmarket".into(),
            offer_url: "http://accsmarket.com/offer/1".into(),
            title: "IG page".into(),
            seller: Some("seller1".into()),
            seller_country: None,
            price_usd: Some(298.0),
            platform: Some("Instagram".into()),
            category: Some("Fashion/Style".into()),
            claimed_followers: Some(26_998),
            claims_verified: false,
            monthly_revenue_usd: None,
            income_source: None,
            description: None,
            profile_link: visible.then(|| "http://instagram.example/x".to_string()),
            handle: visible.then(|| "x".to_string()),
            collected_unix: 0,
            iteration: 0,
        }
    }

    #[test]
    fn visibility_marker() {
        assert!(offer(true).is_visible());
        assert!(!offer(false).is_visible());
    }

    #[test]
    fn fetch_status_inactive_semantics() {
        assert!(FetchStatus::Forbidden.is_inactive());
        assert!(FetchStatus::NotFound.is_inactive());
        assert!(!FetchStatus::Ok.is_inactive());
        assert!(!FetchStatus::Error.is_inactive());
    }

    #[test]
    fn dataset_json_roundtrip() {
        let mut d = Dataset::default();
        d.offers.push(offer(true));
        d.offers.push(offer(false));
        let back = Dataset::from_json(&d.to_json()).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.visible_offers().count(), 1);
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Dataset::default();
        a.offers.push(offer(true));
        let mut b = Dataset::default();
        b.offers.push(offer(false));
        a.merge(b);
        assert_eq!(a.offers.len(), 2);
    }
}
