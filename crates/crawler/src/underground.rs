//! The manual underground collector (§3.2 "Underground Forum Account
//! Collection").
//!
//! Underground forums defeat automation (registration walls, non-standard
//! CAPTCHAs, link-restricted navigation), so the paper collected them
//! manually with two strategies: (i) browsing the account/social-media
//! sections, and (ii) searching `[account/s | profile/s] [platform]`,
//! recording "data from the first five pages of results, up to 25
//! postings per social media platform".
//!
//! [`UndergroundCollector`] drives a *manual-persona* client over a Tor
//! circuit through exactly that procedure.

use crate::record::UndergroundRecord;
use acctrade_html::{parse, Selector};
use acctrade_net::client::Client;
use acctrade_net::http::Status;
use acctrade_social::platform::{Platform, ALL_PLATFORMS};
use std::collections::BTreeSet;

/// §3.2's collection caps.
pub(crate) const MAX_PAGES: usize = 5;
/// Max posts per platform.
pub(crate) const MAX_POSTS_PER_PLATFORM: usize = 25;

/// Statistics of one market's collection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CollectStats {
    /// Registered.
    pub registered: bool,
    /// Pages browsed.
    pub pages_browsed: usize,
    /// Searches run.
    pub searches_run: usize,
    /// Posts recorded.
    pub posts_recorded: usize,
}

/// Collector for one underground market.
pub struct UndergroundCollector<'a> {
    client: &'a Client,
    host: String,
    market_name: String,
}

impl<'a> UndergroundCollector<'a> {
    /// Bind to a forum host. The client must be a manual persona riding a
    /// Tor circuit.
    pub fn new(client: &'a Client, host: impl Into<String>, market_name: impl Into<String>) -> Self {
        UndergroundCollector { client, host: host.into(), market_name: market_name.into() }
    }

    /// Run the full manual procedure: register, browse sections, search
    /// per platform, and record postings under the §3.2 caps.
    pub fn collect(&self) -> (Vec<UndergroundRecord>, CollectStats) {
        let mut stats = CollectStats::default();
        let mut records = Vec::new();
        let mut seen_threads: BTreeSet<String> = BTreeSet::new();
        let mut per_platform: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();

        // Registration (the manual persona solves the CAPTCHA).
        let Ok(resp) = self.client.get(&format!("http://{}/register", self.host)) else {
            return (records, stats);
        };
        if resp.status != Status::Ok {
            return (records, stats); // wall not passable (e.g. gave up on CAPTCHA)
        }
        stats.registered = true;

        // Index first — navigation is link-restricted.
        if self.client.get(&format!("http://{}/", self.host)).is_err() {
            return (records, stats);
        }
        stats.pages_browsed += 1;

        // Strategy (i): browse the account/social-media sections.
        for section in ["accounts", "social-media"] {
            for page in 0..MAX_PAGES {
                let url = if page == 0 {
                    format!("http://{}/section/{}", self.host, section)
                } else {
                    format!("http://{}/section/{}?page={}", self.host, section, page)
                };
                let Ok(resp) = self.client.get(&url) else { break };
                if resp.status != Status::Ok {
                    break;
                }
                stats.pages_browsed += 1;
                let thread_paths = extract_thread_links(&resp.text());
                if thread_paths.is_empty() {
                    break;
                }
                for path in thread_paths {
                    self.record_thread(&path, &mut seen_threads, &mut per_platform, &mut records, &mut stats);
                }
            }
        }

        // Strategy (ii): keyword searches per platform.
        for platform in ALL_PLATFORMS {
            for keyword in ["account", "accounts", "profile", "profiles"] {
                let q = format!("{} {}", keyword, platform.name().to_ascii_lowercase());
                let url = format!(
                    "http://{}/search?q={}",
                    self.host,
                    acctrade_net::url::encode_component(&q)
                );
                let Ok(resp) = self.client.get(&url) else { continue };
                if resp.status != Status::Ok {
                    continue;
                }
                stats.searches_run += 1;
                for path in extract_thread_links(&resp.text()) {
                    self.record_thread(&path, &mut seen_threads, &mut per_platform, &mut records, &mut stats);
                }
            }
        }

        telemetry::with_recorder(|r| {
            let labels = [("market", self.market_name.as_str())];
            r.incr("underground.pages_browsed", &labels, stats.pages_browsed as u64);
            r.incr("underground.searches", &labels, stats.searches_run as u64);
            r.incr("underground.posts", &labels, stats.posts_recorded as u64);
            if stats.registered {
                r.incr("underground.registered", &labels, 1);
            }
        });
        (records, stats)
    }

    fn record_thread(
        &self,
        path: &str,
        seen: &mut BTreeSet<String>,
        per_platform: &mut std::collections::BTreeMap<String, usize>,
        records: &mut Vec<UndergroundRecord>,
        stats: &mut CollectStats,
    ) {
        if !seen.insert(path.to_string()) {
            return;
        }
        let url = format!("http://{}{}", self.host, path);
        let Ok(resp) = self.client.get(&url) else { return };
        if resp.status != Status::Ok {
            return;
        }
        let Some(record) = parse_thread(&self.market_name, &url, &resp.text()) else {
            return;
        };
        // §3.2 cap: at most 25 postings per platform per market.
        let platform_key = record.platform.clone().unwrap_or_else(|| "unknown".into());
        let count = per_platform.entry(platform_key).or_insert(0);
        if *count >= MAX_POSTS_PER_PLATFORM {
            return;
        }
        *count += 1;
        records.push(record);
        stats.posts_recorded += 1;
    }
}

fn extract_thread_links(html: &str) -> Vec<String> {
    let doc = parse(html);
    doc.select(&Selector::parse("a").expect("static selector")) // conformance: allow(panic-policy) — selector literal is valid
        .into_iter()
        .filter_map(|a| a.attr("href"))
        .filter(|h| h.starts_with("/thread/"))
        .map(str::to_string)
        .collect()
}

/// Parse one thread page into a record (the §4.2 fields; "not all fields
/// were consistently available across forums").
fn parse_thread(market: &str, url: &str, html: &str) -> Option<UndergroundRecord> {
    let doc = parse(html);
    let sel = |s: &str| Selector::parse(s).expect("static selector"); // conformance: allow(panic-policy) — callers pass valid selector literals
    let text = |s: &str| doc.select_first(&sel(s)).map(|e| e.text()).filter(|t| !t.is_empty());
    let title = text(".title")?;
    Some(UndergroundRecord {
        market: market.to_string(),
        url: url.to_string(),
        title,
        body: text(".body").unwrap_or_default(),
        author: text(".author").unwrap_or_default(),
        platform: text(".platform").and_then(|p| Platform::parse(&p)).map(|p| p.name().to_string()),
        published_unix: text(".date").and_then(|d| parse_date(&d)),
        replies: text(".replies").and_then(|r| r.parse().ok()),
        price_usd: text(".price").as_deref().and_then(crate::extract::parse_price),
        quantity: text(".quantity").and_then(|q| q.parse().ok()),
        screenshot: true, // the paper screenshotted every posting
    })
}

/// Parse `YYYY-MM-DD` into unix seconds.
fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(acctrade_net::clock::unix_from_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::sim::SimNet;
    use acctrade_net::tor::TorDirectory;
    use acctrade_workload::world::{World, WorldParams};
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    fn manual_client(net: &std::sync::Arc<SimNet>, seed: u64) -> Client {
        let dir = TorDirectory::default_consensus();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        Client::new(net, "tor-browser").manual(seed).via_tor(dir.build_circuit(&mut rng))
    }

    #[test]
    fn collects_nexus_with_caps() {
        let world = World::generate(WorldParams { seed: 31, scale: 0.01 });
        let net = SimNet::new(31);
        world.deploy(&net);
        let nexus = world
            .forums
            .iter()
            .find(|f| f.config().name == "Nexus")
            .unwrap();
        let client = manual_client(&net, 31);
        let collector = UndergroundCollector::new(&client, nexus.config().host.clone(), "Nexus");
        let (records, stats) = collector.collect();
        assert!(stats.registered);
        assert!(stats.posts_recorded > 0);
        // Nexus has 37 posts but TikTok is capped at 25.
        let tiktok = records.iter().filter(|r| r.platform.as_deref() == Some("TikTok")).count();
        assert!(tiktok <= MAX_POSTS_PER_PLATFORM);
        assert_eq!(records.len(), stats.posts_recorded);
        // Fields parsed.
        assert!(records.iter().all(|r| !r.title.is_empty()));
        assert!(records.iter().any(|r| r.price_usd.is_some()));
        assert!(records.iter().any(|r| r.published_unix.is_some()));
        assert!(records.iter().any(|r| r.published_unix.is_none()), "some forums omit dates");
    }

    #[test]
    fn empty_markets_yield_nothing() {
        let world = World::generate(WorldParams { seed: 32, scale: 0.01 });
        let net = SimNet::new(32);
        world.deploy(&net);
        let ares = world
            .forums
            .iter()
            .find(|f| f.config().name == "ARES Market")
            .unwrap();
        let client = manual_client(&net, 32);
        let collector =
            UndergroundCollector::new(&client, ares.config().host.clone(), "ARES Market");
        let (records, stats) = collector.collect();
        assert!(stats.registered);
        assert_eq!(records.len(), 0);
    }

    #[test]
    fn date_parsing() {
        assert_eq!(parse_date("2024-03-15"), Some(acctrade_net::clock::unix_from_ymd(2024, 3, 15)));
        assert_eq!(parse_date("2024-13-01"), None);
        assert_eq!(parse_date("nonsense"), None);
    }
}
