#![warn(missing_docs)]

//! # acctrade-crawler
//!
//! The paper's data-collection module (§3.2), rebuilt: a JavaScript-free
//! stand-in for the authors' Selenium crawler that speaks to the simulated
//! marketplaces over [`acctrade_net`] and parses their HTML with
//! [`acctrade_html`].
//!
//! * [`extract`] — per-dialect extraction adapters (offer pages, listing
//!   indexes, price strings);
//! * [`frontier`] — the depth-first crawl frontier with a visited set;
//! * [`crawl`] — the marketplace crawler: storefront → listing pages →
//!   every offer, exactly the §3.2 strategy;
//! * [`steal`] — the sharded work-stealing parallel engine: one
//!   (marketplace, platform-chain) shard per work unit, per-worker
//!   steal deques, per-shard deterministic lanes;
//! * [`merge`] — the canonical `(virtual timestamp, stable tiebreak)`
//!   record order that makes parallel output byte-identical to
//!   sequential output;
//! * [`schedule`] — the Feb–Jun iteration scheduler (Figure 2's
//!   collection iterations);
//! * [`resolve`] — the profile resolver: queries platform APIs for
//!   metadata and timelines of visible accounts, and re-queries them for
//!   the §8 efficacy audit;
//! * [`underground`] — the manual Tor collector (registration, CAPTCHA,
//!   link-walking, ≤5 pages / ≤25 postings per platform);
//! * [`record`] — dataset records and JSON export;
//! * [`persist`] — the durable campaign store: every record streamed
//!   into an `acctrade-store` WAL plus per-iteration checkpoints, so an
//!   interrupted campaign resumes byte-identically.

pub mod crawl;
pub mod extract;
pub mod frontier;
pub mod merge;
pub mod persist;
pub mod record;
pub mod resolve;
pub mod schedule;
pub mod steal;
pub mod underground;

pub use crawl::MarketplaceCrawler;
pub use persist::{ApiOutcomeRecord, CampaignCheckpoint, CampaignStore, ShardCursor};
pub use record::{Dataset, OfferRecord, PostRecord, ProfileRecord, UndergroundRecord};
pub use resolve::ProfileResolver;
pub use schedule::{CampaignProgress, CrawlCampaign, IterationSnapshot};
pub use steal::{IterationRun, ShardJob, ShardOutcome, WorkerReport};
pub use underground::UndergroundCollector;
