//! Durable campaign persistence — the crawler's binding to
//! [`acctrade-store`](store).
//!
//! A five-month crawl campaign survives crashes by writing every dataset
//! record into an append-only WAL ([`CampaignStore`]) and, at each
//! iteration boundary, an atomic [`CampaignCheckpoint`] capturing
//! everything needed to rebuild the run mid-flight: the seed and config
//! digest, the virtual clock, the fabric RNG position, the campaign
//! cursor, and a full telemetry snapshot. Resume replays the WAL into a
//! [`Dataset`], rolls back anything the checkpoint never committed, and
//! continues — producing byte-identical artifacts versus an
//! uninterrupted same-seed run.
//!
//! Telemetry: appends increment `store.records_appended`,
//! `store.bytes_appended` and `store.segments_rotated`; recovery
//! increments `store.records_replayed` and `store.torn_tails_truncated`
//! on whatever recorder is current at [`CampaignStore::open_resume`]
//! time (the *ambient* recorder — deliberately not the restored study
//! recorder, so a resumed run's manifest stays byte-identical to an
//! uninterrupted one). Checkpoint writes are not instrumented for the
//! same reason.

use crate::record::{
    Dataset, FetchStatus, OfferRecord, PostRecord, PriceObservationRecord, ProfileRecord,
    UndergroundRecord,
};
use economy::EconomyEvent;
use crate::schedule::IterationSnapshot;
use foundation::json;
use foundation::json_codec_struct;
use std::io;
use std::path::Path;
use store::checkpoint::{read_if_exists, tmp_path, write_atomic};
use store::{
    compact, CompactionReport, Disposition, Record, RecoveryReport, StoreError, WalOptions,
    Writer, WriterStats,
};
use telemetry::TelemetrySnapshot;

/// WAL record kind: a marketplace offer ([`OfferRecord`]).
pub(crate) const KIND_OFFER: u8 = 1;
/// WAL record kind: a resolved profile ([`ProfileRecord`]).
pub(crate) const KIND_PROFILE: u8 = 2;
/// WAL record kind: a collected post ([`PostRecord`]).
pub(crate) const KIND_POST: u8 = 3;
/// WAL record kind: an underground posting ([`UndergroundRecord`]).
pub(crate) const KIND_UNDERGROUND: u8 = 4;
/// WAL record kind: a §8 efficacy re-query outcome ([`ApiOutcomeRecord`]).
pub(crate) const KIND_API_OUTCOME: u8 = 5;
/// WAL record kind: one economy event ([`EconomyEvent`]) — escrow order
/// transitions, repricing ticks, bot activity.
pub(crate) const KIND_ECONOMY_EVENT: u8 = 6;
/// WAL record kind: a crawler-observed repricing of an already-collected
/// offer ([`PriceObservationRecord`]).
pub(crate) const KIND_PRICE_OBS: u8 = 7;

/// Checkpoint file name inside a store directory.
pub(crate) const CHECKPOINT_FILE: &str = "checkpoint.json";

/// Checkpoint schema identifier. v2 added `shard_cursors` (per-shard
/// lane provenance from the parallel crawl engine); v3 added
/// `economy_scenario` (the economy scenario pack a campaign runs with —
/// empty when the subsystem is disabled — so resume can refuse a
/// scenario mismatch the same way it refuses a seed mismatch).
pub const CHECKPOINT_SCHEMA: &str = "acctrade-campaign-checkpoint/v3";

/// Per-shard lane provenance from the last completed iteration: where
/// each (marketplace, chain) shard's private clock and RNG substream
/// ended. Chain 0 is the marketplace's discovery pseudo-shard (the
/// storefront fetch); chains ≥ 1 are platform listing chains in
/// storefront order. Recorded so a resumed campaign can prove its
/// parallel phase replayed identically (the cursors of a clean run and
/// a killed-and-resumed run must match byte-for-byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCursor {
    /// Marketplace display name.
    pub marketplace: String,
    /// Chain index (0 = discovery, ≥ 1 = listing chains).
    pub chain: usize,
    /// Lane virtual-time cursor at shard end (µs since epoch).
    pub lane_end_us: u64,
    /// Words consumed from the lane's RNG substream.
    pub lane_rng_words: u64,
    /// Records the shard collected (pre-dedup).
    pub records: u64,
}

/// One §8 efficacy re-query outcome, persisted compactly (the full
/// profile is not needed — the audit only consumes platform/handle/
/// status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiOutcomeRecord {
    /// Platform name.
    pub platform: String,
    /// Account handle.
    pub handle: String,
    /// Lookup outcome.
    pub status: FetchStatus,
    /// Virtual time of the re-query (unix seconds).
    pub at_unix: i64,
}

/// The per-iteration campaign checkpoint: everything a cold process
/// needs to continue the run as if never interrupted.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCheckpoint {
    /// Schema identifier ([`CHECKPOINT_SCHEMA`]).
    pub schema: String,
    /// Study seed.
    pub seed: u64,
    /// Digest of the study configuration (resume refuses a mismatch).
    pub config_digest: String,
    /// Total iterations the campaign will run.
    pub iterations_total: usize,
    /// Next iteration to execute on resume.
    pub next_iteration: usize,
    /// Virtual days between iterations.
    pub days_between: u64,
    /// Virtual unix time when the study started (campaign_days basis).
    pub t0_unix: i64,
    /// Virtual µs when the `crawl_campaign` span opened.
    pub campaign_started_us: u64,
    /// Virtual clock (µs) at checkpoint time.
    pub clock_us: u64,
    /// Fabric RNG stream position (words consumed) at checkpoint time.
    pub net_rng_words: u64,
    /// Requests issued on the fabric at checkpoint time.
    pub requests_issued: usize,
    /// Records durably synced into the WAL at checkpoint time; recovery
    /// rolls back anything beyond this.
    pub committed_records: u64,
    /// Segment rotation threshold the writer was configured with.
    pub segment_max_bytes: u64,
    /// Virtual timestamps at which `world.step_iteration` already ran.
    pub step_unixes: Vec<i64>,
    /// Per-iteration snapshots so far.
    pub snapshots: Vec<IterationSnapshot>,
    /// Per-shard lane cursors from the last completed iteration
    /// (empty before the first iteration finishes).
    pub shard_cursors: Vec<ShardCursor>,
    /// Economy scenario pack the campaign runs with (empty string when
    /// the economy subsystem is disabled). Resume refuses a mismatch.
    pub economy_scenario: String,
    /// Full telemetry snapshot at checkpoint time.
    pub telemetry: TelemetrySnapshot,
    /// True once the study finished; a complete checkpoint cannot be
    /// resumed (there is nothing left to do).
    pub complete: bool,
}

json_codec_struct! {
    ApiOutcomeRecord { platform, handle, status, at_unix }
    ShardCursor { marketplace, chain, lane_end_us, lane_rng_words, records }
    CampaignCheckpoint {
        schema, seed, config_digest, iterations_total, next_iteration,
        days_between, t0_unix, campaign_started_us, clock_us, net_rng_words,
        requests_issued, committed_records, segment_max_bytes, step_unixes,
        snapshots, shard_cursors, economy_scenario, telemetry, complete,
    }
}

impl CampaignCheckpoint {
    /// Pretty JSON (the on-disk format).
    pub fn to_json_pretty(&self) -> String {
        json::to_string_pretty(self)
    }

    /// Parse a checkpoint back from JSON text.
    pub fn parse(text: &str) -> Result<CampaignCheckpoint, json::JsonError> {
        json::from_str(text)
    }

    /// Structural sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != CHECKPOINT_SCHEMA {
            return Err(format!("unknown checkpoint schema {:?}", self.schema));
        }
        if self.next_iteration > self.iterations_total {
            return Err(format!(
                "next_iteration {} beyond iterations_total {}",
                self.next_iteration, self.iterations_total
            ));
        }
        if self.snapshots.len() != self.next_iteration {
            return Err(format!(
                "{} snapshots but next_iteration {}",
                self.snapshots.len(),
                self.next_iteration
            ));
        }
        if self.config_digest.len() != 16 {
            return Err("config_digest is not a 16-hex-char digest".into());
        }
        let mut cursor_keys: Vec<(&str, usize)> = self
            .shard_cursors
            .iter()
            .map(|c| (c.marketplace.as_str(), c.chain))
            .collect();
        cursor_keys.sort_unstable();
        let before = cursor_keys.len();
        cursor_keys.dedup();
        if cursor_keys.len() != before {
            return Err("duplicate (marketplace, chain) shard cursor".into());
        }
        self.telemetry.validate()?;
        Ok(())
    }
}

/// Everything a WAL replay yields, separated by stream: the released
/// dataset, the crawler's price-observation series, and the economy's
/// event stream. The latter two are empty on every pre-economy store
/// (the kinds simply never occur).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WalReplay {
    /// The released campaign dataset (kinds 1–4).
    pub dataset: Dataset,
    /// Crawler-observed repricings (kind [`KIND_PRICE_OBS`]).
    pub price_obs: Vec<PriceObservationRecord>,
    /// Economy events (kind [`KIND_ECONOMY_EVENT`]), in append order —
    /// which is emission order, so the stream replays directly through
    /// `economy::Ledger::replay`.
    pub economy_events: Vec<EconomyEvent>,
}

/// A durable campaign dataset store: a [`store::Writer`] plus the
/// record-kind vocabulary and checkpoint protocol of the crawl pipeline.
pub struct CampaignStore {
    writer: Writer,
}

impl CampaignStore {
    /// Create a fresh store at `dir`, wiping any previous chain and any
    /// stale checkpoint.
    pub fn create(dir: &Path) -> io::Result<CampaignStore> {
        let writer = Writer::create(dir, WalOptions::default())?;
        let ckpt = dir.join(CHECKPOINT_FILE);
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(tmp_path(&ckpt));
        Ok(CampaignStore { writer })
    }

    /// Open an interrupted store for resumption.
    ///
    /// Reads and validates the checkpoint, replays the WAL (truncating
    /// torn tails, rolling back records past the checkpoint's
    /// `committed_records`), decodes the surviving records into a
    /// [`Dataset`], and positions the writer to append. Recovery tallies
    /// land on the current (ambient) telemetry recorder.
    pub fn open_resume(
        dir: &Path,
    ) -> Result<(CampaignStore, CampaignCheckpoint, WalReplay, RecoveryReport), StoreError> {
        let cp = Self::read_checkpoint(dir)?.ok_or_else(|| {
            StoreError::Invalid(format!(
                "no {CHECKPOINT_FILE} in {}: nothing to resume",
                dir.display()
            ))
        })?;
        cp.validate().map_err(StoreError::Invalid)?;
        let opts = WalOptions { segment_max_bytes: cp.segment_max_bytes };
        let (writer, records, report) = Writer::open_resume(dir, opts, cp.committed_records)?;
        telemetry::with_recorder(|r| {
            r.incr("store.records_replayed", &[], report.records_replayed);
            r.incr("store.torn_tails_truncated", &[], report.torn_tails_truncated);
        });
        let replay = decode_streams(&records)?;
        Ok((CampaignStore { writer }, cp, replay, report))
    }

    /// Read the checkpoint at `dir`, if any.
    pub fn read_checkpoint(dir: &Path) -> Result<Option<CampaignCheckpoint>, StoreError> {
        match read_if_exists(&dir.join(CHECKPOINT_FILE))? {
            None => Ok(None),
            Some(text) => CampaignCheckpoint::parse(&text)
                .map(Some)
                .map_err(|e| StoreError::Invalid(format!("bad checkpoint: {e}"))),
        }
    }

    /// Atomically replace the checkpoint. Deliberately uninstrumented:
    /// checkpoint cadence must not perturb the study's telemetry.
    pub fn write_checkpoint(&self, cp: &CampaignCheckpoint) -> io::Result<()> {
        write_atomic(
            &self.writer.dir().join(CHECKPOINT_FILE),
            cp.to_json_pretty().as_bytes(),
        )
    }

    /// Append one offer record.
    pub fn append_offer(&mut self, record: &OfferRecord) -> io::Result<()> {
        self.append_json(KIND_OFFER, &json::to_string(record))
    }

    /// Append one resolved profile.
    pub fn append_profile(&mut self, record: &ProfileRecord) -> io::Result<()> {
        self.append_json(KIND_PROFILE, &json::to_string(record))
    }

    /// Append one collected post.
    pub fn append_post(&mut self, record: &PostRecord) -> io::Result<()> {
        self.append_json(KIND_POST, &json::to_string(record))
    }

    /// Append one underground posting.
    pub fn append_underground(&mut self, record: &UndergroundRecord) -> io::Result<()> {
        self.append_json(KIND_UNDERGROUND, &json::to_string(record))
    }

    /// Append one efficacy re-query outcome.
    pub fn append_api_outcome(&mut self, record: &ApiOutcomeRecord) -> io::Result<()> {
        self.append_json(KIND_API_OUTCOME, &json::to_string(record))
    }

    /// Append one economy event.
    pub fn append_economy_event(&mut self, event: &EconomyEvent) -> io::Result<()> {
        self.append_json(KIND_ECONOMY_EVENT, &event.to_json_line())
    }

    /// Append one crawler-observed repricing.
    pub fn append_price_observation(
        &mut self,
        record: &PriceObservationRecord,
    ) -> io::Result<()> {
        self.append_json(KIND_PRICE_OBS, &json::to_string(record))
    }

    fn append_json(&mut self, kind: u8, text: &str) -> io::Result<()> {
        let receipt = self.writer.append(kind, text.as_bytes())?;
        telemetry::with_recorder(|r| {
            r.incr("store.records_appended", &[], 1);
            r.incr("store.bytes_appended", &[], receipt.bytes);
            if receipt.rotated {
                r.incr("store.segments_rotated", &[], 1);
            }
        });
        Ok(())
    }

    /// Fsync the chain and atomically rewrite the store manifest.
    pub fn sync(&mut self) -> io::Result<()> {
        self.writer.sync()
    }

    /// Records appended across the writer's lifetime (committed or not).
    pub fn total_records(&self) -> u64 {
        self.writer.total_records()
    }

    /// Writer statistics.
    pub fn stats(&self) -> WriterStats {
        self.writer.stats()
    }

    /// Segment rotation threshold in effect.
    pub fn segment_max_bytes(&self) -> u64 {
        self.writer.options().segment_max_bytes
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        self.writer.dir()
    }

    /// Read-only load of a store directory (no writer, no checkpoint
    /// required; used to inspect finished campaigns).
    pub fn load(dir: &Path) -> Result<(WalReplay, RecoveryReport), StoreError> {
        let (records, report) = store::replay(dir)?;
        Ok((decode_streams(&records)?, report))
    }
}

/// Decode replayed WAL records into their per-stream collections.
///
/// [`KIND_API_OUTCOME`] records are part of the §8 audit, not the
/// dataset, and are decode-checked then skipped; unknown kinds are an
/// error (the store never contains records this module did not write).
pub(crate) fn decode_streams(records: &[Record]) -> Result<WalReplay, StoreError> {
    let mut replay = WalReplay::default();
    for r in records {
        let text = std::str::from_utf8(&r.payload).map_err(|e| {
            StoreError::Invalid(format!("record seq {} is not UTF-8: {e}", r.seq))
        })?;
        let bad = |e: json::JsonError| {
            StoreError::Invalid(format!("record seq {} undecodable: {e}", r.seq))
        };
        let dataset = &mut replay.dataset;
        match r.kind {
            KIND_OFFER => dataset.offers.push(json::from_str(text).map_err(bad)?),
            KIND_PROFILE => dataset.profiles.push(json::from_str(text).map_err(bad)?),
            KIND_POST => dataset.posts.push(json::from_str(text).map_err(bad)?),
            KIND_UNDERGROUND => dataset.underground.push(json::from_str(text).map_err(bad)?),
            KIND_API_OUTCOME => {
                let _: ApiOutcomeRecord = json::from_str(text).map_err(bad)?;
            }
            KIND_ECONOMY_EVENT => {
                replay.economy_events.push(EconomyEvent::parse(text).map_err(bad)?)
            }
            KIND_PRICE_OBS => replay.price_obs.push(json::from_str(text).map_err(bad)?),
            other => {
                return Err(StoreError::Invalid(format!(
                    "record seq {} has unknown kind {other}",
                    r.seq
                )))
            }
        }
    }
    Ok(replay)
}

/// Offline compaction of a campaign store: keep, per
/// `(marketplace, offer_url)`, only the offer version from the highest
/// crawl iteration; pass every other record kind through untouched.
// conformance: allow(pub-hygiene) — operational compaction entry point, exercised by in-file tests
pub fn compact_campaign_store(dir: &Path) -> Result<CompactionReport, StoreError> {
    let opts = match CampaignStore::read_checkpoint(dir)? {
        Some(cp) => WalOptions { segment_max_bytes: cp.segment_max_bytes },
        None => WalOptions::default(),
    };
    compact(dir, opts, |kind, payload| {
        if kind != KIND_OFFER {
            return Disposition::Keep;
        }
        let parsed = std::str::from_utf8(payload)
            .ok()
            .and_then(|t| json::from_str::<OfferRecord>(t).ok());
        match parsed {
            Some(o) => Disposition::Dedup {
                key: format!("{}|{}", o.marketplace, o.offer_url),
                version: o.iteration as u64,
            },
            None => Disposition::Keep,
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("acctrade-crawler-persist-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn offer(url: &str, iteration: usize) -> OfferRecord {
        OfferRecord {
            marketplace: "FameSwap".into(),
            offer_url: url.into(),
            title: "IG page".into(),
            seller: None,
            seller_country: None,
            price_usd: Some(120.0),
            platform: Some("Instagram".into()),
            category: None,
            claimed_followers: Some(10_000),
            claims_verified: false,
            monthly_revenue_usd: None,
            income_source: None,
            description: None,
            profile_link: None,
            handle: None,
            collected_unix: 0,
            iteration,
        }
    }

    fn checkpoint(store: &CampaignStore) -> CampaignCheckpoint {
        CampaignCheckpoint {
            schema: CHECKPOINT_SCHEMA.into(),
            seed: 7,
            config_digest: "00000000deadbeef".into(),
            iterations_total: 4,
            next_iteration: 0,
            days_between: 15,
            t0_unix: 0,
            campaign_started_us: 0,
            clock_us: 0,
            net_rng_words: 0,
            requests_issued: 0,
            committed_records: store.total_records(),
            segment_max_bytes: store.segment_max_bytes(),
            step_unixes: Vec::new(),
            snapshots: Vec::new(),
            shard_cursors: Vec::new(),
            economy_scenario: String::new(),
            telemetry: telemetry::Recorder::new().snapshot(),
            complete: false,
        }
    }

    #[test]
    fn roundtrip_through_store_and_checkpoint() {
        let dir = scratch("roundtrip");
        let mut s = CampaignStore::create(&dir).unwrap();
        s.append_offer(&offer("http://fameswap.com/o/1", 0)).unwrap();
        s.append_offer(&offer("http://fameswap.com/o/2", 0)).unwrap();
        s.append_api_outcome(&ApiOutcomeRecord {
            platform: "Instagram".into(),
            handle: "x".into(),
            status: FetchStatus::NotFound,
            at_unix: 99,
        })
        .unwrap();
        s.sync().unwrap();
        s.write_checkpoint(&checkpoint(&s)).unwrap();
        drop(s);

        let (s2, cp, replay, report) = CampaignStore::open_resume(&dir).unwrap();
        assert_eq!(cp.committed_records, 3);
        assert_eq!(report.records_replayed, 3);
        assert_eq!(report.torn_tails_truncated, 0);
        let dataset = replay.dataset;
        assert_eq!(dataset.offers.len(), 2, "api outcomes are not dataset rows");
        assert_eq!(dataset.offers[1].offer_url, "http://fameswap.com/o/2");
        assert_eq!(s2.total_records(), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_tail_is_rolled_back_on_resume() {
        let dir = scratch("rollback");
        let mut s = CampaignStore::create(&dir).unwrap();
        s.append_offer(&offer("http://fameswap.com/o/1", 0)).unwrap();
        s.sync().unwrap();
        s.write_checkpoint(&checkpoint(&s)).unwrap();
        // Appended and even synced — but never checkpointed.
        s.append_offer(&offer("http://fameswap.com/o/2", 1)).unwrap();
        s.sync().unwrap();
        drop(s);

        let (_s2, cp, replay, report) = CampaignStore::open_resume(&dir).unwrap();
        assert_eq!(cp.committed_records, 1);
        assert_eq!(replay.dataset.offers.len(), 1);
        assert_eq!(report.uncommitted_records_dropped, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_checkpoint_refuses_resume() {
        let dir = scratch("nockpt");
        let mut s = CampaignStore::create(&dir).unwrap();
        s.append_offer(&offer("http://fameswap.com/o/1", 0)).unwrap();
        s.sync().unwrap();
        drop(s);
        match CampaignStore::open_resume(&dir) {
            Err(StoreError::Invalid(msg)) => assert!(msg.contains("nothing to resume")),
            Err(other) => panic!("expected Invalid, got {other:?}"),
            Ok(_) => panic!("expected Invalid, got Ok"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_wipes_stale_checkpoint() {
        let dir = scratch("wipe");
        let mut s = CampaignStore::create(&dir).unwrap();
        s.append_offer(&offer("http://fameswap.com/o/1", 0)).unwrap();
        s.sync().unwrap();
        s.write_checkpoint(&checkpoint(&s)).unwrap();
        drop(s);
        let s2 = CampaignStore::create(&dir).unwrap();
        assert_eq!(s2.total_records(), 0);
        assert!(CampaignStore::read_checkpoint(&dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_latest_offer_version() {
        let dir = scratch("compact");
        let mut s = CampaignStore::create(&dir).unwrap();
        // Same logical offer re-observed across three iterations, plus an
        // unrelated post record.
        for it in 0..3usize {
            s.append_offer(&offer("http://fameswap.com/o/1", it)).unwrap();
        }
        s.append_post(&PostRecord {
            platform: "X".into(),
            handle: "h".into(),
            author_id: 1,
            post_id: 2,
            text: "hello".into(),
            created_unix: 0,
            likes: 0,
            views: 0,
        })
        .unwrap();
        s.sync().unwrap();
        drop(s);

        let report = compact_campaign_store(&dir).unwrap();
        assert_eq!(report.records_in, 4);
        assert_eq!(report.records_out, 2);
        assert_eq!(report.records_deduped, 2);

        let (replay, _) = CampaignStore::load(&dir).unwrap();
        assert_eq!(replay.dataset.offers.len(), 1);
        assert_eq!(replay.dataset.offers[0].iteration, 2);
        assert_eq!(replay.dataset.posts.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn economy_streams_roundtrip_and_survive_rollback() {
        use economy::event::EventKind;
        let dir = scratch("econ");
        let mut s = CampaignStore::create(&dir).unwrap();
        s.append_offer(&offer("http://fameswap.com/o/1", 0)).unwrap();
        let mut ev = EconomyEvent::blank(0, 1_706_745_600, 2_000_001, EventKind::OrderOpened);
        ev.marketplace = "FameSwap".into();
        ev.order = Some(1);
        s.append_economy_event(&ev).unwrap();
        s.append_price_observation(&PriceObservationRecord {
            marketplace: "FameSwap".into(),
            offer_url: "http://fameswap.com/o/1".into(),
            iteration: 1,
            collected_unix: 1_708_041_600,
            prev_price_usd: 120.0,
            price_usd: 114.5,
        })
        .unwrap();
        s.sync().unwrap();
        s.write_checkpoint(&checkpoint(&s)).unwrap();
        // Uncommitted economy tail: must be rolled back on resume.
        let mut ev2 = EconomyEvent::blank(1, 1_706_745_700, 2_000_002, EventKind::OrderOpened);
        ev2.marketplace = "FameSwap".into();
        s.append_economy_event(&ev2).unwrap();
        s.sync().unwrap();
        drop(s);

        let (_s2, cp, replay, report) = CampaignStore::open_resume(&dir).unwrap();
        assert_eq!(cp.committed_records, 3);
        assert_eq!(report.uncommitted_records_dropped, 1);
        assert_eq!(replay.dataset.offers.len(), 1);
        assert_eq!(replay.economy_events, vec![ev]);
        assert_eq!(replay.price_obs.len(), 1);
        assert_eq!(replay.price_obs[0].price_usd, 114.5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_json_roundtrip_and_validation() {
        let dir = scratch("cpjson");
        let s = CampaignStore::create(&dir).unwrap();
        let cp = checkpoint(&s);
        assert!(cp.validate().is_ok());
        let back = CampaignCheckpoint::parse(&cp.to_json_pretty()).unwrap();
        assert_eq!(back, cp);

        let mut bad = cp.clone();
        bad.schema = "nope/v9".into();
        assert!(bad.validate().is_err());
        let mut bad = cp.clone();
        bad.next_iteration = 99;
        assert!(bad.validate().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
