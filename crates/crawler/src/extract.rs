//! Per-dialect extraction adapters.
//!
//! The eleven marketplaces render three HTML dialects (card grid, table,
//! flat list); real crawlers carry per-site logic and so does this one.
//! Each adapter turns an offer page into an [`OfferRecord`] and a listing
//! index into offer links plus a next-page link.

use crate::record::OfferRecord;
use acctrade_html::{parse, Document, Selector};
use acctrade_market::config::MarketplaceId;
use acctrade_market::site::Dialect;

/// Links discovered on a listing-index page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexPage {
    /// Offer-page paths (`/offer/<id>`).
    pub offer_paths: Vec<String>,
    /// Path of the next page, when pagination continues.
    pub next_path: Option<String>,
}

/// Parse a listing-index page (all dialects share link structure enough
/// for one pass: any link to `/offer/` counts, `a.next` paginates).
pub fn parse_index(html: &str) -> IndexPage {
    let doc = parse(html);
    let links = doc.select(&Selector::parse("a").expect("static selector")); // conformance: allow(panic-policy) — selector literal is valid
    let mut offer_paths = Vec::new();
    let mut next_path = None;
    for a in links {
        let Some(href) = a.attr("href") else { continue };
        if href.starts_with("/offer/") {
            offer_paths.push(href.to_string());
        } else if a.has_class("next") {
            next_path = Some(href.to_string());
        }
    }
    IndexPage { offer_paths, next_path }
}

/// Parse a storefront page into the platform listing paths it links.
pub fn parse_storefront(html: &str) -> Vec<String> {
    let doc = parse(html);
    doc.select(&Selector::parse("a").expect("static selector")) // conformance: allow(panic-policy) — selector literal is valid
        .into_iter()
        .filter_map(|a| a.attr("href"))
        .filter(|h| h.starts_with("/listings/"))
        .map(|h| h.to_string())
        .collect()
}

/// Parse a price string like `$1,234.50` into USD.
pub fn parse_price(text: &str) -> Option<f64> {
    let start = text.find('$')?;
    let number: String = text[start + 1..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == ',' || *c == '.')
        .filter(|c| *c != ',')
        .collect();
    if number.is_empty() {
        return None;
    }
    number.parse().ok()
}

/// Extract the handle from a profile URL (`http://host/<handle>`).
pub(crate) fn handle_from_profile_link(link: &str) -> Option<String> {
    let url = acctrade_net::url::Url::parse(link).ok()?;
    let handle = url.path().trim_start_matches('/');
    if handle.is_empty() {
        None
    } else {
        Some(handle.to_string())
    }
}

/// Extract an offer page into a record skeleton (caller fills URL,
/// marketplace, time, iteration).
pub fn parse_offer(market: MarketplaceId, html: &str) -> OfferRecord {
    let doc = parse(html);
    let mut record = OfferRecord {
        marketplace: market.name().to_string(),
        offer_url: String::new(),
        title: String::new(),
        seller: None,
        seller_country: None,
        price_usd: None,
        platform: None,
        category: None,
        claimed_followers: None,
        claims_verified: false,
        monthly_revenue_usd: None,
        income_source: None,
        description: None,
        profile_link: None,
        handle: None,
        collected_unix: 0,
        iteration: 0,
    };
    match market.dialect() {
        Dialect::Cards => extract_cards(&doc, &mut record),
        Dialect::Table => extract_table(&doc, &mut record),
        Dialect::List => extract_list(&doc, &mut record),
    }
    if let Some(link) = &record.profile_link {
        record.handle = handle_from_profile_link(link);
    }
    record
}

fn sel(s: &str) -> Selector {
    Selector::parse(s).expect("static selector") // conformance: allow(panic-policy) — callers pass valid selector literals, exercised in tests
}

fn text_of(doc: &Document, selector: &str) -> Option<String> {
    doc.select_first(&sel(selector)).map(|e| e.text()).filter(|t| !t.is_empty())
}

fn extract_cards(doc: &Document, r: &mut OfferRecord) {
    r.title = text_of(doc, "h1.offer-title").unwrap_or_default();
    r.price_usd = text_of(doc, "span.price").as_deref().and_then(parse_price);
    r.platform = text_of(doc, "span.platform");
    r.seller = doc.select_first(&sel(".seller a")).map(|e| e.text());
    r.seller_country = text_of(doc, ".seller .country");
    r.category = text_of(doc, "span.category");
    r.claimed_followers = text_of(doc, "span.followers").and_then(|t| t.parse().ok());
    r.claims_verified = doc.select_first(&sel("span.badge-verified")).is_some();
    r.monthly_revenue_usd = text_of(doc, "span.revenue").as_deref().and_then(parse_price);
    r.income_source = text_of(doc, "span.income-source");
    r.description = text_of(doc, "div.description");
    r.profile_link = doc
        .select_first(&sel("a.profile-link"))
        .and_then(|e| e.attr("href").map(str::to_string));
}

fn extract_table(doc: &Document, r: &mut OfferRecord) {
    r.title = text_of(doc, "h1").unwrap_or_default();
    // <dl> of dt/dd pairs.
    let dl = doc.select_first(&sel("#offer-fields"));
    if let Some(dl) = dl {
        let children = dl.children();
        let mut i = 0;
        while i + 1 < children.len() {
            let key = children[i].text();
            let value = children[i + 1].text();
            match key.as_str() {
                "Price" => r.price_usd = parse_price(&value),
                "Platform" => r.platform = Some(value),
                "Seller" => r.seller = Some(value),
                "Country" => r.seller_country = Some(value),
                "Category" => r.category = Some(value),
                "Followers" => r.claimed_followers = value.parse().ok(),
                "Verified" => r.claims_verified = value == "yes",
                "Monthly revenue" => r.monthly_revenue_usd = parse_price(&value),
                "Income source" => r.income_source = Some(value),
                "Description" => r.description = Some(value),
                _ => {}
            }
            i += 2;
        }
    }
    r.profile_link = doc
        .select_first(&sel("a.profile"))
        .and_then(|e| e.attr("href").map(str::to_string));
}

fn extract_list(doc: &Document, r: &mut OfferRecord) {
    let field = |name: &str| {
        doc.select_first(&sel(&format!("[data-field={name}]")))
            .map(|e| e.text())
            .filter(|t| !t.is_empty())
    };
    r.title = field("title").unwrap_or_default();
    r.price_usd = field("price").as_deref().and_then(parse_price);
    r.platform = field("platform");
    r.seller = field("seller");
    r.seller_country = field("country");
    r.category = field("category");
    r.claimed_followers = field("followers").and_then(|t| t.parse().ok());
    r.claims_verified = field("verified").as_deref() == Some("true");
    r.monthly_revenue_usd = field("revenue").as_deref().and_then(parse_price);
    r.income_source = field("income-source");
    r.description = field("description");
    r.profile_link = doc
        .select_first(&sel("a[data-field=profile]"))
        .and_then(|e| e.attr("href").map(str::to_string));
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_market::lifecycle::MarketState;
    use acctrade_market::listing::{Listing, Monetization};
    use acctrade_market::seller::Seller;
    use acctrade_market::site::MarketplaceSite;
    use acctrade_net::http::Request;
    use acctrade_net::server::{RequestCtx, Service};
    use acctrade_net::url::Url;
    use acctrade_social::platform::Platform;
    use foundation::sync::RwLock;
    use std::sync::Arc;

    /// Render a real offer page for a market and extract it back —
    /// roundtrip through the genuine site templates.
    fn roundtrip(market: MarketplaceId) -> OfferRecord {
        let state = Arc::new(RwLock::new(MarketState::new(market)));
        {
            let mut s = state.write();
            let sid = s.next_seller_id();
            let mut seller = Seller::new(sid, "megaseller");
            seller.country = Some("Turkey".into());
            s.add_seller(seller);
            let lid = s.next_listing_id();
            let mut l = Listing::new(lid, market, Platform::TikTok, sid, 1_234.5);
            l.title = "TikTok dance page 2.1M".into();
            l.category = Some("Humor/Memes".into());
            l.claimed_followers = Some(2_100_000);
            l.description = Some("Fresh and ready for promotion.".into());
            l.monetization = Some(Monetization {
                monthly_revenue_usd: 136.0,
                income_source: "Google AdSense".into(),
            });
            l.profile_link = Some("http://tiktok.example/dance.page99".into());
            s.add_listing(l);
        }
        let site = MarketplaceSite::new(state);
        let req = Request::get(Url::parse(&format!("http://{}/offer/1", market.host())).unwrap());
        let resp = site.handle(&req, &RequestCtx::test());
        parse_offer(market, &resp.text())
    }

    #[test]
    fn extracts_all_three_dialects() {
        for market in [
            MarketplaceId::Accsmarket, // cards
            MarketplaceId::FameSwap,   // table
            MarketplaceId::Z2U,        // list
        ] {
            let r = roundtrip(market);
            assert_eq!(r.title, "TikTok dance page 2.1M", "{market:?}");
            assert_eq!(r.price_usd, Some(1_234.5), "{market:?}");
            assert_eq!(r.platform.as_deref(), Some("TikTok"), "{market:?}");
            assert_eq!(r.seller.as_deref(), Some("megaseller"), "{market:?}");
            assert_eq!(r.seller_country.as_deref(), Some("Turkey"), "{market:?}");
            assert_eq!(r.category.as_deref(), Some("Humor/Memes"), "{market:?}");
            assert_eq!(r.claimed_followers, Some(2_100_000), "{market:?}");
            assert_eq!(r.monthly_revenue_usd, Some(136.0), "{market:?}");
            assert_eq!(r.income_source.as_deref(), Some("Google AdSense"), "{market:?}");
            assert_eq!(
                r.profile_link.as_deref(),
                Some("http://tiktok.example/dance.page99"),
                "{market:?}"
            );
            assert_eq!(r.handle.as_deref(), Some("dance.page99"), "{market:?}");
        }
    }

    #[test]
    fn hidden_seller_market_extracts_no_seller() {
        let r = roundtrip(MarketplaceId::SocialTradia);
        assert!(r.seller.is_none());
        assert!(r.seller_country.is_none());
        assert_eq!(r.price_usd, Some(1_234.5));
    }

    #[test]
    fn price_parsing_variants() {
        assert_eq!(parse_price("$157"), Some(157.0));
        assert_eq!(parse_price("$1,234.50"), Some(1_234.5));
        assert_eq!(parse_price("$50,000,000"), Some(50_000_000.0));
        assert_eq!(parse_price("$136/month"), Some(136.0));
        assert_eq!(parse_price("price: $7 only"), Some(7.0));
        assert_eq!(parse_price("free"), None);
        assert_eq!(parse_price("$"), None);
    }

    #[test]
    fn handle_extraction() {
        assert_eq!(
            handle_from_profile_link("http://instagram.example/fashion.daily"),
            Some("fashion.daily".to_string())
        );
        assert_eq!(handle_from_profile_link("http://instagram.example/"), None);
        assert_eq!(handle_from_profile_link("not a url"), None);
    }

    #[test]
    fn index_parsing_with_pagination() {
        let html = r#"<div><a class="offer-link" href="/offer/3">a</a>
            <a href="/offer/4">b</a><a class="next" href="/listings/x?page=1">next</a>
            <a href="/other">skip</a></div>"#;
        let page = parse_index(html);
        assert_eq!(page.offer_paths, vec!["/offer/3", "/offer/4"]);
        assert_eq!(page.next_path.as_deref(), Some("/listings/x?page=1"));
    }

    #[test]
    fn storefront_parsing() {
        let html = r#"<nav><a class="platform-link" href="/listings/instagram">IG</a>
            <a class="platform-link" href="/listings/tiktok">TT</a>
            <a href="/about">about</a></nav>"#;
        let paths = parse_storefront(html);
        assert_eq!(paths, vec!["/listings/instagram", "/listings/tiktok"]);
    }
}
