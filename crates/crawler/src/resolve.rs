//! The profile resolver: §3.2's "Profile Metadata Collection" and §8's
//! efficacy re-query.
//!
//! For every visible offer the resolver queries the platform's API for
//! profile metadata and the account's recent posts, recording the
//! platform's exact response vocabulary for failed lookups — that
//! vocabulary *is* the §8 signal.

use crate::persist::CampaignStore;
use crate::record::{FetchStatus, OfferRecord, PostRecord, ProfileRecord};
use acctrade_net::client::Client;
use acctrade_net::http::Status;
use acctrade_net::url::Url;
use acctrade_social::api::{ApiPost, ApiProfile};
use acctrade_social::platform::Platform;

/// Resolves visible accounts against platform APIs.
pub struct ProfileResolver<'a> {
    client: &'a Client,
    /// Posts fetched per account (the paper pulled recent timelines).
    pub timeline_limit: usize,
}

impl<'a> ProfileResolver<'a> {
    /// A resolver with the default timeline depth.
    pub fn new(client: &'a Client) -> ProfileResolver<'a> {
        ProfileResolver { client, timeline_limit: 400 }
    }

    /// Resolve one handle on one platform.
    pub fn resolve(&self, platform: Platform, handle: &str) -> ProfileRecord {
        let url = Url::http(platform.api_host(), "/users/lookup").with_param("handle", handle);
        let mut record = ProfileRecord {
            platform: platform.name().to_string(),
            handle: handle.to_string(),
            status: FetchStatus::Error,
            status_detail: None,
            user_id: None,
            name: None,
            description: None,
            location: None,
            category: None,
            email: None,
            phone: None,
            website: None,
            created_unix: None,
            account_type: None,
            followers: None,
            post_count: None,
        };
        let resp = match self.client.get_url(&url) {
            Ok(r) => r,
            Err(e) => {
                record.status_detail = Some(e.to_string());
                telemetry::with_recorder(|r| {
                    r.incr(
                        "resolve.lookups",
                        &[("platform", platform.name()), ("status", "transport_error")],
                        1,
                    );
                });
                return record;
            }
        };
        match resp.status {
            Status::Ok => {
                record.status = FetchStatus::Ok;
                if let Ok(p) = foundation::json::from_str::<ApiProfile>(&resp.text()) {
                    record.user_id = Some(p.user_id);
                    record.name = Some(p.name);
                    record.description = Some(p.description);
                    record.location = p.location;
                    record.category = p.category;
                    record.email = p.email;
                    record.phone = p.phone;
                    record.website = p.website;
                    record.created_unix = Some(p.created_unix);
                    record.account_type = Some(p.account_type);
                    record.followers = Some(p.followers);
                    record.post_count = Some(p.post_count);
                }
            }
            Status::Forbidden => {
                record.status = FetchStatus::Forbidden;
                record.status_detail = Some(resp.text());
            }
            Status::NotFound | Status::Gone => {
                record.status = FetchStatus::NotFound;
                record.status_detail = Some(resp.text());
            }
            _ => {
                record.status = FetchStatus::Error;
                record.status_detail = Some(format!("http {}", resp.status.code()));
            }
        }
        telemetry::with_recorder(|r| {
            let status = match record.status {
                FetchStatus::Ok => "ok",
                FetchStatus::Forbidden => "forbidden",
                FetchStatus::NotFound => "not_found",
                FetchStatus::Error => "error",
            };
            r.incr(
                "resolve.lookups",
                &[("platform", platform.name()), ("status", status)],
                1,
            );
        });
        record
    }

    /// Fetch an account's recent posts (empty on failure or restricted
    /// accounts).
    pub fn timeline(&self, platform: Platform, handle: &str) -> Vec<PostRecord> {
        let url = Url::http(platform.api_host(), "/timeline")
            .with_param("handle", handle)
            .with_param("limit", &self.timeline_limit.to_string());
        let Ok(resp) = self.client.get_url(&url) else {
            return Vec::new();
        };
        if resp.status != Status::Ok {
            return Vec::new();
        }
        let Ok(posts) = foundation::json::from_str::<Vec<ApiPost>>(&resp.text()) else {
            return Vec::new();
        };
        posts
            .into_iter()
            .map(|p| PostRecord {
                platform: platform.name().to_string(),
                handle: handle.to_string(),
                author_id: p.author_id,
                post_id: p.post_id,
                text: p.text,
                created_unix: p.created_unix,
                likes: p.likes,
                views: p.views,
            })
            .collect()
    }

    /// Resolve every visible offer: profiles plus timelines.
    pub fn resolve_offers(
        &self,
        offers: &[OfferRecord],
    ) -> (Vec<ProfileRecord>, Vec<PostRecord>) {
        self.resolve_offers_into(offers, None).expect("in-memory resolution cannot fail") // conformance: allow(panic-policy) — no store: infallible by construction
    }

    /// [`ProfileResolver::resolve_offers`], streaming every record into a
    /// durable [`CampaignStore`] as it is produced (when one is given).
    pub fn resolve_offers_into(
        &self,
        offers: &[OfferRecord],
        mut store: Option<&mut CampaignStore>,
    ) -> std::io::Result<(Vec<ProfileRecord>, Vec<PostRecord>)> {
        let mut profiles = Vec::new();
        let mut posts = Vec::new();
        for offer in offers.iter().filter(|o| o.is_visible()) {
            let Some(handle) = &offer.handle else { continue };
            let Some(platform) = offer.platform.as_deref().and_then(Platform::parse) else {
                continue;
            };
            let record = self.resolve(platform, handle);
            if record.status == FetchStatus::Ok {
                for post in self.timeline(platform, handle) {
                    if let Some(s) = store.as_deref_mut() {
                        s.append_post(&post)?;
                    }
                    posts.push(post);
                }
            }
            if let Some(s) = store.as_deref_mut() {
                s.append_profile(&record)?;
            }
            profiles.push(record);
        }
        Ok((profiles, posts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::sim::SimNet;
    use acctrade_social::account::AccountStatus;
    use acctrade_workload::world::{World, WorldParams};

    fn deployed_world(seed: u64) -> (World, std::sync::Arc<SimNet>) {
        let world = World::generate(WorldParams { seed, scale: 0.02 });
        let net = SimNet::new(seed);
        world.deploy(&net);
        (world, net)
    }

    #[test]
    fn resolves_live_account_with_metadata() {
        let (world, net) = deployed_world(11);
        let client = Client::new(&net, "acctrade-pipeline/0.1");
        let resolver = ProfileResolver::new(&client);
        // Pick a real handle from the Instagram store.
        let store = world.stores[&Platform::Instagram].read();
        let account = store.accounts_sorted()[0].clone();
        drop(store);
        let record = resolver.resolve(Platform::Instagram, &account.handle);
        assert_eq!(record.status, FetchStatus::Ok);
        assert_eq!(record.followers, Some(account.followers));
        assert_eq!(record.created_unix, Some(account.created_unix));
    }

    #[test]
    fn banned_and_missing_statuses_decoded() {
        let (world, net) = deployed_world(12);
        let client = Client::new(&net, "acctrade-pipeline/0.1");
        let resolver = ProfileResolver::new(&client);
        let handle = {
            let store = world.stores[&Platform::X].read();
            store.accounts_sorted()[0].handle.clone()
        };
        world.stores[&Platform::X]
            .write()
            .set_status(acctrade_social::account::AccountId(1), AccountStatus::Banned);
        // Re-find the account with id 1's handle.
        let banned_handle = {
            let store = world.stores[&Platform::X].read();
            store.account(acctrade_social::account::AccountId(1)).unwrap().handle.clone()
        };
        let record = resolver.resolve(Platform::X, &banned_handle);
        assert_eq!(record.status, FetchStatus::Forbidden);
        assert_eq!(record.status_detail.as_deref(), Some("Forbidden"));

        let record = resolver.resolve(Platform::X, "no_such_handle_ever");
        assert_eq!(record.status, FetchStatus::NotFound);
        assert_eq!(record.status_detail.as_deref(), Some("Not Found"));
        let _ = handle;
    }

    #[test]
    fn timelines_fetched_for_posting_accounts() {
        let (world, net) = deployed_world(13);
        let client = Client::new(&net, "acctrade-pipeline/0.1");
        let resolver = ProfileResolver::new(&client);
        // X accounts post heavily; find one with posts.
        let store = world.stores[&Platform::X].read();
        let account = store
            .accounts_sorted()
            .into_iter()
            .find(|a| a.post_count > 0)
            .expect("some X account posts")
            .clone();
        drop(store);
        let posts = resolver.timeline(Platform::X, &account.handle);
        assert!(!posts.is_empty());
        assert!(posts.iter().all(|p| p.platform == "X"));
        assert!(posts.len() as u64 <= account.post_count.max(400));
    }

    #[test]
    fn resolve_offers_end_to_end() {
        let (_world, net) = deployed_world(14);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let mut crawler =
            crate::crawl::MarketplaceCrawler::new(&client, acctrade_market::config::MarketplaceId::FameSwap);
        let (offers, _) = crawler.crawl(0);
        let resolver = ProfileResolver::new(&client);
        let (profiles, posts) = resolver.resolve_offers(&offers);
        let visible = offers.iter().filter(|o| o.is_visible()).count();
        assert_eq!(profiles.len(), visible);
        assert!(profiles.iter().any(|p| p.status == FetchStatus::Ok));
        // Some resolved accounts have timelines.
        assert!(!posts.is_empty());
    }
}
