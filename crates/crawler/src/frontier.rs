//! The crawl frontier.
//!
//! §3.2: "Given a seed URL, the crawler employs a depth-first strategy: it
//! visits a listing page, clicks on each offer to reach the offer webpage,
//! and collects its details ... stopping only when no new offers or
//! listing pages are found."
//!
//! Depth-first is the paper's choice; a breadth-first mode exists for the
//! ablation bench (it changes *when* offers are reached, not whether).

use std::collections::{BTreeSet, VecDeque};

/// Visit-order strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrawlOrder {
    /// LIFO — the paper's strategy: drain each listing page's offers
    /// before moving to the next page.
    #[default]
    DepthFirst,
    /// FIFO — visit all listing pages first, then their offers.
    BreadthFirst,
}

/// A de-duplicating frontier; every URL is visited at most once per
/// campaign, in DFS or BFS order.
#[derive(Debug, Default)]
pub struct Frontier {
    stack: VecDeque<String>,
    seen: BTreeSet<String>,
    order: CrawlOrder,
}

impl Frontier {
    /// An empty depth-first frontier (the paper's strategy).
    pub fn new() -> Frontier {
        Frontier::default()
    }

    /// An empty frontier with an explicit visit order.
    pub fn with_order(order: CrawlOrder) -> Frontier {
        Frontier { order, ..Frontier::default() }
    }

    /// Push a URL if it has never been enqueued. Returns `true` when the
    /// URL was fresh.
    pub fn push(&mut self, url: impl Into<String>) -> bool {
        let url = url.into();
        if self.seen.insert(url.clone()) {
            self.stack.push_back(url);
            true
        } else {
            false
        }
    }

    /// Push several URLs in order; later pushes pop first (DFS).
    pub fn push_all<I: IntoIterator<Item = String>>(&mut self, urls: I) -> usize {
        urls.into_iter().filter(|u| self.push(u.clone())).count()
    }

    /// Pop the next URL to visit (LIFO for depth-first, FIFO for
    /// breadth-first).
    pub fn pop(&mut self) -> Option<String> {
        match self.order {
            CrawlOrder::DepthFirst => self.stack.pop_back(),
            CrawlOrder::BreadthFirst => self.stack.pop_front(),
        }
    }

    /// Has the URL ever been enqueued?
    pub fn has_seen(&self, url: &str) -> bool {
        self.seen.contains(url)
    }

    /// URLs awaiting a visit.
    pub fn pending(&self) -> usize {
        self.stack.len()
    }

    /// Total distinct URLs ever enqueued.
    pub fn seen_count(&self) -> usize {
        self.seen.len()
    }

    /// Forget visit history but keep nothing queued — used between crawl
    /// iterations when re-visiting the same marketplace is intended.
    pub fn reset(&mut self) {
        self.stack.clear();
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_order() {
        let mut f = Frontier::new();
        f.push("a");
        f.push_all(vec!["b".to_string(), "c".to_string()]);
        assert_eq!(f.pop().as_deref(), Some("c"));
        assert_eq!(f.pop().as_deref(), Some("b"));
        assert_eq!(f.pop().as_deref(), Some("a"));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn bfs_order() {
        let mut f = Frontier::with_order(CrawlOrder::BreadthFirst);
        f.push("a");
        f.push_all(vec!["b".to_string(), "c".to_string()]);
        assert_eq!(f.pop().as_deref(), Some("a"));
        assert_eq!(f.pop().as_deref(), Some("b"));
        assert_eq!(f.pop().as_deref(), Some("c"));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn dedup_across_lifetime() {
        let mut f = Frontier::new();
        assert!(f.push("x"));
        assert!(!f.push("x"));
        f.pop();
        assert!(!f.push("x"), "visited URLs stay deduped");
        assert!(f.has_seen("x"));
        assert_eq!(f.seen_count(), 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut f = Frontier::new();
        f.push("x");
        f.reset();
        assert!(!f.has_seen("x"));
        assert_eq!(f.pending(), 0);
        assert!(f.push("x"));
    }

    #[test]
    fn push_all_reports_fresh_count() {
        let mut f = Frontier::new();
        f.push("a");
        let fresh = f.push_all(vec!["a".into(), "b".into(), "c".into(), "b".into()]);
        assert_eq!(fresh, 2);
    }
}
