//! The collection campaign: iterations over the Feb–Jun 2024 window.
//!
//! The paper crawled the marketplaces repeatedly between February and June
//! 2024; Figure 2 plots cumulative vs active listings per iteration. A
//! [`CrawlCampaign`] runs the crawler over all eleven marketplaces once
//! per iteration, advances the virtual clock between iterations, lets the
//! world churn/replenish, and records one [`IterationSnapshot`] per pass.

use crate::merge;
use crate::persist::{CampaignStore, ShardCursor};
use crate::record::{Dataset, OfferRecord, PriceObservationRecord};
use crate::steal;
use acctrade_net::client::Client;
use acctrade_net::clock::DAY;
use acctrade_workload::world::World;
use economy::EconomySim;
use foundation::json_codec_struct;
use std::collections::{BTreeMap, BTreeSet};
use std::io;

/// One iteration's view of the market (Figure 2's two curves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationSnapshot {
    /// Iteration.
    pub iteration: usize,
    /// Virtual date of the pass (unix seconds at iteration start).
    pub at_unix: i64,
    /// Distinct offers seen so far across all passes (cumulative curve).
    pub cumulative_offers: usize,
    /// Offers live during this pass (active curve).
    pub active_offers: usize,
    /// Offers first seen in this pass.
    pub new_offers: usize,
}

json_codec_struct! {
    IterationSnapshot { iteration, at_unix, cumulative_offers, active_offers, new_offers }
}

/// Accumulated campaign state, carried across an interruption.
///
/// A fresh campaign starts from [`CampaignProgress::default`]; a resumed
/// campaign rebuilds it from the checkpoint plus the records replayed out
/// of the store, then [`CrawlCampaign::run_resumable`] continues at
/// `next_iteration` as if the interruption never happened.
#[derive(Debug, Clone, Default)]
pub struct CampaignProgress {
    /// Deduplicated offers in first-seen order.
    pub offers: Vec<OfferRecord>,
    /// Offer URLs already seen (the dedup set).
    pub seen: BTreeSet<String>,
    /// Per-iteration snapshots so far.
    pub snapshots: Vec<IterationSnapshot>,
    /// The next iteration to execute.
    pub next_iteration: usize,
    /// Virtual timestamps at which `world.step_iteration` already ran
    /// (replayed verbatim on resume so the world evolves identically).
    pub step_unixes: Vec<i64>,
    /// Per-shard lane cursors from the last completed iteration (folded
    /// into the checkpoint as parallel-crawl provenance).
    pub shard_cursors: Vec<ShardCursor>,
    /// Repricings observed on re-visited offers (only ever non-empty
    /// when a live economy reprices listings between iterations).
    pub price_obs: Vec<PriceObservationRecord>,
    /// Last price parsed per offer URL (the re-visit comparison basis).
    pub last_price: BTreeMap<String, f64>,
}

/// Default virtual days between iterations (the paper's ~150-day
/// Feb–Jun window spread over ~10 passes).
pub const DEFAULT_DAYS_BETWEEN: u64 = 15;

/// The full collection campaign.
pub struct CrawlCampaign<'a> {
    client: &'a Client,
    /// Virtual days between iterations (the Feb–Jun window spread over
    /// the configured number of passes).
    pub days_between: u64,
    /// Worker threads for the sharded crawl engine. Any value produces
    /// byte-identical artifacts — shards run on deterministic lanes and
    /// merge canonically ([`crate::steal`], [`crate::merge`]) — so this
    /// knob only trades wall-clock time.
    pub workers: usize,
    /// Crash-injection hook: kill the process model after
    /// `(iteration, shards)` — i.e. once that many shards of that
    /// iteration completed — leaving the iteration unpersisted, exactly
    /// like a real mid-crawl death. Test-only plumbing.
    pub shard_kill: Option<(usize, usize)>,
}

impl<'a> CrawlCampaign<'a> {
    /// A campaign with the paper's spacing: 10 iterations across ~150
    /// days.
    pub fn new(client: &'a Client) -> CrawlCampaign<'a> {
        CrawlCampaign {
            client,
            days_between: DEFAULT_DAYS_BETWEEN,
            workers: 1,
            shard_kill: None,
        }
    }

    /// Run `iterations` passes over all marketplaces, evolving `world`
    /// between passes. Returns the deduplicated offer dataset and the
    /// per-iteration snapshots.
    pub fn run(
        &self,
        world: &mut World,
        iterations: usize,
    ) -> (Dataset, Vec<IterationSnapshot>) {
        let mut progress = CampaignProgress::default();
        self.run_resumable(world, iterations, &mut progress, None, None, |_, _| Ok(true))
            .expect("in-memory campaign cannot fail"); // conformance: allow(panic-policy) — no store and no kill hook: infallible by construction
        let dataset = Dataset { offers: progress.offers, ..Dataset::default() };
        (dataset, progress.snapshots)
    }

    /// Run (or continue) the campaign, optionally streaming every newly
    /// seen offer into a durable [`CampaignStore`].
    ///
    /// The loop starts at `progress.next_iteration` and executes exactly
    /// the same work — in exactly the same telemetry order — as
    /// [`CrawlCampaign::run`]. After each iteration the store (when
    /// present) is synced and `after_iteration` runs; the caller uses it
    /// to write a checkpoint. Returning `Ok(false)` from the closure
    /// stops the campaign early (the crash-injection hook); the progress
    /// accumulated so far stays in `progress`.
    ///
    /// When an `economy` simulator is attached it is advanced — in the
    /// sequential section, after each inter-iteration `world` step — to
    /// the stepped timestamp, its freshly emitted events are streamed
    /// into the store (before the sync that commits the iteration), and
    /// offers whose re-parsed price changed since their first collection
    /// are recorded as [`PriceObservationRecord`]s. With no economy the
    /// byte stream written here is identical to the pre-economy code.
    pub fn run_resumable<F>(
        &self,
        world: &mut World,
        iterations: usize,
        progress: &mut CampaignProgress,
        mut store: Option<&mut CampaignStore>,
        mut economy: Option<&mut EconomySim>,
        mut after_iteration: F,
    ) -> io::Result<()>
    where
        F: FnMut(&CampaignProgress, &mut Option<&mut CampaignStore>) -> io::Result<bool>,
    {
        for iteration in progress.next_iteration..iterations {
            let at_unix = self.client.net().clock().now_unix();
            let kill = match self.shard_kill {
                Some((at, shards)) if at == iteration => Some(shards),
                _ => None,
            };
            let run = steal::run_iteration(self.client, iteration, self.workers, kill);
            if run.killed {
                // A mid-parallel death: lanes are discarded, nothing
                // was appended to the store, and `progress` still says
                // this iteration never ran — resume re-executes it from
                // the last checkpoint.
                return Ok(());
            }

            // Fold the shard lanes back into the fabric in canonical
            // shard order: the shared log and clock end up identical no
            // matter which workers ran which shards.
            let net = self.client.net();
            let mut cursors = Vec::new();
            for (market, lane) in &run.discovery {
                cursors.push(ShardCursor {
                    marketplace: market.name().to_string(),
                    chain: 0,
                    lane_end_us: lane.now_us(),
                    lane_rng_words: lane.rng_word_position(),
                    records: 0,
                });
                net.absorb_lane(lane);
            }
            for outcome in &run.outcomes {
                cursors.push(ShardCursor {
                    marketplace: outcome.market.name().to_string(),
                    chain: outcome.chain,
                    lane_end_us: outcome.lane.now_us(),
                    lane_rng_words: outcome.lane.rng_word_position(),
                    records: outcome.records.len() as u64,
                });
                net.absorb_lane(&outcome.lane);
            }
            cursors.sort_by(|a, b| (&a.marketplace, a.chain).cmp(&(&b.marketplace, b.chain)));
            progress.shard_cursors = cursors;

            // Deterministic merge: virtual-timestamp order with the
            // stable (marketplace, offer_url, iteration) tiebreak —
            // never completion order.
            let merged =
                merge::merge_shards(run.outcomes.into_iter().map(|o| o.records).collect());
            let active = merged.len();
            let mut fresh = 0usize;
            for record in merged {
                if progress.seen.insert(record.offer_url.clone()) {
                    fresh += 1;
                    if let Some(p) = record.price_usd {
                        progress.last_price.insert(record.offer_url.clone(), p);
                    }
                    if let Some(s) = store.as_deref_mut() {
                        s.append_offer(&record)?;
                    }
                    progress.offers.push(record);
                } else if let Some(price) = record.price_usd {
                    // Re-visit of a known offer: a changed parsed price
                    // is one observation of its price trajectory. Inert
                    // without a live economy — nothing ever reprices, so
                    // this branch appends nothing and baseline stores
                    // stay byte-identical.
                    let prev = progress.last_price.get(&record.offer_url).copied();
                    if let Some(prev) = prev {
                        if (price - prev).abs() > 0.005 {
                            let obs = PriceObservationRecord {
                                marketplace: record.marketplace.clone(),
                                offer_url: record.offer_url.clone(),
                                iteration,
                                collected_unix: record.collected_unix,
                                prev_price_usd: prev,
                                price_usd: price,
                            };
                            if let Some(s) = store.as_deref_mut() {
                                s.append_price_observation(&obs)?;
                            }
                            progress.price_obs.push(obs);
                            progress.last_price.insert(record.offer_url.clone(), price);
                            telemetry::with_recorder(|r| {
                                r.incr("campaign.price_observations", &[], 1)
                            });
                        }
                    } else {
                        progress.last_price.insert(record.offer_url.clone(), price);
                    }
                }
            }
            telemetry::with_recorder(|r| {
                r.event(
                    "campaign.iteration",
                    format!(
                        "iteration={iteration} active={active} new={fresh} cumulative={}",
                        progress.seen.len()
                    ),
                );
                r.gauge_set("campaign.cumulative_offers", &[], progress.seen.len() as f64);
                r.gauge_set("campaign.active_offers", &[], active as f64);
            });
            progress.snapshots.push(IterationSnapshot {
                iteration,
                at_unix,
                cumulative_offers: progress.seen.len(),
                active_offers: active,
                new_offers: fresh,
            });
            progress.next_iteration = iteration + 1;

            if iteration + 1 < iterations {
                // Advance the window and let the market evolve.
                self.client.net().clock().advance(self.days_between * DAY);
                let stepped_at = self.client.net().clock().now_unix();
                world.step_iteration(stepped_at);
                progress.step_unixes.push(stepped_at);
                if let Some(sim) = economy.as_deref_mut() {
                    // Sequential section: the economy's engines run to
                    // the stepped timestamp in their total event order,
                    // independent of how many workers crawled.
                    sim.advance_to(world, stepped_at);
                }
            }

            if let Some(sim) = economy.as_deref_mut() {
                // Stream fresh economy events ahead of the sync so the
                // checkpoint's committed_records covers them; a killed
                // run replays exactly the events its checkpoint saw.
                if let Some(s) = store.as_deref_mut() {
                    for event in sim.unpersisted() {
                        s.append_economy_event(event)?;
                    }
                    sim.mark_all_persisted();
                }
            }

            if let Some(s) = store.as_deref_mut() {
                s.sync()?;
            }
            if !after_iteration(progress, &mut store)? {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Deduplicate offers by URL keeping first-seen order (used when merging
/// externally collected record sets).
// conformance: allow(pub-hygiene) — tested merge utility kept as public API
pub fn dedup_offers(offers: Vec<OfferRecord>) -> Vec<OfferRecord> {
    let mut seen = BTreeSet::new();
    offers
        .into_iter()
        .filter(|o| seen.insert(o.offer_url.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::sim::SimNet;
    use acctrade_workload::world::{World, WorldParams};

    #[test]
    fn campaign_reproduces_figure2_shape() {
        let mut world = World::generate(WorldParams { seed: 21, scale: 0.01 });
        let net = SimNet::new(21);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let campaign = CrawlCampaign::new(&client);
        let (dataset, snaps) = campaign.run(&mut world, 6);

        assert_eq!(snaps.len(), 6);
        // Cumulative listings grow monotonically.
        assert!(snaps.windows(2).all(|w| w[1].cumulative_offers >= w[0].cumulative_offers));
        // Churn eventually pushes active below cumulative.
        let last = snaps.last().unwrap();
        assert!(last.active_offers < last.cumulative_offers);
        // Replenishment adds new offers after the first pass.
        assert!(snaps[1..].iter().any(|s| s.new_offers > 0));
        // Dataset holds each offer exactly once.
        let urls: BTreeSet<_> = dataset.offers.iter().map(|o| &o.offer_url).collect();
        assert_eq!(urls.len(), dataset.offers.len());
        assert_eq!(dataset.offers.len(), last.cumulative_offers);
    }

    #[test]
    fn clock_advances_between_iterations() {
        let mut world = World::generate(WorldParams { seed: 22, scale: 0.005 });
        let net = SimNet::new(22);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let campaign = CrawlCampaign::new(&client);
        let t0 = net.clock().now_unix();
        let (_, snaps) = campaign.run(&mut world, 3);
        let elapsed_days = (net.clock().now_unix() - t0) / 86_400;
        assert!(elapsed_days >= 30, "two 15-day gaps expected, got {elapsed_days}d");
        assert!(snaps[1].at_unix > snaps[0].at_unix);
    }

    #[test]
    fn dedup_keeps_first_record() {
        let mk = |url: &str, it: usize| OfferRecord {
            marketplace: "m".into(),
            offer_url: url.into(),
            title: String::new(),
            seller: None,
            seller_country: None,
            price_usd: None,
            platform: None,
            category: None,
            claimed_followers: None,
            claims_verified: false,
            monthly_revenue_usd: None,
            income_source: None,
            description: None,
            profile_link: None,
            handle: None,
            collected_unix: 0,
            iteration: it,
        };
        let out = dedup_offers(vec![mk("a", 0), mk("b", 0), mk("a", 1)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].iteration, 0);
    }
}
