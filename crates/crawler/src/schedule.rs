//! The collection campaign: iterations over the Feb–Jun 2024 window.
//!
//! The paper crawled the marketplaces repeatedly between February and June
//! 2024; Figure 2 plots cumulative vs active listings per iteration. A
//! [`CrawlCampaign`] runs the crawler over all eleven marketplaces once
//! per iteration, advances the virtual clock between iterations, lets the
//! world churn/replenish, and records one [`IterationSnapshot`] per pass.

use crate::crawl::MarketplaceCrawler;
use crate::record::{Dataset, OfferRecord};
use acctrade_market::config::ALL_MARKETPLACES;
use acctrade_net::client::Client;
use acctrade_net::clock::DAY;
use acctrade_workload::world::World;
use std::collections::HashSet;

/// One iteration's view of the market (Figure 2's two curves).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IterationSnapshot {
    /// Iteration.
    pub iteration: usize,
    /// Virtual date of the pass (unix seconds at iteration start).
    pub at_unix: i64,
    /// Distinct offers seen so far across all passes (cumulative curve).
    pub cumulative_offers: usize,
    /// Offers live during this pass (active curve).
    pub active_offers: usize,
    /// Offers first seen in this pass.
    pub new_offers: usize,
}

/// The full collection campaign.
pub struct CrawlCampaign<'a> {
    client: &'a Client,
    /// Virtual days between iterations (the Feb–Jun window spread over
    /// the configured number of passes).
    pub days_between: u64,
}

impl<'a> CrawlCampaign<'a> {
    /// A campaign with the paper's spacing: 10 iterations across ~150
    /// days.
    pub fn new(client: &'a Client) -> CrawlCampaign<'a> {
        CrawlCampaign { client, days_between: 15 }
    }

    /// Run `iterations` passes over all marketplaces, evolving `world`
    /// between passes. Returns the deduplicated offer dataset and the
    /// per-iteration snapshots.
    pub fn run(
        &self,
        world: &mut World,
        iterations: usize,
    ) -> (Dataset, Vec<IterationSnapshot>) {
        let mut dataset = Dataset::default();
        let mut seen: HashSet<String> = HashSet::new();
        let mut snapshots = Vec::with_capacity(iterations);

        for iteration in 0..iterations {
            let at_unix = self.client.net().clock().now_unix();
            let mut active = 0usize;
            let mut fresh = 0usize;
            for market in ALL_MARKETPLACES {
                let mut crawler = MarketplaceCrawler::new(self.client, market);
                let (records, _stats) = crawler.crawl(iteration);
                active += records.len();
                for record in records {
                    if seen.insert(record.offer_url.clone()) {
                        fresh += 1;
                        dataset.offers.push(record);
                    }
                }
            }
            telemetry::with_recorder(|r| {
                r.event(
                    "campaign.iteration",
                    format!(
                        "iteration={iteration} active={active} new={fresh} cumulative={}",
                        seen.len()
                    ),
                );
                r.gauge_set("campaign.cumulative_offers", &[], seen.len() as f64);
                r.gauge_set("campaign.active_offers", &[], active as f64);
            });
            snapshots.push(IterationSnapshot {
                iteration,
                at_unix,
                cumulative_offers: seen.len(),
                active_offers: active,
                new_offers: fresh,
            });

            if iteration + 1 < iterations {
                // Advance the window and let the market evolve.
                self.client.net().clock().advance(self.days_between * DAY);
                world.step_iteration(self.client.net().clock().now_unix());
            }
        }
        (dataset, snapshots)
    }
}

/// Deduplicate offers by URL keeping first-seen order (used when merging
/// externally collected record sets).
pub fn dedup_offers(offers: Vec<OfferRecord>) -> Vec<OfferRecord> {
    let mut seen = HashSet::new();
    offers
        .into_iter()
        .filter(|o| seen.insert(o.offer_url.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::sim::SimNet;
    use acctrade_workload::world::{World, WorldParams};

    #[test]
    fn campaign_reproduces_figure2_shape() {
        let mut world = World::generate(WorldParams { seed: 21, scale: 0.01 });
        let net = SimNet::new(21);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let campaign = CrawlCampaign::new(&client);
        let (dataset, snaps) = campaign.run(&mut world, 6);

        assert_eq!(snaps.len(), 6);
        // Cumulative listings grow monotonically.
        assert!(snaps.windows(2).all(|w| w[1].cumulative_offers >= w[0].cumulative_offers));
        // Churn eventually pushes active below cumulative.
        let last = snaps.last().unwrap();
        assert!(last.active_offers < last.cumulative_offers);
        // Replenishment adds new offers after the first pass.
        assert!(snaps[1..].iter().any(|s| s.new_offers > 0));
        // Dataset holds each offer exactly once.
        let urls: HashSet<_> = dataset.offers.iter().map(|o| &o.offer_url).collect();
        assert_eq!(urls.len(), dataset.offers.len());
        assert_eq!(dataset.offers.len(), last.cumulative_offers);
    }

    #[test]
    fn clock_advances_between_iterations() {
        let mut world = World::generate(WorldParams { seed: 22, scale: 0.005 });
        let net = SimNet::new(22);
        world.deploy(&net);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let campaign = CrawlCampaign::new(&client);
        let t0 = net.clock().now_unix();
        let (_, snaps) = campaign.run(&mut world, 3);
        let elapsed_days = (net.clock().now_unix() - t0) / 86_400;
        assert!(elapsed_days >= 30, "two 15-day gaps expected, got {elapsed_days}d");
        assert!(snaps[1].at_unix > snaps[0].at_unix);
    }

    #[test]
    fn dedup_keeps_first_record() {
        let mk = |url: &str, it: usize| OfferRecord {
            marketplace: "m".into(),
            offer_url: url.into(),
            title: String::new(),
            seller: None,
            seller_country: None,
            price_usd: None,
            platform: None,
            category: None,
            claimed_followers: None,
            claims_verified: false,
            monthly_revenue_usd: None,
            income_source: None,
            description: None,
            profile_link: None,
            handle: None,
            collected_unix: 0,
            iteration: it,
        };
        let out = dedup_offers(vec![mk("a", 0), mk("b", 0), mk("a", 1)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].iteration, 0);
    }
}
