//! §9's proposed platform-side indicators, implemented so they can be
//! evaluated — the paper recommends them but could not test them.
//!
//! * **Referral monitoring** — "monitoring referral headers that are
//!   directed from marketplaces that buy and sell social media profiles":
//!   [`ReferralMonitor`] wraps a platform's public web host and records
//!   every profile visit whose `Referer` points at a known marketplace.
//! * **Behavioral monitoring** — "rapid follower growth ... that may
//!   indicate a likelihood of engagement or account farming":
//!   [`RapidGrowthDetector`] scores follower trajectories by their
//!   maximum single-day relative growth.

use crate::account::AccountDisposition;
use crate::engagement::{GrowthModel, Trajectory};
use acctrade_net::http::{Request, Response};
use acctrade_net::server::{RequestCtx, Service};
use acctrade_net::url::Url;
use foundation::sync::Mutex;
use foundation::rng::Rng;
use std::collections::{HashMap, HashSet};

// ---------------------------------------------------------------------------
// Referral monitoring
// ---------------------------------------------------------------------------

/// A platform's public profile host instrumented with §9's referral
/// monitor. Serves minimal profile pages; records `(handle, referer
/// host)` whenever the referer belongs to the marketplace watchlist.
pub struct ReferralMonitor {
    watchlist: HashSet<String>,
    flagged: Mutex<HashMap<String, Vec<String>>>,
    visits: Mutex<u64>,
}

impl ReferralMonitor {
    /// Create a monitor with a marketplace-host watchlist.
    pub fn new<I: IntoIterator<Item = String>>(watchlist: I) -> ReferralMonitor {
        ReferralMonitor {
            watchlist: watchlist.into_iter().collect(),
            flagged: Mutex::new(HashMap::new()),
            visits: Mutex::new(0),
        }
    }

    /// Handles flagged so far, with the marketplace hosts that referred
    /// traffic to them.
    pub fn flagged(&self) -> HashMap<String, Vec<String>> {
        self.flagged.lock().clone()
    }

    /// Distinct flagged handles.
    pub fn flagged_count(&self) -> usize {
        self.flagged.lock().len()
    }

    /// Total profile visits observed (flagged or not).
    pub fn visit_count(&self) -> u64 {
        *self.visits.lock()
    }
}

impl Service for ReferralMonitor {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
        *self.visits.lock() += 1;
        let handle = req.url.path().trim_start_matches('/').to_string();
        if handle.is_empty() {
            return Response::not_found("no such profile");
        }
        if let Some(referer) = req.headers.get("referer") {
            if let Ok(url) = Url::parse(referer) {
                if self.watchlist.contains(url.host()) {
                    self.flagged
                        .lock()
                        .entry(handle.clone())
                        .or_default()
                        .push(url.host().to_string());
                }
            }
        }
        Response::ok().with_html(format!(
            "<html><body><h1 class=\"profile\">@{handle}</h1></body></html>"
        ))
    }
}

// ---------------------------------------------------------------------------
// Rapid-growth detection
// ---------------------------------------------------------------------------

/// Simulate the follower trajectory a platform's telemetry would hold for
/// an account of the given disposition (the behavioural ground truth the
/// §9 recommendation assumes platforms can see).
pub fn telemetry_trajectory<R: Rng + ?Sized>(
    disposition: AccountDisposition,
    current_followers: u64,
    days: u32,
    rng: &mut R,
) -> Trajectory {
    let start = (current_followers / 4).max(10);
    let model = match disposition {
        AccountDisposition::Organic => GrowthModel::Organic { daily_rate: 0.004 },
        // Harvested accounts grew organically under their original owner.
        AccountDisposition::Harvested => GrowthModel::Organic { daily_rate: 0.006 },
        AccountDisposition::Farmed => GrowthModel::Farmed {
            daily_rate: 0.002,
            burst_prob: 0.04,
            burst_size: (current_followers / 6).max(500),
        },
        AccountDisposition::ScamOperator => GrowthModel::Farmed {
            daily_rate: 0.003,
            burst_prob: 0.07,
            burst_size: (current_followers / 4).max(800),
        },
    };
    let mut trajectory = model.simulate(start, days, rng);
    // Organic accounts occasionally go viral — a one-day spike that looks
    // exactly like a follower purchase. This is what makes the indicator a
    // real precision/recall tradeoff instead of a clean separator.
    use foundation::rng::RngExt as _;
    if matches!(
        disposition,
        AccountDisposition::Organic | AccountDisposition::Harvested
    ) && days > 0
        && rng.random_bool(0.08)
    {
        let day = rng.random_range(1..=days as usize);
        let boost = rng.random_range(1.25..1.9);
        for point in trajectory.iter_mut().skip(day) {
            point.1 = (point.1 as f64 * boost) as u64;
        }
    }
    trajectory
}

/// The rapid-follower-growth detector: flag accounts whose maximum
/// single-day relative growth exceeds `ratio_threshold`.
#[derive(Debug, Clone, Copy)]
pub struct RapidGrowthDetector {
    /// Ratio threshold.
    pub ratio_threshold: f64,
}

impl RapidGrowthDetector {
    /// A detector at the given threshold (e.g. 0.2 = +20% in one day).
    pub fn new(ratio_threshold: f64) -> RapidGrowthDetector {
        RapidGrowthDetector { ratio_threshold }
    }

    /// Score a trajectory (higher = more suspicious).
    pub fn score(&self, trajectory: &Trajectory) -> f64 {
        GrowthModel::max_daily_growth_ratio(trajectory)
    }

    /// Would the detector flag this trajectory?
    pub fn flags(&self, trajectory: &Trajectory) -> bool {
        self.score(trajectory) > self.ratio_threshold
    }
}

/// Confusion-matrix metrics for a binary detector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorMetrics {
    /// True positives.
    pub true_positives: usize,
    /// False positives.
    pub false_positives: usize,
    /// False negatives.
    pub false_negatives: usize,
    /// True negatives.
    pub true_negatives: usize,
}

impl DetectorMetrics {
    /// Record one prediction.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, true) => self.false_negatives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Precision (1.0 when nothing was flagged).
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// Recall (1.0 when there were no positives to find).
    pub fn recall(&self) -> f64 {
        let actual = self.true_positives + self.false_negatives;
        if actual == 0 {
            1.0
        } else {
            self.true_positives as f64 / actual as f64
        }
    }

    /// F1 score.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Total predictions recorded.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::prelude::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn referral_monitor_flags_marketplace_referers_only() {
        let net = SimNet::new(1);
        net.register(
            "instagram.example",
            ReferralMonitor::new(vec!["accsmarket.com".to_string()]),
        );
        let client = Client::new(&net, "buyer-browser");

        // Marketplace-referred visit: flagged.
        let req = Request::get(Url::parse("http://instagram.example/fashion.daily").unwrap())
            .with_header("referer", "http://accsmarket.com/offer/12");
        client.execute(req).unwrap();
        // Organic visit: not flagged.
        client.get("http://instagram.example/other.profile").unwrap();
        // Non-watchlist referer: not flagged.
        let req = Request::get(Url::parse("http://instagram.example/third.profile").unwrap())
            .with_header("referer", "http://blog.example/post");
        client.execute(req).unwrap();

        // Re-read the monitor through a fresh registration reference is
        // not possible; use a second monitor instance to verify behaviour
        // directly instead.
        let monitor = ReferralMonitor::new(vec!["accsmarket.com".to_string()]);
        let ctx = acctrade_net::server::RequestCtx::test();
        let req = Request::get(Url::parse("http://x/handle1").unwrap())
            .with_header("referer", "http://accsmarket.com/offer/1");
        monitor.handle(&req, &ctx);
        let req = Request::get(Url::parse("http://x/handle2").unwrap());
        monitor.handle(&req, &ctx);
        assert_eq!(monitor.flagged_count(), 1);
        assert_eq!(monitor.visit_count(), 2);
        assert!(monitor.flagged().contains_key("handle1"));
    }

    #[test]
    fn farmed_accounts_score_higher_than_organic() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let detector = RapidGrowthDetector::new(0.2);
        let mut organic_flagged = 0;
        let mut farmed_flagged = 0;
        let n = 200;
        for _ in 0..n {
            let organic =
                telemetry_trajectory(AccountDisposition::Organic, 20_000, 180, &mut rng);
            let farmed = telemetry_trajectory(AccountDisposition::Farmed, 20_000, 180, &mut rng);
            if detector.flags(&organic) {
                organic_flagged += 1;
            }
            if detector.flags(&farmed) {
                farmed_flagged += 1;
            }
        }
        assert!(farmed_flagged > n * 8 / 10, "farmed flagged {farmed_flagged}/{n}");
        assert!(organic_flagged < n * 15 / 100, "organic flagged {organic_flagged}/{n}");
    }

    #[test]
    fn metrics_math() {
        let mut m = DetectorMetrics::default();
        m.record(true, true);
        m.record(true, true);
        m.record(true, false);
        m.record(false, true);
        m.record(false, false);
        assert_eq!(m.total(), 5);
        assert!((m.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.f1() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_degenerate_cases() {
        let m = DetectorMetrics::default();
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
    }

    #[test]
    fn monitor_404s_on_root() {
        let monitor = ReferralMonitor::new(std::iter::empty());
        let ctx = acctrade_net::server::RequestCtx::test();
        let resp = monitor.handle(&Request::get(Url::parse("http://x/").unwrap()), &ctx);
        assert_eq!(resp.status, Status::NotFound);
    }
}
