//! The five platforms and their per-platform constants.
//!
//! Calibration values come straight from the paper:
//!
//! * creation-date windows (§5, Figure 4): TikTok accounts date 2017–2024,
//!   X/Instagram/Facebook back to 2010, YouTube back to 2006 (with < 0.5%
//!   in 2006–2010);
//! * visible-account follower medians (Table 4);
//! * blocking-efficacy targets (Table 8): TikTok 48%, Instagram 46.41%,
//!   X 18.67%, Facebook 5.70%, YouTube 5.02%.

use foundation::json_codec_enum;
use std::fmt;

/// A social media platform in the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Platform {
    /// X (formerly Twitter).
    X,
    /// Instagram.
    Instagram,
    /// Facebook.
    Facebook,
    /// Tik tok.
    TikTok,
    /// You tube.
    YouTube,
}

/// All five platforms, in the paper's canonical Table 2 order.
pub const ALL_PLATFORMS: [Platform; 5] = [
    Platform::Instagram,
    Platform::YouTube,
    Platform::TikTok,
    Platform::Facebook,
    Platform::X,
];

impl Platform {
    /// Human-readable platform name as the paper prints it.
    pub fn name(self) -> &'static str {
        match self {
            Platform::X => "X",
            Platform::Instagram => "Instagram",
            Platform::Facebook => "Facebook",
            Platform::TikTok => "TikTok",
            Platform::YouTube => "YouTube",
        }
    }

    /// The simulated API hostname the measurement pipeline queries.
    pub fn api_host(self) -> &'static str {
        match self {
            Platform::X => "api.x.example",
            Platform::Instagram => "api.instagram.example",
            Platform::Facebook => "api.facebook.example",
            Platform::TikTok => "api.tiktok.example",
            Platform::YouTube => "api.youtube.example",
        }
    }

    /// The public profile hostname used in marketplace listing links.
    pub fn web_host(self) -> &'static str {
        match self {
            Platform::X => "x.example",
            Platform::Instagram => "instagram.example",
            Platform::Facebook => "facebook.example",
            Platform::TikTok => "tiktok.example",
            Platform::YouTube => "youtube.example",
        }
    }

    /// Earliest plausible account-creation year on the platform
    /// (platform launch; §5/Figure 4).
    pub fn earliest_creation_year(self) -> i32 {
        match self {
            Platform::YouTube => 2006,
            Platform::X | Platform::Instagram | Platform::Facebook => 2010,
            Platform::TikTok => 2017,
        }
    }

    /// Median follower count of *visible advertised* accounts (Table 4).
    pub fn table4_median_followers(self) -> u64 {
        match self {
            Platform::TikTok => 1,
            Platform::X => 2_752,
            Platform::Facebook => 27_669,
            Platform::Instagram => 8_362,
            Platform::YouTube => 8_460,
        }
    }

    /// Maximum follower count of visible advertised accounts (Table 4).
    pub fn table4_max_followers(self) -> u64 {
        match self {
            Platform::TikTok => 6_893,
            Platform::X => 1_078_130,
            Platform::Facebook => 5_239_529,
            Platform::Instagram => 6_288_290,
            Platform::YouTube => 20_500_000,
        }
    }

    /// Minimum follower count of visible advertised accounts (Table 4).
    pub fn table4_min_followers(self) -> u64 {
        match self {
            Platform::TikTok | Platform::YouTube => 0,
            Platform::X => 55,
            Platform::Facebook => 115,
            Platform::Instagram => 1_032,
        }
    }

    /// Blocking-efficacy target from Table 8, percent of visible accounts
    /// actioned by the platform.
    pub fn table8_efficacy_pct(self) -> f64 {
        match self {
            Platform::YouTube => 5.02,
            Platform::Facebook => 5.70,
            Platform::X => 18.67,
            Platform::Instagram => 46.41,
            Platform::TikTok => 48.0,
        }
    }

    /// Median advertised *price* on public marketplaces (§4.1).
    pub fn median_advertised_price_usd(self) -> f64 {
        match self {
            Platform::Facebook => 14.0,
            Platform::X => 17.0,
            Platform::Instagram => 298.0,
            Platform::TikTok => 755.0,
            Platform::YouTube => 759.0,
        }
    }

    /// The phrase this platform's API uses for a missing account — the
    /// vocabulary §8 keys on.
    pub fn missing_account_phrase(self) -> &'static str {
        match self {
            Platform::X => "Not Found",
            Platform::Instagram => "Page Not Found",
            Platform::TikTok => "Profile does not exist",
            Platform::YouTube => "Channel does not exist",
            Platform::Facebook => "Profile does not exist",
        }
    }

    /// The phrase this platform's API uses for a banned account.
    pub fn banned_account_phrase(self) -> &'static str {
        match self {
            Platform::X => "Forbidden",
            _ => "Account suspended",
        }
    }

    /// Parse a platform from its printed name (case-insensitive; accepts
    /// "twitter" for X).
    pub fn parse(s: &str) -> Option<Platform> {
        match s.to_ascii_lowercase().as_str() {
            "x" | "twitter" => Some(Platform::X),
            "instagram" | "ig" => Some(Platform::Instagram),
            "facebook" | "fb" => Some(Platform::Facebook),
            "tiktok" | "tt" => Some(Platform::TikTok),
            "youtube" | "yt" => Some(Platform::YouTube),
            _ => None,
        }
    }
}

json_codec_enum! {
    Platform { X, Instagram, Facebook, TikTok, YouTube }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_back() {
        for p in ALL_PLATFORMS {
            assert_eq!(Platform::parse(p.name()), Some(p));
        }
        assert_eq!(Platform::parse("twitter"), Some(Platform::X));
        assert_eq!(Platform::parse("myspace"), None);
    }

    #[test]
    fn hosts_are_distinct() {
        let mut hosts: Vec<&str> = ALL_PLATFORMS.iter().map(|p| p.api_host()).collect();
        hosts.extend(ALL_PLATFORMS.iter().map(|p| p.web_host()));
        let n = hosts.len();
        hosts.sort();
        hosts.dedup();
        assert_eq!(hosts.len(), n);
    }

    #[test]
    fn tiktok_is_youngest_platform() {
        assert!(Platform::TikTok.earliest_creation_year() > Platform::YouTube.earliest_creation_year());
    }

    #[test]
    fn efficacy_ordering_matches_table8() {
        // TikTok & Instagram high; YouTube & Facebook low.
        assert!(Platform::TikTok.table8_efficacy_pct() > 40.0);
        assert!(Platform::Instagram.table8_efficacy_pct() > 40.0);
        assert!(Platform::YouTube.table8_efficacy_pct() < 6.0);
        assert!(Platform::Facebook.table8_efficacy_pct() < 6.0);
    }

    #[test]
    fn price_ordering_matches_section41() {
        assert!(
            Platform::TikTok.median_advertised_price_usd()
                > Platform::Instagram.median_advertised_price_usd()
        );
        assert!(
            Platform::Instagram.median_advertised_price_usd()
                > Platform::X.median_advertised_price_usd()
        );
        assert!(
            Platform::X.median_advertised_price_usd()
                > Platform::Facebook.median_advertised_price_usd()
        );
    }

    #[test]
    fn x_uses_forbidden_vocabulary() {
        assert_eq!(Platform::X.banned_account_phrase(), "Forbidden");
        assert_eq!(Platform::Instagram.missing_account_phrase(), "Page Not Found");
    }
}
