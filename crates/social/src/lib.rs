#![warn(missing_docs)]

//! # acctrade-social
//!
//! Simulators for the five social media platforms the paper studies: **X,
//! Instagram, Facebook, TikTok, and YouTube**.
//!
//! Each platform is a stateful store of accounts and posts plus an HTTP API
//! service (over [`acctrade_net`]) with the platform's own response
//! vocabulary — the paper's efficacy analysis (§8) keys on exactly these
//! differences (`Forbidden` vs `Not Found` on X, "Page Not Found" on
//! Instagram, "profile/channel does not exist" elsewhere).
//!
//! * [`platform`] — the platform enum and per-platform constants
//!   (creation-date windows, follower scales, API hosts, detection
//!   efficacy targets from Table 8);
//! * [`account`] — profile metadata (the fields the paper collects:
//!   names, descriptions, locations, creation dates, categories, contact
//!   attributes, account types);
//! * [`post`] — posts with engagement counters;
//! * [`engagement`] — follower-growth models (organic vs farmed vs
//!   purchased) and engagement sampling;
//! * [`moderation`] — the platform-side detection engine that bans or
//!   removes accounts over time;
//! * [`store`] — the in-memory account/post database;
//! * [`api`] — the JSON API service the measurement pipeline queries.

pub mod account;
pub mod api;
pub mod detector;
pub mod engagement;
pub mod moderation;
pub mod platform;
pub mod post;
pub mod store;

pub use account::{AccountId, AccountProfile, AccountStatus, AccountType};
pub use detector::{DetectorMetrics, RapidGrowthDetector, ReferralMonitor};
pub use api::PlatformApi;
pub use moderation::ModerationEngine;
pub use platform::Platform;
pub use post::{Post, PostId};
pub use store::PlatformStore;
