//! Account profiles — the metadata the paper collects per visible account.

use crate::platform::Platform;
use foundation::{json_codec_enum, json_codec_newtype, json_codec_struct};

/// Platform-scoped numeric account id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub u64);

impl std::fmt::Display for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// Account type — §5 "Account Types": standard, business, verified,
/// private, protected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccountType {
    /// Standard.
    Standard,
    /// Business.
    Business,
    /// Verified.
    Verified,
    /// Private.
    Private,
    /// Protected.
    Protected,
}

impl AccountType {
    /// Label as printed in §5.
    pub fn label(self) -> &'static str {
        match self {
            AccountType::Standard => "standard",
            AccountType::Business => "business",
            AccountType::Verified => "verified",
            AccountType::Private => "private",
            AccountType::Protected => "protected",
        }
    }
}

/// Live status of an account on its platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccountStatus {
    /// Account is live and publicly visible.
    Active,
    /// Banned by the platform for policy violations (X reports
    /// `Forbidden`).
    Banned,
    /// Deleted by its owner or renamed — the API reports the platform's
    /// "not found" phrase.
    Deleted,
}

impl AccountStatus {
    /// Did the platform or the owner take the account offline?
    pub fn is_inactive(self) -> bool {
        !matches!(self, AccountStatus::Active)
    }
}

/// Why an account was created / how it behaves — the ground-truth trait the
/// workload generator sets and the moderation engine (imperfectly) infers.
/// Never exposed through the public API; the measurement pipeline must
/// rediscover it, as the paper's authors did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccountDisposition {
    /// A genuine account organically grown (some sellers sell their real
    /// accounts).
    Organic,
    /// Bulk-registered and engagement-farmed for sale ("fresh and ready").
    Farmed,
    /// Aged account harvested/compromised and resold.
    Harvested,
    /// Actively posting scam content (one of the six §6 categories).
    ScamOperator,
}

json_codec_newtype!(AccountId);

json_codec_enum! {
    AccountType { Standard, Business, Verified, Private, Protected }
    AccountStatus { Active, Banned, Deleted }
    AccountDisposition { Organic, Farmed, Harvested, ScamOperator }
}

/// Full profile metadata for one account.
#[derive(Debug, Clone, PartialEq)]
pub struct AccountProfile {
    /// Id.
    pub id: AccountId,
    /// Platform.
    pub platform: Platform,
    /// Public handle (`@name` on X, channel handle on YouTube, ...).
    pub handle: String,
    /// Display name.
    pub name: String,
    /// Bio / description shown on the profile.
    pub description: String,
    /// Optional free-text location (§5: 3,236 profiles listed one).
    pub location: Option<String>,
    /// Platform-affiliated category tag (§5: 288 distinct categories).
    pub category: Option<String>,
    /// Contact attributes visible on business profiles — the clustering
    /// keys of Table 7.
    pub email: Option<String>,
    /// Phone.
    pub phone: Option<String>,
    /// Website.
    pub website: Option<String>,
    /// Unix seconds of account creation.
    pub created_unix: i64,
    /// Account type.
    pub account_type: AccountType,
    /// Followers.
    pub followers: u64,
    /// Following.
    pub following: u64,
    /// Post count.
    pub post_count: u64,
    /// Status.
    pub status: AccountStatus,
    /// Ground truth, not exposed over the API.
    pub disposition: AccountDisposition,
}

impl AccountProfile {
    /// A minimal active standard profile; generators fill in the rest.
    pub fn new(id: AccountId, platform: Platform, handle: impl Into<String>) -> AccountProfile {
        AccountProfile {
            id,
            platform,
            handle: handle.into(),
            name: String::new(),
            description: String::new(),
            location: None,
            category: None,
            email: None,
            phone: None,
            website: None,
            created_unix: 0,
            account_type: AccountType::Standard,
            followers: 0,
            following: 0,
            post_count: 0,
            status: AccountStatus::Active,
            disposition: AccountDisposition::Organic,
        }
    }

    /// Public profile URL on the platform's web host.
    pub fn profile_url(&self) -> String {
        format!("http://{}/{}", self.platform.web_host(), self.handle)
    }

    /// Account age in whole days at `now_unix` (0 if created in the
    /// future).
    pub fn age_days(&self, now_unix: i64) -> u64 {
        ((now_unix - self.created_unix).max(0) / 86_400) as u64
    }

    /// Account age in (fractional) years at `now_unix`.
    pub fn age_years(&self, now_unix: i64) -> f64 {
        (now_unix - self.created_unix).max(0) as f64 / (365.25 * 86_400.0)
    }

    /// Is the profile browsable by the public (active and not
    /// private/protected)?
    pub fn is_publicly_visible(&self) -> bool {
        self.status == AccountStatus::Active
            && !matches!(self.account_type, AccountType::Private | AccountType::Protected)
    }
}

json_codec_struct! {
    AccountProfile {
        id, platform, handle, name, description, location, category, email,
        phone, website, created_unix, account_type, followers, following,
        post_count, status, disposition,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccountProfile {
        let mut p = AccountProfile::new(AccountId(7), Platform::Instagram, "fashion.daily");
        p.created_unix = acctrade_net::clock::unix_from_ymd(2021, 6, 15);
        p
    }

    #[test]
    fn profile_url_uses_platform_host() {
        let p = sample();
        assert_eq!(p.profile_url(), "http://instagram.example/fashion.daily");
    }

    #[test]
    fn age_computation() {
        let p = sample();
        let now = acctrade_net::clock::unix_from_ymd(2024, 6, 15);
        assert!((p.age_years(now) - 3.0).abs() < 0.01);
        assert_eq!(p.age_days(p.created_unix), 0);
        // Creation in the future clamps to zero.
        assert_eq!(p.age_days(p.created_unix - 1000), 0);
    }

    #[test]
    fn visibility_rules() {
        let mut p = sample();
        assert!(p.is_publicly_visible());
        p.account_type = AccountType::Private;
        assert!(!p.is_publicly_visible());
        p.account_type = AccountType::Standard;
        p.status = AccountStatus::Banned;
        assert!(!p.is_publicly_visible());
    }

    #[test]
    fn status_inactive() {
        assert!(!AccountStatus::Active.is_inactive());
        assert!(AccountStatus::Banned.is_inactive());
        assert!(AccountStatus::Deleted.is_inactive());
    }

    #[test]
    fn serde_roundtrip() {
        let p = sample();
        let json = foundation::json::to_string(&p);
        let back: AccountProfile = foundation::json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
