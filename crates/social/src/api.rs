//! The JSON API service of one platform.
//!
//! The paper collected profile metadata and posts "utilizing the
//! respective API services of the social media platforms". This module is
//! that surface: a [`Service`] with profile-lookup and timeline endpoints,
//! speaking each platform's error vocabulary:
//!
//! * `GET /users/lookup?handle=NAME` — profile JSON, or the platform's
//!   banned/missing response;
//! * `GET /users/by_id?id=N` — same by numeric id;
//! * `GET /timeline?handle=NAME&limit=K` — recent posts JSON.
//!
//! On X a banned account answers `403 Forbidden`; a deleted/renamed one
//! answers `404 Not Found`. Instagram answers `404 Page Not Found`; TikTok,
//! YouTube, and Facebook answer with their "does not exist" phrasing —
//! exactly the signals the paper's §8 efficacy analysis decodes.

use crate::account::{AccountProfile, AccountStatus, AccountType};
use crate::platform::Platform;
use crate::post::Post;
use crate::store::PlatformStore;
use acctrade_net::http::{Request, Response, Status};
use acctrade_net::server::{RequestCtx, Service};
use foundation::json_codec_struct;
use foundation::sync::RwLock;
use std::sync::Arc;

/// Public profile fields served over the API. Ground truth (disposition)
/// and moderation state are intentionally absent: the measurement pipeline
/// must infer them, as the paper's authors did.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiProfile {
    /// User id.
    pub user_id: u64,
    /// Handle.
    pub handle: String,
    /// Name.
    pub name: String,
    /// Description.
    pub description: String,
    /// Location.
    pub location: Option<String>,
    /// Category.
    pub category: Option<String>,
    /// Email.
    pub email: Option<String>,
    /// Phone.
    pub phone: Option<String>,
    /// Website.
    pub website: Option<String>,
    /// Created unix.
    pub created_unix: i64,
    /// Account type.
    pub account_type: String,
    /// Followers.
    pub followers: u64,
    /// Following.
    pub following: u64,
    /// Post count.
    pub post_count: u64,
    /// Platform.
    pub platform: String,
}

impl ApiProfile {
    /// Project the public view of a profile.
    pub fn from_profile(p: &AccountProfile) -> ApiProfile {
        ApiProfile {
            user_id: p.id.0,
            handle: p.handle.clone(),
            name: p.name.clone(),
            description: p.description.clone(),
            location: p.location.clone(),
            category: p.category.clone(),
            email: p.email.clone(),
            phone: p.phone.clone(),
            website: p.website.clone(),
            created_unix: p.created_unix,
            account_type: p.account_type.label().to_string(),
            followers: p.followers,
            following: p.following,
            post_count: p.post_count,
            platform: p.platform.name().to_string(),
        }
    }

    /// Parse the account type label back.
    pub fn parsed_account_type(&self) -> Option<AccountType> {
        Some(match self.account_type.as_str() {
            "standard" => AccountType::Standard,
            "business" => AccountType::Business,
            "verified" => AccountType::Verified,
            "private" => AccountType::Private,
            "protected" => AccountType::Protected,
            _ => return None,
        })
    }
}

/// Public post fields served over the API.
#[derive(Debug, Clone, PartialEq)]
pub struct ApiPost {
    /// Post id.
    pub post_id: u64,
    /// Author id.
    pub author_id: u64,
    /// Text.
    pub text: String,
    /// Created unix.
    pub created_unix: i64,
    /// Likes.
    pub likes: u64,
    /// Views.
    pub views: u64,
    /// Replies.
    pub replies: u64,
    /// Shares.
    pub shares: u64,
}

impl ApiPost {
    /// Project the public view of a post.
    pub fn from_post(p: &Post) -> ApiPost {
        ApiPost {
            post_id: p.id.0,
            author_id: p.author.0,
            text: p.text.clone(),
            created_unix: p.created_unix,
            likes: p.likes,
            views: p.views,
            replies: p.replies,
            shares: p.shares,
        }
    }
}

json_codec_struct! {
    ApiProfile {
        user_id, handle, name, description, location, category, email,
        phone, website, created_unix, account_type, followers, following,
        post_count, platform,
    }
    ApiPost {
        post_id, author_id, text, created_unix, likes, views, replies,
        shares,
    }
}

/// The API service; register it on the fabric under
/// [`Platform::api_host`].
pub struct PlatformApi {
    store: Arc<RwLock<PlatformStore>>,
}

impl PlatformApi {
    /// Wrap a shared store.
    pub fn new(store: Arc<RwLock<PlatformStore>>) -> PlatformApi {
        PlatformApi { store }
    }

    /// The shared store handle.
    pub fn store(&self) -> Arc<RwLock<PlatformStore>> {
        Arc::clone(&self.store)
    }

    fn platform(&self) -> Platform {
        self.store.read().platform()
    }

    /// The status/body pair for an account that cannot be served.
    fn unavailable_response(&self, status: AccountStatus) -> Response {
        let platform = self.platform();
        match (platform, status) {
            (Platform::X, AccountStatus::Banned) => {
                Response::status(Status::Forbidden).with_text(platform.banned_account_phrase())
            }
            // Every other unavailable combination surfaces as the
            // platform's "not found" phrasing, matching §8's observations.
            _ => Response::not_found(platform.missing_account_phrase()),
        }
    }

    fn lookup(&self, req: &Request) -> Response {
        let store = self.store.read();
        let profile = match (req.url.query_param("handle"), req.url.query_param("id")) {
            (Some(h), _) => store.account_by_handle(&h).cloned(),
            (None, Some(id)) => id
                .parse::<u64>()
                .ok()
                .and_then(|n| store.account(crate::account::AccountId(n)).cloned()),
            (None, None) => {
                return Response::status(Status::BadRequest).with_text("handle or id required")
            }
        };
        drop(store);
        let Some(profile) = profile else {
            return Response::not_found(self.platform().missing_account_phrase());
        };
        if profile.status != AccountStatus::Active {
            return self.unavailable_response(profile.status);
        }
        let body = foundation::json::to_string(&ApiProfile::from_profile(&profile));
        Response::ok().with_json(body)
    }

    fn timeline(&self, req: &Request) -> Response {
        let Some(handle) = req.url.query_param("handle") else {
            return Response::status(Status::BadRequest).with_text("handle required");
        };
        let limit: usize = req
            .url
            .query_param("limit")
            .and_then(|l| l.parse().ok())
            .unwrap_or(100);
        let store = self.store.read();
        let Some(profile) = store.account_by_handle(&handle) else {
            return Response::not_found(self.platform().missing_account_phrase());
        };
        if profile.status != AccountStatus::Active {
            let status = profile.status;
            drop(store);
            return self.unavailable_response(status);
        }
        if matches!(profile.account_type, AccountType::Private | AccountType::Protected) {
            // Restricted accounts expose metadata but not content (§5's
            // private/protected modes).
            return Response::ok().with_json("[]");
        }
        let posts: Vec<ApiPost> = store
            .timeline(profile.id)
            .into_iter()
            .take(limit)
            .map(ApiPost::from_post)
            .collect();
        let body = foundation::json::to_string(&posts);
        Response::ok().with_json(body)
    }
}

impl Service for PlatformApi {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
        let resp = match req.url.path() {
            "/users/lookup" | "/users/by_id" => self.lookup(req),
            "/timeline" => self.timeline(req),
            _ => Response::not_found("unknown endpoint"),
        };
        // Server-side API outcome tally — the `api` section of the run
        // manifest (§8's error-vocabulary provenance).
        telemetry::with_recorder(|r| {
            let outcome = match resp.status {
                Status::Ok => "ok",
                Status::Forbidden => "forbidden",
                Status::NotFound => "not_found",
                Status::BadRequest => "bad_request",
                _ => "other",
            };
            r.incr(
                "api.calls",
                &[("platform", self.platform().name()), ("outcome", outcome)],
                1,
            );
        });
        resp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountId;
    use acctrade_net::prelude::*;

    fn setup(platform: Platform) -> (Arc<RwLock<PlatformStore>>, Arc<SimNet>, Client) {
        let store = Arc::new(RwLock::new(PlatformStore::new(platform)));
        let net = SimNet::new(5);
        net.register(platform.api_host(), PlatformApi::new(Arc::clone(&store)));
        let client = Client::new(&net, "acctrade-pipeline/0.1");
        (store, net, client)
    }

    fn add_account(store: &Arc<RwLock<PlatformStore>>, handle: &str) -> AccountId {
        let mut s = store.write();
        let id = s.next_account_id();
        let platform = s.platform();
        let mut p = AccountProfile::new(id, platform, handle);
        p.name = "Daily Memes".into();
        p.followers = 26_998;
        s.insert_account(p);
        id
    }

    #[test]
    fn lookup_returns_profile_json() {
        let (store, _net, client) = setup(Platform::Instagram);
        add_account(&store, "memes.daily");
        let resp = client
            .get("http://api.instagram.example/users/lookup?handle=memes.daily")
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        let p: ApiProfile = foundation::json::from_str(&resp.text()).unwrap();
        assert_eq!(p.handle, "memes.daily");
        assert_eq!(p.followers, 26_998);
        assert_eq!(p.platform, "Instagram");
        assert_eq!(p.parsed_account_type(), Some(AccountType::Standard));
    }

    #[test]
    fn missing_account_uses_platform_phrase() {
        let (_store, _net, client) = setup(Platform::Instagram);
        let resp = client
            .get("http://api.instagram.example/users/lookup?handle=ghost")
            .unwrap();
        assert_eq!(resp.status, Status::NotFound);
        assert_eq!(resp.text(), "Page Not Found");
    }

    #[test]
    fn banned_on_x_is_forbidden_elsewhere_not_found() {
        let (store_x, _n1, client_x) = setup(Platform::X);
        let id = add_account(&store_x, "scam_calls");
        store_x.write().set_status(id, AccountStatus::Banned);
        let resp = client_x.get("http://api.x.example/users/lookup?handle=scam_calls").unwrap();
        assert_eq!(resp.status, Status::Forbidden);
        assert_eq!(resp.text(), "Forbidden");

        let (store_tt, _n2, client_tt) = setup(Platform::TikTok);
        let id = add_account(&store_tt, "scam_dance");
        store_tt.write().set_status(id, AccountStatus::Banned);
        let resp = client_tt
            .get("http://api.tiktok.example/users/lookup?handle=scam_dance")
            .unwrap();
        assert_eq!(resp.status, Status::NotFound);
        assert_eq!(resp.text(), "Profile does not exist");
    }

    #[test]
    fn deleted_account_not_found_even_on_x() {
        let (store, _net, client) = setup(Platform::X);
        let id = add_account(&store, "went_dark");
        store.write().set_status(id, AccountStatus::Deleted);
        let resp = client.get("http://api.x.example/users/lookup?handle=went_dark").unwrap();
        assert_eq!(resp.status, Status::NotFound);
        assert_eq!(resp.text(), "Not Found");
    }

    #[test]
    fn timeline_respects_limit_and_order() {
        let (store, _net, client) = setup(Platform::YouTube);
        let id = add_account(&store, "channel1");
        {
            let mut s = store.write();
            for i in 0..5i64 {
                let pid = s.next_post_id();
                s.add_post(Post::new(pid, Platform::YouTube, id, format!("video {i}"), i * 100));
            }
        }
        let resp = client
            .get("http://api.youtube.example/timeline?handle=channel1&limit=3")
            .unwrap();
        let posts: Vec<ApiPost> = foundation::json::from_str(&resp.text()).unwrap();
        assert_eq!(posts.len(), 3);
        assert!(posts[0].created_unix > posts[1].created_unix);
    }

    #[test]
    fn lookup_by_id() {
        let (store, _net, client) = setup(Platform::Facebook);
        let id = add_account(&store, "pagex");
        let resp = client
            .get(&format!("http://api.facebook.example/users/by_id?id={}", id.0))
            .unwrap();
        assert_eq!(resp.status, Status::Ok);
        let resp = client.get("http://api.facebook.example/users/by_id?id=424242").unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn bad_requests_rejected() {
        let (_store, _net, client) = setup(Platform::X);
        let resp = client.get("http://api.x.example/users/lookup").unwrap();
        assert_eq!(resp.status, Status::BadRequest);
        let resp = client.get("http://api.x.example/nope").unwrap();
        assert_eq!(resp.status, Status::NotFound);
    }
}
