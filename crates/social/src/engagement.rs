//! Follower-growth and engagement models.
//!
//! §5 of the paper observes that advertised accounts "are often highly
//! engaged and likely employ engagement farming techniques". We model three
//! growth regimes the moderation engine can (noisily) distinguish:
//!
//! * **organic** — slow compounding growth with daily noise;
//! * **farmed** — bursts of purchased followers at irregular intervals
//!   (the "rapid follower growth" signal §9 recommends monitoring);
//! * **purchased-audience** — one large jump when an audience is bolted
//!   onto a fresh account.

use foundation::rng::{Rng, RngExt};

/// A follower-count trajectory: `(day, followers)` samples.
pub type Trajectory = Vec<(u32, u64)>;

/// Growth regime of an account.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrowthModel {
    /// Daily growth ~ `rate` fraction of current size plus noise.
    /// Organic.
    Organic {
        /// Expected daily growth as a fraction of current followers.
        daily_rate: f64,
    },
    /// Organic base plus bursts of `burst_size` followers with probability
    /// `burst_prob` per day.
    /// Farmed.
    Farmed {
        /// Organic base growth rate.
        daily_rate: f64,
        /// Per-day probability of a purchased-follower burst.
        burst_prob: f64,
        /// Followers added per burst (±30% noise).
        burst_size: u64,
    },
    /// A single purchase of `jump` followers on `jump_day`.
    /// Purchased.
    Purchased {
        /// Day the audience purchase lands.
        jump_day: u32,
        /// Followers added by the purchase.
        jump: u64,
    },
}

impl GrowthModel {
    /// Simulate `days` of growth from `start` followers.
    pub fn simulate<R: Rng + ?Sized>(&self, start: u64, days: u32, rng: &mut R) -> Trajectory {
        let mut out = Vec::with_capacity(days as usize + 1);
        let mut current = start as f64;
        out.push((0, start));
        for day in 1..=days {
            match *self {
                GrowthModel::Organic { daily_rate } => {
                    let noise = rng.random_range(0.5..1.5);
                    current += (current * daily_rate * noise).max(0.0);
                    // A floor of ~0.2 expected new followers/day keeps tiny
                    // accounts from freezing at zero forever.
                    if rng.random_bool(0.2) {
                        current += 1.0;
                    }
                }
                GrowthModel::Farmed { daily_rate, burst_prob, burst_size } => {
                    let noise = rng.random_range(0.5..1.5);
                    current += (current * daily_rate * noise).max(0.0);
                    if rng.random_bool(burst_prob.clamp(0.0, 1.0)) {
                        current += burst_size as f64 * rng.random_range(0.7..1.3);
                    }
                }
                GrowthModel::Purchased { jump_day, jump } => {
                    if day == jump_day {
                        current += jump as f64;
                    }
                }
            }
            out.push((day, current as u64));
        }
        out
    }

    /// Maximum single-day relative growth over a trajectory — the
    /// "rapid follower growth" feature the moderation engine scores.
    pub fn max_daily_growth_ratio(traj: &Trajectory) -> f64 {
        traj.windows(2)
            .map(|w| {
                let (prev, next) = (w[0].1 as f64, w[1].1 as f64);
                if prev < 1.0 {
                    next
                } else {
                    (next - prev) / prev
                }
            })
            .fold(0.0, f64::max)
    }
}

/// Sample per-post engagement counters for an account with `followers`
/// followers. `virality` in `[0, 1]` scales view amplification beyond the
/// follower base.
pub fn sample_post_engagement<R: Rng + ?Sized>(
    followers: u64,
    virality: f64,
    rng: &mut R,
) -> (u64, u64, u64, u64) {
    let base_views = (followers as f64 * rng.random_range(0.05..0.6)).max(1.0);
    let viral_mult = 1.0 + virality * rng.random_range(0.0..50.0);
    let views = (base_views * viral_mult) as u64;
    let like_rate = rng.random_range(0.01..0.12);
    let likes = (views as f64 * like_rate) as u64;
    let replies = (likes as f64 * rng.random_range(0.01..0.1)) as u64;
    let shares = (likes as f64 * rng.random_range(0.01..0.15)) as u64;
    (views, likes, replies, shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn organic_growth_is_smooth() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = GrowthModel::Organic { daily_rate: 0.01 };
        let traj = m.simulate(1000, 365, &mut rng);
        assert_eq!(traj.len(), 366);
        // Monotone non-decreasing and roughly e^{0.01*365} ~ 38x at most.
        assert!(traj.windows(2).all(|w| w[1].1 >= w[0].1));
        let ratio = GrowthModel::max_daily_growth_ratio(&traj);
        assert!(ratio < 0.05, "organic daily ratio too high: {ratio}");
    }

    #[test]
    fn farmed_growth_has_bursts() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = GrowthModel::Farmed { daily_rate: 0.002, burst_prob: 0.05, burst_size: 5_000 };
        let traj = m.simulate(500, 365, &mut rng);
        let ratio = GrowthModel::max_daily_growth_ratio(&traj);
        assert!(ratio > 0.5, "farmed growth should show bursts: {ratio}");
        assert!(traj.last().unwrap().1 > 20_000);
    }

    #[test]
    fn purchased_jump_lands_on_day() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = GrowthModel::Purchased { jump_day: 10, jump: 100_000 };
        let traj = m.simulate(50, 30, &mut rng);
        assert_eq!(traj[9].1, 50);
        assert_eq!(traj[10].1, 100_050);
        assert_eq!(traj[30].1, 100_050);
    }

    #[test]
    fn engagement_counters_ordered() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for _ in 0..100 {
            let (views, likes, replies, shares) = sample_post_engagement(10_000, 0.1, &mut rng);
            assert!(views >= likes);
            assert!(likes >= replies);
            assert!(likes >= shares || likes == 0);
        }
    }

    #[test]
    fn virality_amplifies_views() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let flat: u64 = (0..200).map(|_| sample_post_engagement(1_000, 0.0, &mut rng).0).sum();
        let viral: u64 = (0..200).map(|_| sample_post_engagement(1_000, 1.0, &mut rng).0).sum();
        assert!(viral > flat * 3);
    }
}
