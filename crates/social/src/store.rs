//! The in-memory account/post database backing one platform.

use crate::account::{AccountId, AccountProfile, AccountStatus};
use crate::platform::Platform;
use crate::post::{Post, PostId};
use std::collections::HashMap;

/// All state of one simulated platform.
#[derive(Debug, Clone)]
pub struct PlatformStore {
    platform: Platform,
    accounts: HashMap<AccountId, AccountProfile>,
    by_handle: HashMap<String, AccountId>,
    posts: HashMap<AccountId, Vec<Post>>,
    next_account: u64,
    next_post: u64,
}

impl PlatformStore {
    /// An empty store for `platform`.
    pub fn new(platform: Platform) -> PlatformStore {
        PlatformStore {
            platform,
            accounts: HashMap::new(),
            by_handle: HashMap::new(),
            posts: HashMap::new(),
            next_account: 1,
            next_post: 1,
        }
    }

    /// The platform this store belongs to.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Allocate a fresh account id.
    pub fn next_account_id(&mut self) -> AccountId {
        let id = AccountId(self.next_account);
        self.next_account += 1;
        id
    }

    /// Allocate a fresh post id.
    pub fn next_post_id(&mut self) -> PostId {
        let id = PostId(self.next_post);
        self.next_post += 1;
        id
    }

    /// Insert an account.
    ///
    /// # Panics
    /// Panics if the profile's platform differs from the store's, or the
    /// handle is already taken (handles are unique per platform).
    pub fn insert_account(&mut self, profile: AccountProfile) -> AccountId {
        assert_eq!(profile.platform, self.platform, "platform mismatch");
        assert!(
            !self.by_handle.contains_key(&profile.handle),
            "duplicate handle {}",
            profile.handle
        );
        let id = profile.id;
        self.by_handle.insert(profile.handle.clone(), id);
        self.accounts.insert(id, profile);
        id
    }

    /// Look up by id.
    pub fn account(&self, id: AccountId) -> Option<&AccountProfile> {
        self.accounts.get(&id)
    }

    /// Look up by handle (exact, case-sensitive — handles are generated
    /// lowercase).
    pub fn account_by_handle(&self, handle: &str) -> Option<&AccountProfile> {
        self.by_handle.get(handle).and_then(|id| self.accounts.get(id))
    }

    /// Mutable account access.
    pub fn account_mut(&mut self, id: AccountId) -> Option<&mut AccountProfile> {
        self.accounts.get_mut(&id)
    }

    /// Append a post to its author's timeline and bump the author's post
    /// count.
    ///
    /// # Panics
    /// Panics if the author does not exist.
    pub fn add_post(&mut self, post: Post) -> PostId {
        assert!(self.accounts.contains_key(&post.author), "unknown author");
        let id = post.id;
        if let Some(acct) = self.accounts.get_mut(&post.author) {
            acct.post_count += 1;
        }
        self.posts.entry(post.author).or_default().push(post);
        id
    }

    /// The author's timeline, most recent first.
    pub fn timeline(&self, author: AccountId) -> Vec<&Post> {
        let mut posts: Vec<&Post> = self
            .posts
            .get(&author)
            .map(|v| v.iter().collect())
            .unwrap_or_default();
        posts.sort_by_key(|p| std::cmp::Reverse(p.created_unix));
        posts
    }

    /// Change an account's status (moderation actions, owner deletions).
    pub fn set_status(&mut self, id: AccountId, status: AccountStatus) -> bool {
        match self.accounts.get_mut(&id) {
            Some(a) => {
                a.status = status;
                true
            }
            None => false,
        }
    }

    /// Total accounts.
    pub fn account_count(&self) -> usize {
        self.accounts.len()
    }

    /// Total posts across all timelines.
    pub fn post_count(&self) -> usize {
        self.posts.values().map(Vec::len).sum()
    }

    /// Iterate accounts in id order (deterministic).
    pub fn accounts_sorted(&self) -> Vec<&AccountProfile> {
        let mut v: Vec<&AccountProfile> = self.accounts.values().collect();
        v.sort_by_key(|a| a.id);
        v
    }

    /// Ids of all accounts, sorted.
    pub fn account_ids(&self) -> Vec<AccountId> {
        let mut v: Vec<AccountId> = self.accounts.keys().copied().collect();
        v.sort();
        v
    }

    /// Accounts with a given status.
    pub fn count_by_status(&self, status: AccountStatus) -> usize {
        self.accounts.values().filter(|a| a.status == status).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::AccountType;

    fn store_with_account() -> (PlatformStore, AccountId) {
        let mut s = PlatformStore::new(Platform::X);
        let id = s.next_account_id();
        let mut p = AccountProfile::new(id, Platform::X, "crypto_calls");
        p.account_type = AccountType::Standard;
        s.insert_account(p);
        (s, id)
    }

    #[test]
    fn insert_and_lookup() {
        let (s, id) = store_with_account();
        assert_eq!(s.account(id).unwrap().handle, "crypto_calls");
        assert_eq!(s.account_by_handle("crypto_calls").unwrap().id, id);
        assert!(s.account_by_handle("nobody").is_none());
        assert_eq!(s.account_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate handle")]
    fn duplicate_handles_rejected() {
        let (mut s, _) = store_with_account();
        let id2 = s.next_account_id();
        s.insert_account(AccountProfile::new(id2, Platform::X, "crypto_calls"));
    }

    #[test]
    #[should_panic(expected = "platform mismatch")]
    fn cross_platform_insert_rejected() {
        let (mut s, _) = store_with_account();
        let id2 = s.next_account_id();
        s.insert_account(AccountProfile::new(id2, Platform::TikTok, "other"));
    }

    #[test]
    fn timeline_is_reverse_chronological() {
        let (mut s, id) = store_with_account();
        for (i, t) in [100i64, 300, 200].iter().enumerate() {
            let pid = s.next_post_id();
            s.add_post(Post::new(pid, Platform::X, id, format!("post {i}"), *t));
        }
        let tl = s.timeline(id);
        let times: Vec<i64> = tl.iter().map(|p| p.created_unix).collect();
        assert_eq!(times, vec![300, 200, 100]);
        assert_eq!(s.account(id).unwrap().post_count, 3);
        assert_eq!(s.post_count(), 3);
    }

    #[test]
    fn status_transitions() {
        let (mut s, id) = store_with_account();
        assert!(s.set_status(id, AccountStatus::Banned));
        assert_eq!(s.account(id).unwrap().status, AccountStatus::Banned);
        assert_eq!(s.count_by_status(AccountStatus::Banned), 1);
        assert!(!s.set_status(AccountId(999), AccountStatus::Banned));
    }

    #[test]
    fn id_allocation_is_sequential() {
        let mut s = PlatformStore::new(Platform::YouTube);
        let a = s.next_account_id();
        let b = s.next_account_id();
        assert_eq!(b.0, a.0 + 1);
    }
}
