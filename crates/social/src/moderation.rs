//! The platform-side detection engine.
//!
//! §8 of the paper measures each platform's *blocking efficacy*: the share
//! of advertised accounts the platform actioned (or the owner deleted)
//! during the study. The measured rates differ wildly — TikTok 48% and
//! Instagram 46.41% versus YouTube 5.02% and Facebook 5.70% — and blocked
//! accounts "frequently featured names associated with trends like crypto,
//! NFTs, beauty, luxury".
//!
//! The engine models that behaviour mechanistically:
//!
//! 1. every account gets a **risk score** from observable signals
//!    (trending-topic keywords in name/description, account youth,
//!    behavioural disposition — the simulation's stand-in for the
//!    behavioural telemetry real platforms have);
//! 2. a per-platform **capacity** (calibrated to the platform's Table 8
//!    efficacy) scales scores into action probabilities — platforms differ
//!    in *how much* they act far more than in *what* looks suspicious;
//! 3. actions are sampled; scam operators sometimes delete their own
//!    account after a completed scam run, which the paper conservatively
//!    counts in the same "inactive" bucket.

use crate::account::{AccountDisposition, AccountStatus};
use crate::platform::Platform;
use crate::store::PlatformStore;
use foundation::rng::{Rng, RngExt};

/// Trending-topic keywords §8 reports as over-represented among blocked
/// accounts.
pub const TRENDING_KEYWORDS: &[&str] = &[
    "crypto", "nft", "bitcoin", "beauty", "luxury", "animals", "pets", "giveaway", "forex",
    "trading", "onlyfans", "followers",
];

/// Per-account risk signals and score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RiskAssessment {
    /// Name/description mentions a trending topic.
    pub trending_name: bool,
    /// Account younger than 3.5 years (the §5 dominant cohort).
    pub young_account: bool,
    /// Behavioural signal strength from the account's disposition.
    pub behavior_weight: f64,
    /// Combined multiplicative risk score, >= 0.
    pub score: f64,
}

/// Assess one account at virtual time `now_unix`.
pub(crate) fn assess(profile: &crate::account::AccountProfile, now_unix: i64) -> RiskAssessment {
    let text = format!("{} {}", profile.name, profile.description).to_ascii_lowercase();
    let trending_name = TRENDING_KEYWORDS.iter().any(|k| text.contains(k));
    let young_account = profile.age_years(now_unix) < 3.5;
    let behavior_weight = match profile.disposition {
        AccountDisposition::Organic => 0.3,
        AccountDisposition::Harvested => 0.8,
        AccountDisposition::Farmed => 1.4,
        AccountDisposition::ScamOperator => 2.0,
    };
    let mut score = behavior_weight;
    if trending_name {
        score *= 1.8;
    }
    if young_account {
        score *= 1.3;
    }
    RiskAssessment { trending_name, young_account, behavior_weight, score }
}

/// Outcome of one moderation sweep.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SweepReport {
    /// Assessed.
    pub assessed: usize,
    /// Banned.
    pub banned: usize,
    /// Owner deleted.
    pub owner_deleted: usize,
}

impl SweepReport {
    /// Accounts taken offline by any path.
    pub fn total_inactive(&self) -> usize {
        self.banned + self.owner_deleted
    }
}

/// The moderation engine of one platform.
#[derive(Debug, Clone)]
pub struct ModerationEngine {
    platform: Platform,
    /// Target fraction of the *advertised-account population* the platform
    /// manages to action over the whole study (Table 8 calibration).
    capacity: f64,
    /// Probability a scam operator deletes their own account after a scam
    /// run (counted as inactive by the paper's conservative definition).
    self_delete_prob: f64,
}

impl ModerationEngine {
    /// Engine calibrated to the platform's Table 8 efficacy.
    pub fn calibrated(platform: Platform) -> ModerationEngine {
        ModerationEngine {
            platform,
            capacity: platform.table8_efficacy_pct() / 100.0,
            self_delete_prob: 0.25,
        }
    }

    /// Engine with explicit capacity (ablations and what-if benches).
    pub fn with_capacity(platform: Platform, capacity: f64) -> ModerationEngine {
        ModerationEngine { platform, capacity: capacity.clamp(0.0, 1.0), self_delete_prob: 0.25 }
    }

    /// The platform this engine moderates.
    pub fn platform(&self) -> Platform {
        self.platform
    }

    /// Calibrated action capacity (fraction of the population).
    pub fn capacity(&self) -> f64 {
        self.capacity
    }

    /// Run one sweep over the store at virtual time `now_unix`: assess all
    /// active accounts, scale scores so the *expected* action count equals
    /// `capacity x population`, sample actions, and apply them.
    pub fn sweep<R: Rng + ?Sized>(
        &self,
        store: &mut PlatformStore,
        now_unix: i64,
        rng: &mut R,
    ) -> SweepReport {
        assert_eq!(store.platform(), self.platform, "engine/store platform mismatch");
        let ids = store.account_ids();
        let mut report = SweepReport::default();

        // Assess the full population (active accounts only).
        let mut scored: Vec<(crate::account::AccountId, f64, AccountDisposition)> = Vec::new();
        for id in ids {
            let Some(p) = store.account(id) else { continue };
            if p.status != AccountStatus::Active {
                continue;
            }
            let risk = assess(p, now_unix);
            scored.push((id, risk.score, p.disposition));
        }
        report.assessed = scored.len();
        if scored.is_empty() || self.capacity <= 0.0 {
            self.record_sweep(&report);
            return report;
        }

        // Scale so expected actions = capacity * population; probabilities
        // saturate at 0.98 (even the riskiest account can slip through).
        let target = self.capacity * scored.len() as f64;
        let lambda = solve_lambda(&scored.iter().map(|&(_, s, _)| s).collect::<Vec<_>>(), target);

        for (id, score, disposition) in scored {
            let p_action = (lambda * score).min(0.98);
            if rng.random_bool(p_action) {
                let self_delete = disposition == AccountDisposition::ScamOperator
                    && rng.random_bool(self.self_delete_prob);
                if self_delete {
                    store.set_status(id, AccountStatus::Deleted);
                    report.owner_deleted += 1;
                } else {
                    store.set_status(id, AccountStatus::Banned);
                    report.banned += 1;
                }
            }
        }
        self.record_sweep(&report);
        report
    }

    /// Mirror one sweep's tallies into the current telemetry recorder.
    fn record_sweep(&self, report: &SweepReport) {
        telemetry::with_recorder(|r| {
            let labels = [("platform", self.platform.name())];
            r.incr("moderation.assessed", &labels, report.assessed as u64);
            r.incr("moderation.banned", &labels, report.banned as u64);
            r.incr("moderation.owner_deleted", &labels, report.owner_deleted as u64);
        });
    }
}

/// Find `lambda` such that `sum(min(lambda * s_i, cap))` equals `target`
/// (bisection; scores are non-negative).
fn solve_lambda(scores: &[f64], target: f64) -> f64 {
    const CAP: f64 = 0.98;
    let expected = |lambda: f64| scores.iter().map(|&s| (lambda * s).min(CAP)).sum::<f64>();
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    while expected(hi) < target && hi < 1e9 {
        hi *= 2.0;
    }
    for _ in 0..80 {
        let mid = (lo + hi) / 2.0;
        if expected(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::{AccountId, AccountProfile, AccountType};
    use acctrade_net::clock::unix_from_ymd;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    fn now() -> i64 {
        unix_from_ymd(2024, 6, 1)
    }

    fn populate(platform: Platform, n: usize) -> PlatformStore {
        let mut store = PlatformStore::new(platform);
        for i in 0..n {
            let id = store.next_account_id();
            let mut p = AccountProfile::new(id, platform, format!("acct{i}"));
            p.created_unix = unix_from_ymd(2022, 1, 1);
            p.account_type = AccountType::Standard;
            p.disposition = match i % 4 {
                0 => AccountDisposition::Organic,
                1 => AccountDisposition::Farmed,
                2 => AccountDisposition::Harvested,
                _ => AccountDisposition::ScamOperator,
            };
            if i % 3 == 0 {
                p.name = "Crypto Luxury Daily".into();
            }
            store.insert_account(p);
        }
        store
    }

    #[test]
    fn sweep_hits_calibrated_capacity() {
        for platform in [Platform::TikTok, Platform::YouTube, Platform::X] {
            let mut store = populate(platform, 3000);
            let engine = ModerationEngine::calibrated(platform);
            let mut rng = ChaCha8Rng::seed_from_u64(42);
            let report = engine.sweep(&mut store, now(), &mut rng);
            let rate = report.total_inactive() as f64 / report.assessed as f64;
            let target = platform.table8_efficacy_pct() / 100.0;
            assert!(
                (rate - target).abs() < 0.04,
                "{platform}: rate={rate:.3} target={target:.3}"
            );
        }
    }

    #[test]
    fn risky_accounts_actioned_more_often() {
        let platform = Platform::Instagram;
        let mut store = populate(platform, 4000);
        let engine = ModerationEngine::calibrated(platform);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        engine.sweep(&mut store, now(), &mut rng);
        let rate_for = |d: AccountDisposition| {
            let (mut hit, mut total) = (0usize, 0usize);
            for a in store.accounts_sorted() {
                if a.disposition == d {
                    total += 1;
                    if a.status.is_inactive() {
                        hit += 1;
                    }
                }
            }
            hit as f64 / total as f64
        };
        assert!(
            rate_for(AccountDisposition::ScamOperator) > rate_for(AccountDisposition::Organic) * 2.0
        );
    }

    #[test]
    fn trending_names_raise_risk() {
        let mut p = AccountProfile::new(AccountId(1), Platform::X, "h");
        p.created_unix = unix_from_ymd(2023, 1, 1);
        let plain = assess(&p, now()).score;
        p.name = "NFT Giveaway Luxury".into();
        let trendy = assess(&p, now()).score;
        assert!(trendy > plain * 1.5);
    }

    #[test]
    fn old_accounts_lower_risk() {
        let mut p = AccountProfile::new(AccountId(1), Platform::X, "h");
        p.created_unix = unix_from_ymd(2012, 1, 1);
        let old = assess(&p, now()).score;
        p.created_unix = unix_from_ymd(2023, 6, 1);
        let young = assess(&p, now()).score;
        assert!(young > old);
    }

    #[test]
    fn zero_capacity_never_acts() {
        let mut store = populate(Platform::Facebook, 200);
        let engine = ModerationEngine::with_capacity(Platform::Facebook, 0.0);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let report = engine.sweep(&mut store, now(), &mut rng);
        assert_eq!(report.total_inactive(), 0);
        assert_eq!(store.count_by_status(AccountStatus::Active), 200);
    }

    #[test]
    fn some_owner_deletions_among_scammers() {
        let mut store = populate(Platform::TikTok, 4000);
        let engine = ModerationEngine::calibrated(Platform::TikTok);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let report = engine.sweep(&mut store, now(), &mut rng);
        assert!(report.owner_deleted > 0);
        assert!(report.banned > report.owner_deleted);
    }

    #[test]
    fn lambda_solver_meets_target() {
        let scores = vec![1.0, 2.0, 3.0, 4.0];
        let target = 2.0;
        let l = solve_lambda(&scores, target);
        let got: f64 = scores.iter().map(|&s| (l * s).min(0.98)).sum();
        assert!((got - target).abs() < 1e-6);
    }
}
