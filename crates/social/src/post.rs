//! Posts and their engagement counters.

use crate::account::AccountId;
use crate::platform::Platform;
use foundation::{json_codec_newtype, json_codec_struct};

/// Platform-scoped numeric post id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PostId(pub u64);

/// One public post on a platform timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Post {
    /// Id.
    pub id: PostId,
    /// Platform.
    pub platform: Platform,
    /// Author.
    pub author: AccountId,
    /// Post body text (what the §6 NLP pipeline consumes).
    pub text: String,
    /// Unix seconds of publication.
    pub created_unix: i64,
    /// Likes.
    pub likes: u64,
    /// Views.
    pub views: u64,
    /// Replies.
    pub replies: u64,
    /// Shares.
    pub shares: u64,
}

impl Post {
    /// A bare post; generators fill in engagement.
    pub fn new(
        id: PostId,
        platform: Platform,
        author: AccountId,
        text: impl Into<String>,
        created_unix: i64,
    ) -> Post {
        Post {
            id,
            platform,
            author,
            text: text.into(),
            created_unix,
            likes: 0,
            views: 0,
            replies: 0,
            shares: 0,
        }
    }

    /// A crude engagement-rate proxy: interactions per view (0 when the
    /// post has no views).
    pub fn engagement_rate(&self) -> f64 {
        if self.views == 0 {
            return 0.0;
        }
        (self.likes + self.replies + self.shares) as f64 / self.views as f64
    }
}

json_codec_newtype!(PostId);

json_codec_struct! {
    Post {
        id, platform, author, text, created_unix, likes, views, replies,
        shares,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engagement_rate_bounds() {
        let mut p = Post::new(PostId(1), Platform::X, AccountId(1), "gm", 0);
        assert_eq!(p.engagement_rate(), 0.0);
        p.views = 1000;
        p.likes = 90;
        p.replies = 5;
        p.shares = 5;
        assert!((p.engagement_rate() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn serde_roundtrip() {
        let p = Post::new(PostId(3), Platform::TikTok, AccountId(9), "viral dance", 1_700_000_000);
        let back: Post = foundation::json::from_str(&foundation::json::to_string(&p)).unwrap();
        assert_eq!(p, back);
    }
}
