#![warn(missing_docs)]

//! # acctrade-store
//!
//! Durable crawl dataset store for the `acctrade` workspace — an
//! append-only, segmented, CRC-framed write-ahead log with checkpoints,
//! compaction, and crash recovery. Zero-dependency (std + `foundation`).
//!
//! The reproduced paper's core contribution is its *dataset*: 38k
//! listings and 205k posts accumulated over a five-month crawl campaign
//! (§3.2) — a campaign that, in reality, survives crashes, restarts, and
//! re-crawls. This crate is the persistence backbone that makes the
//! reproduction behave the same way:
//!
//! * [`frame`] — length-prefixed, CRC-32-checksummed binary framing for
//!   opaque record payloads (`foundation::json` renderings upstairs);
//! * [`crc`] — the CRC-32/ISO-HDLC checksum itself;
//! * [`segment`] — numbered segment files and directory scanning;
//! * [`wal`] — the [`Writer`]: lazy segment rotation, fsync + atomic
//!   manifest on [`Writer::sync`], and the recovery path
//!   ([`Writer::open_resume`]) that replays segments, truncates torn
//!   tails instead of failing, rolls back uncommitted records, and
//!   reports exactly what was salvaged;
//! * [`manifest`] — the advisory `store_manifest.json`;
//! * [`snapshot`] — offline compaction keeping the latest version per
//!   logical key (offers deduped by `(marketplace, offer_url)` in the
//!   crawler's persist layer);
//! * [`checkpoint`] — atomic small-file replace for the checkpoints the
//!   pipeline layers on top.
//!
//! ## Determinism
//!
//! The on-disk layout is a pure function of the record stream and the
//! [`WalOptions`]: lazy rotation means a resumed writer re-produces
//! byte-identical segments at identical offsets, which is what lets the
//! study pipeline prove that an interrupted-and-resumed campaign yields
//! a byte-identical dataset and telemetry manifest versus an
//! uninterrupted same-seed run.

pub mod checkpoint;
pub mod crc;
pub mod frame;
pub mod manifest;
pub mod segment;
pub mod snapshot;
pub mod wal;

pub use crc::crc32;
pub use frame::{decode_frame, encode_frame, Decoded};
pub use manifest::{SegmentEntry, StoreManifest, MANIFEST_FILE};
pub use snapshot::{compact, CompactionReport, Disposition};
pub use wal::{
    replay, AppendReceipt, Record, RecoveryReport, StoreError, WalOptions, Writer, WriterStats,
    DEFAULT_SEGMENT_MAX_BYTES,
};
