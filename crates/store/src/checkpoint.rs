//! Atomic small-file persistence (checkpoints, manifests).
//!
//! The WAL gives durability to the *stream*; checkpoints give the layer
//! above a durable *cursor* into it. A checkpoint must never be observed
//! half-written, so every write goes through the classic
//! write-temp → fsync-temp → rename → fsync-dir dance: on any crash the
//! path holds either the old complete file or the new complete file,
//! never a torn hybrid. A stale `*.tmp` left by a crash mid-sequence is
//! ignored by readers and silently replaced by the next write.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Suffix of the scratch file used during an atomic replace.
pub(crate) const TMP_SUFFIX: &str = ".tmp";

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Errors are swallowed: not every platform lets you
/// open a directory for syncing, and the rename is still atomic without
/// it.
fn sync_parent_dir(path: &Path) {
    if let Some(parent) = path.parent() {
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
}

/// Atomically replace the file at `path` with `bytes`.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_path(path);
    {
        let mut f = OpenOptions::new().create(true).write(true).truncate(true).open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    sync_parent_dir(path);
    Ok(())
}

/// The scratch path [`write_atomic`] uses for `path`.
pub fn tmp_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(TMP_SUFFIX);
    path.with_file_name(name)
}

/// Read a UTF-8 file, mapping "missing" to `Ok(None)` so callers can
/// distinguish "no checkpoint yet" from real I/O failure.
pub fn read_if_exists(path: &Path) -> io::Result<Option<String>> {
    match std::fs::read_to_string(path) {
        Ok(text) => Ok(Some(text)),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("acctrade-store-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn replace_is_complete_or_old() {
        let dir = scratch_dir("replace");
        let path = dir.join("checkpoint.json");
        write_atomic(&path, b"v1").unwrap();
        assert_eq!(read_if_exists(&path).unwrap().as_deref(), Some("v1"));
        write_atomic(&path, b"v2 with more bytes").unwrap();
        assert_eq!(read_if_exists(&path).unwrap().as_deref(), Some("v2 with more bytes"));
        assert!(!tmp_path(&path).exists(), "scratch file cleaned up by rename");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_reads_as_none() {
        let dir = scratch_dir("missing");
        assert_eq!(read_if_exists(&dir.join("nope.json")).unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_is_ignored_and_overwritten() {
        let dir = scratch_dir("stale");
        let path = dir.join("checkpoint.json");
        // A crash mid-write leaves garbage at the tmp path; the real path
        // is untouched and the next atomic write replaces the garbage.
        std::fs::write(tmp_path(&path), b"torn garbage").unwrap();
        assert_eq!(read_if_exists(&path).unwrap(), None);
        write_atomic(&path, b"good").unwrap();
        assert_eq!(read_if_exists(&path).unwrap().as_deref(), Some("good"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
