//! The store manifest (`store_manifest.json`).
//!
//! An advisory, atomically-replaced summary of the segment chain: which
//! segments exist, how many records and bytes each holds, and the total
//! record count the writer had durably synced. Recovery **does not trust
//! it** — the segment files are re-scanned frame by frame — but it gives
//! operators a cheap `cat`-able view of the store and lets recovery
//! report when the scan disagrees with the last synced state (a signal
//! that the process died between appends and the final sync).

use foundation::json::JsonError;
use foundation::json_codec_struct;

/// Manifest schema identifier.
pub const SCHEMA: &str = "acctrade-store/v1";

/// Manifest file name inside a store directory.
pub const MANIFEST_FILE: &str = "store_manifest.json";

/// One segment's summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentEntry {
    /// File name (`wal-00000.seg`).
    pub file: String,
    /// Whole records in the segment.
    pub records: u64,
    /// Bytes of framed data in the segment.
    pub bytes: u64,
}

/// The store manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreManifest {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Segment rotation threshold the writer was configured with.
    pub segment_max_bytes: u64,
    /// Total records across all segments at last sync.
    pub total_records: u64,
    /// Per-segment summaries, ascending by index.
    pub segments: Vec<SegmentEntry>,
}

json_codec_struct! {
    SegmentEntry { file, records, bytes }
    StoreManifest { schema, segment_max_bytes, total_records, segments }
}

impl StoreManifest {
    /// Pretty JSON (the on-disk format).
    pub fn to_json_pretty(&self) -> String {
        foundation::json::to_string_pretty(self)
    }

    /// Parse a manifest back from JSON text.
    pub fn parse(text: &str) -> Result<StoreManifest, JsonError> {
        foundation::json::from_str(text)
    }

    /// Structural sanity checks.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("unknown store manifest schema {:?}", self.schema));
        }
        let sum: u64 = self.segments.iter().map(|s| s.records).sum();
        if sum != self.total_records {
            return Err(format!(
                "segment record sum {} != total_records {}",
                sum, self.total_records
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_validate() {
        let m = StoreManifest {
            schema: SCHEMA.to_string(),
            segment_max_bytes: 1024,
            total_records: 5,
            segments: vec![
                SegmentEntry { file: "wal-00000.seg".into(), records: 3, bytes: 900 },
                SegmentEntry { file: "wal-00001.seg".into(), records: 2, bytes: 400 },
            ],
        };
        assert!(m.validate().is_ok());
        let back = StoreManifest::parse(&m.to_json_pretty()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn mismatched_totals_rejected() {
        let m = StoreManifest {
            schema: SCHEMA.to_string(),
            segment_max_bytes: 1024,
            total_records: 9,
            segments: vec![SegmentEntry { file: "wal-00000.seg".into(), records: 3, bytes: 1 }],
        };
        assert!(m.validate().is_err());
    }
}
