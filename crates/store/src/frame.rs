//! Binary record framing for WAL segments.
//!
//! Every record is one self-delimiting frame:
//!
//! ```text
//! ┌────────────┬────────────┬────────┬───────────────────────┐
//! │ len: u32LE │ crc: u32LE │ kind:u8│ payload (len−1 bytes) │
//! └────────────┴────────────┴────────┴───────────────────────┘
//!   len  = 1 + payload.len()      (the body length: kind ‖ payload)
//!   crc  = CRC-32(kind ‖ payload) (ISO-HDLC; see `crc`)
//! ```
//!
//! The `kind` byte tags the record type (offer, profile, post, …) so the
//! store stays generic: payloads are opaque bytes — in this workspace,
//! `foundation::json` renderings — and the typed layer above assigns
//! meanings to kinds.
//!
//! Decoding distinguishes **incomplete** (the buffer ends before the frame
//! does — the signature of a torn tail after a crash) from **corrupt**
//! (the frame claims an absurd length or fails its CRC). Recovery treats
//! the two identically at the end of the final segment (truncate the
//! tail) but a corrupt frame *before* committed data is a hard error.

use crate::crc::crc32;

/// Bytes of header before the body: `len` + `crc`.
pub(crate) const FRAME_HEADER_BYTES: usize = 8;

/// Upper bound on the body length (`kind` + payload) of a single frame.
/// Anything larger is treated as corruption — a real record is a single
/// crawl observation, orders of magnitude below this.
pub(crate) const MAX_FRAME_BODY_BYTES: u32 = 16 * 1024 * 1024;

/// Result of decoding one frame from the front of a buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum Decoded<'a> {
    /// A whole, checksum-verified frame.
    Frame {
        /// Record-type tag.
        kind: u8,
        /// Opaque payload bytes.
        payload: &'a [u8],
        /// Total bytes consumed from the buffer (header + body).
        consumed: usize,
    },
    /// The buffer ends mid-frame (torn tail).
    Incomplete,
    /// The frame is malformed: zero/oversized length or CRC mismatch.
    Corrupt,
}

/// Encode one frame (see the module docs for the layout).
///
/// # Panics
/// Panics if `payload` exceeds [`MAX_FRAME_BODY_BYTES`] − 1 bytes; callers
/// frame single crawl records, which are always far below the cap.
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let body_len = 1 + payload.len();
    assert!(
        body_len <= MAX_FRAME_BODY_BYTES as usize,
        "record payload of {} bytes exceeds the frame cap",
        payload.len()
    );
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    // CRC over the body without materializing it separately: chain kind
    // then payload through one buffer.
    let mut body = Vec::with_capacity(body_len);
    body.push(kind);
    body.extend_from_slice(payload);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out.extend_from_slice(&body);
    out
}

/// Decode one frame from the front of `buf`.
pub fn decode_frame(buf: &[u8]) -> Decoded<'_> {
    if buf.len() < FRAME_HEADER_BYTES {
        return Decoded::Incomplete;
    }
    let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if len == 0 || len > MAX_FRAME_BODY_BYTES {
        return Decoded::Corrupt;
    }
    let total = FRAME_HEADER_BYTES + len as usize;
    if buf.len() < total {
        return Decoded::Incomplete;
    }
    let crc = u32::from_le_bytes([buf[4], buf[5], buf[6], buf[7]]);
    let body = &buf[FRAME_HEADER_BYTES..total];
    if crc32(body) != crc {
        return Decoded::Corrupt;
    }
    Decoded::Frame { kind: body[0], payload: &body[1..], consumed: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let frame = encode_frame(3, b"offer payload");
        match decode_frame(&frame) {
            Decoded::Frame { kind, payload, consumed } => {
                assert_eq!(kind, 3);
                assert_eq!(payload, b"offer payload");
                assert_eq!(consumed, frame.len());
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn empty_payload_is_valid() {
        let frame = encode_frame(0, b"");
        assert!(matches!(decode_frame(&frame), Decoded::Frame { kind: 0, payload: b"", .. }));
    }

    #[test]
    fn truncated_prefixes_are_incomplete() {
        let frame = encode_frame(7, b"abcdef");
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut]) {
                Decoded::Incomplete => {}
                Decoded::Corrupt => {
                    // A cut inside the length field can by chance leave a
                    // plausible header; what it may never do is verify.
                    assert!(cut >= FRAME_HEADER_BYTES, "cut {cut} misread as corrupt header");
                }
                Decoded::Frame { .. } => panic!("truncated frame decoded at cut {cut}"),
            }
        }
    }

    #[test]
    fn crc_mismatch_is_corrupt() {
        let mut frame = encode_frame(1, b"payload bytes");
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        assert_eq!(decode_frame(&frame), Decoded::Corrupt);
    }

    #[test]
    fn zero_and_oversized_lengths_are_corrupt() {
        let mut frame = encode_frame(1, b"x");
        frame[..4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_frame(&frame), Decoded::Corrupt);
        let mut frame = encode_frame(1, b"x");
        frame[..4].copy_from_slice(&(MAX_FRAME_BODY_BYTES + 1).to_le_bytes());
        assert_eq!(decode_frame(&frame), Decoded::Corrupt);
    }

    #[test]
    fn trailing_bytes_are_ignored() {
        let mut buf = encode_frame(9, b"first");
        let first_len = buf.len();
        buf.extend_from_slice(&encode_frame(9, b"second"));
        match decode_frame(&buf) {
            Decoded::Frame { payload, consumed, .. } => {
                assert_eq!(payload, b"first");
                assert_eq!(consumed, first_len);
            }
            other => panic!("expected first frame, got {other:?}"),
        }
    }
}
