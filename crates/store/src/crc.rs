//! CRC-32 (ISO-HDLC / "zlib" polynomial, reflected) — the checksum that
//! guards every WAL frame.
//!
//! The implementation is the classic byte-at-a-time table walk: a 256-entry
//! table generated at first use from the reflected polynomial `0xEDB88320`,
//! initial value `0xFFFF_FFFF`, final XOR `0xFFFF_FFFF`. This is the same
//! CRC-32 variant used by zlib, PNG, and gzip, with the well-known check
//! value `crc32(b"123456789") == 0xCBF4_3926` (asserted in the tests so a
//! typo in the polynomial can never ship).
//!
//! Why a CRC and not a cryptographic hash: the WAL's threat model is
//! *accidental* corruption — torn writes on crash, bit rot, truncated
//! copies — not an adversary. CRC-32 detects all single-bit and
//! single-byte errors and all burst errors up to 32 bits, which is exactly
//! the failure vocabulary of an append-only log, at a fraction of the
//! cost.

use std::sync::OnceLock;

/// Reflected CRC-32 polynomial (ISO-HDLC).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { (c >> 1) ^ POLY } else { c >> 1 };
            }
            *entry = c;
        }
        t
    })
}

/// CRC-32 of `bytes` (ISO-HDLC variant; see module docs).
pub fn crc32(bytes: &[u8]) -> u32 {
    let t = table();
    let mut c: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        c = t[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_check_value() {
        // The canonical CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_byte_sensitivity() {
        let base = crc32(b"hello, wal");
        for i in 0..10 {
            let mut corrupted = b"hello, wal".to_vec();
            corrupted[i] ^= 0x01;
            assert_ne!(crc32(&corrupted), base, "flip at byte {i} must change the CRC");
        }
    }
}
