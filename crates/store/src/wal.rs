//! The append-only, segmented write-ahead log.
//!
//! A [`Writer`] owns a directory of numbered segment files and appends
//! CRC-framed records ([`crate::frame`]) to the highest one, rotating to
//! a fresh segment *lazily* — the rotation happens on the first append
//! after a segment crosses [`WalOptions::segment_max_bytes`]. Lazy
//! rotation makes the on-disk layout a **pure function of the record
//! stream and the options**: a writer that re-appends the same records
//! after a crash produces byte-identical segments at identical offsets,
//! which is what lets resumed crawl campaigns reconcile their telemetry
//! counters (bytes appended, segments rotated) exactly with an
//! uninterrupted run.
//!
//! ## Durability contract
//!
//! * [`Writer::append`] buffers through the OS; [`Writer::sync`] fsyncs
//!   the active segment and atomically replaces the advisory manifest.
//! * Recovery ([`Writer::open_resume`]) never trusts the manifest: it
//!   re-scans every segment frame by frame, keeps the longest valid
//!   prefix, **truncates a torn tail instead of failing**, rolls back any
//!   valid-but-uncommitted records beyond the caller's checkpoint cursor,
//!   and reports exactly what was salvaged in a [`RecoveryReport`].
//! * A bad frame *inside* the committed prefix is unrecoverable by
//!   truncation and surfaces as [`StoreError::CommittedDataLost`] — again
//!   carrying the salvage report, so the operator knows precisely how
//!   many records survive.

use crate::checkpoint::write_atomic;
use crate::frame::{decode_frame, encode_frame, Decoded};
use crate::manifest::{SegmentEntry, StoreManifest, MANIFEST_FILE, SCHEMA};
use crate::segment::{list_segments, segment_file_name};
use std::fs::{File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

/// Default segment rotation threshold.
pub const DEFAULT_SEGMENT_MAX_BYTES: u64 = 256 * 1024;

/// Writer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// A segment that has reached this many bytes is closed and a new one
    /// opened on the next append (lazy rotation; segments may overshoot
    /// by up to one frame).
    pub segment_max_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions { segment_max_bytes: DEFAULT_SEGMENT_MAX_BYTES }
    }
}

/// One replayed record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Zero-based position in the log.
    pub seq: u64,
    /// Record-type tag (assigned by the typed layer above).
    pub kind: u8,
    /// Opaque payload bytes.
    pub payload: Vec<u8>,
}

/// What one append did (drives the persist layer's telemetry deltas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReceipt {
    /// Sequence number assigned to the record.
    pub seq: u64,
    /// Framed bytes written (header + body).
    pub bytes: u64,
    /// Whether this append opened a new segment.
    pub rotated: bool,
}

/// Cumulative writer-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriterStats {
    /// Records appended by this writer instance.
    pub records_appended: u64,
    /// Framed bytes appended by this writer instance.
    pub bytes_appended: u64,
    /// Segment rotations performed by this writer instance.
    pub segments_rotated: u64,
}

/// Exactly what recovery salvaged (and discarded).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Segment files scanned.
    pub segments_scanned: u64,
    /// Valid records replayed into the committed prefix.
    pub records_replayed: u64,
    /// Framed bytes in the replayed prefix.
    pub bytes_replayed: u64,
    /// 1 when a torn/corrupt tail terminated the scan and was truncated.
    pub torn_tails_truncated: u64,
    /// Bytes discarded by the tail truncation.
    pub torn_tail_bytes: u64,
    /// Valid records found beyond the committed cursor and rolled back.
    pub uncommitted_records_dropped: u64,
    /// Whole segment files beyond the committed boundary that were removed.
    pub trailing_segments_removed: u64,
    /// Whether the advisory manifest (if present and well-formed) agreed
    /// with the recovered record count.
    pub manifest_agrees: bool,
}

impl RecoveryReport {
    /// One-line human summary ("reports exactly what was salvaged").
    pub fn describe(&self) -> String {
        format!(
            "salvaged {} records ({} bytes) from {} segments; \
             dropped {} uncommitted records, truncated {} torn tail(s) ({} bytes), \
             removed {} trailing segment file(s); manifest {}",
            self.records_replayed,
            self.bytes_replayed,
            self.segments_scanned,
            self.uncommitted_records_dropped,
            self.torn_tails_truncated,
            self.torn_tail_bytes,
            self.trailing_segments_removed,
            if self.manifest_agrees { "agrees" } else { "disagrees (rescanned)" },
        )
    }
}

/// Store-level failure.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The requested operation is not valid for the store's current
    /// state (e.g. compacting a store with a torn tail).
    Invalid(String),
    /// Recovery could not reconstruct every committed record: corruption
    /// struck *inside* the committed prefix. The report says exactly how
    /// far the salvage got.
    CommittedDataLost {
        /// Records the checkpoint claims were durable.
        committed: u64,
        /// Records actually recovered.
        salvaged: u64,
        /// Full salvage report.
        report: RecoveryReport,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Invalid(msg) => write!(f, "invalid store operation: {msg}"),
            StoreError::CommittedDataLost { committed, salvaged, report } => write!(
                f,
                "committed data lost: checkpoint claims {committed} records, \
                 only {salvaged} recoverable ({})",
                report.describe()
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One scanned segment: the valid frames, where they end, and what (if
/// anything) trails them.
struct ScannedSeg {
    index: u64,
    path: PathBuf,
    /// (offset, kind, payload, framed length) per valid frame, in order.
    frames: Vec<(u64, u8, Vec<u8>, u64)>,
    /// Offset just past the last valid frame.
    clean_end: u64,
    /// Total file length.
    total_len: u64,
    /// Whether a bad (torn or corrupt) frame terminated this segment.
    bad_tail: bool,
}

/// Scan every segment in order, stopping at the first bad frame. Returns
/// the scanned segments up to and including the one with the bad frame
/// (if any) plus the number of unscanned trailing segment files.
fn scan_segments(dir: &Path) -> io::Result<(Vec<ScannedSeg>, u64)> {
    let listed = list_segments(dir)?;
    let mut out = Vec::new();
    let mut stopped = false;
    let mut unscanned = 0u64;
    for (index, path) in listed {
        if stopped {
            unscanned += 1;
            continue;
        }
        let bytes = std::fs::read(&path)?;
        let mut frames = Vec::new();
        let mut offset = 0usize;
        let mut bad_tail = false;
        while offset < bytes.len() {
            match decode_frame(&bytes[offset..]) {
                Decoded::Frame { kind, payload, consumed } => {
                    frames.push((offset as u64, kind, payload.to_vec(), consumed as u64));
                    offset += consumed;
                }
                Decoded::Incomplete | Decoded::Corrupt => {
                    bad_tail = true;
                    stopped = true;
                    break;
                }
            }
        }
        out.push(ScannedSeg {
            index,
            path,
            frames,
            clean_end: offset as u64,
            total_len: bytes.len() as u64,
            bad_tail,
        });
    }
    Ok((out, unscanned))
}

fn read_manifest(dir: &Path) -> Option<StoreManifest> {
    let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).ok()?;
    let m = StoreManifest::parse(&text).ok()?;
    m.validate().ok().map(|_| m)
}

/// The WAL writer. See the module docs for the durability contract.
pub struct Writer {
    dir: PathBuf,
    opts: WalOptions,
    file: File,
    seg_index: u64,
    seg_bytes: u64,
    seg_records: u64,
    completed: Vec<SegmentEntry>,
    next_seq: u64,
    stats: WriterStats,
}

impl std::fmt::Debug for Writer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Writer(dir={:?}, seg={}, records={})",
            self.dir, self.seg_index, self.next_seq
        )
    }
}

impl Writer {
    /// Start a **fresh** store in `dir`, creating the directory if needed
    /// and removing any existing segment chain and manifest. (Resumable
    /// pipelines call [`Writer::open_resume`] instead; `create` is the
    /// "new campaign" path and is explicitly destructive to prior WAL
    /// state in the same directory.)
    pub fn create(dir: &Path, opts: WalOptions) -> io::Result<Writer> {
        std::fs::create_dir_all(dir)?;
        for (_, path) in list_segments(dir)? {
            std::fs::remove_file(path)?;
        }
        let manifest = dir.join(MANIFEST_FILE);
        if manifest.exists() {
            std::fs::remove_file(&manifest)?;
        }
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(dir.join(segment_file_name(0)))?;
        Ok(Writer {
            dir: dir.to_path_buf(),
            opts,
            file,
            seg_index: 0,
            seg_bytes: 0,
            seg_records: 0,
            completed: Vec::new(),
            next_seq: 0,
            stats: WriterStats::default(),
        })
    }

    /// Append one record; returns the assigned sequence number, the bytes
    /// written, and whether the append rotated to a new segment.
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> io::Result<AppendReceipt> {
        let mut rotated = false;
        if self.seg_bytes >= self.opts.segment_max_bytes && self.seg_records > 0 {
            self.rotate()?;
            rotated = true;
        }
        let frame = encode_frame(kind, payload);
        self.file.write_all(&frame)?;
        self.seg_bytes += frame.len() as u64;
        self.seg_records += 1;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += frame.len() as u64;
        if rotated {
            self.stats.segments_rotated += 1;
        }
        Ok(AppendReceipt { seq, bytes: frame.len() as u64, rotated })
    }

    fn rotate(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        self.completed.push(SegmentEntry {
            file: segment_file_name(self.seg_index),
            records: self.seg_records,
            bytes: self.seg_bytes,
        });
        self.seg_index += 1;
        self.file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(self.dir.join(segment_file_name(self.seg_index)))?;
        self.seg_bytes = 0;
        self.seg_records = 0;
        Ok(())
    }

    /// Make everything appended so far durable: fsync the active segment
    /// and atomically replace the advisory manifest.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_all()?;
        let manifest = self.manifest();
        write_atomic(&self.dir.join(MANIFEST_FILE), manifest.to_json_pretty().as_bytes())
    }

    /// The manifest describing the current segment chain.
    pub fn manifest(&self) -> StoreManifest {
        let mut segments = self.completed.clone();
        segments.push(SegmentEntry {
            file: segment_file_name(self.seg_index),
            records: self.seg_records,
            bytes: self.seg_bytes,
        });
        StoreManifest {
            schema: SCHEMA.to_string(),
            segment_max_bytes: self.opts.segment_max_bytes,
            total_records: self.next_seq,
            segments,
        }
    }

    /// Cumulative counters for this writer instance.
    pub fn stats(&self) -> WriterStats {
        self.stats
    }

    /// Total records in the log (next sequence number).
    pub fn total_records(&self) -> u64 {
        self.next_seq
    }

    /// Number of segments in the chain (completed + active).
    pub fn segment_count(&self) -> u64 {
        self.seg_index + 1
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options this writer was opened with.
    pub fn options(&self) -> WalOptions {
        self.opts
    }

    /// Reopen a store after a crash, trusting only `committed` — the
    /// record count the caller's last durable checkpoint vouches for.
    ///
    /// Returns the positioned writer, the committed records (for state
    /// reconstruction), and the salvage report. See the module docs for
    /// the exact semantics; in short: torn tails are truncated, valid
    /// records beyond `committed` are rolled back (physically truncated)
    /// so the resumed run re-derives them deterministically, and
    /// corruption inside the committed prefix is a hard
    /// [`StoreError::CommittedDataLost`].
    pub fn open_resume(
        dir: &Path,
        opts: WalOptions,
        committed: u64,
    ) -> Result<(Writer, Vec<Record>, RecoveryReport), StoreError> {
        std::fs::create_dir_all(dir)?;
        let prior_manifest = read_manifest(dir);
        let (scanned, unscanned_trailing) = scan_segments(dir)?;
        let mut report = RecoveryReport {
            segments_scanned: scanned.len() as u64,
            manifest_agrees: false,
            ..RecoveryReport::default()
        };

        if scanned.is_empty() {
            if committed == 0 {
                let mut w = Writer::create(dir, opts)?;
                w.sync()?;
                report.manifest_agrees = prior_manifest
                    .as_ref()
                    .map(|m| m.total_records == 0)
                    .unwrap_or(false);
                return Ok((w, Vec::new(), report));
            }
            return Err(StoreError::CommittedDataLost { committed, salvaged: 0, report });
        }

        let _ = unscanned_trailing;
        // Walk the scan, splitting at the committed boundary.
        let mut records = Vec::new();
        let mut kept_layout: Vec<SegmentEntry> = Vec::new();
        // (position in `scanned`, truncate-to offset within that segment)
        let mut boundary: Option<(usize, u64)> = None;
        for (pos, seg) in scanned.iter().enumerate() {
            let before_boundary = boundary.is_none();
            let mut seg_records = 0u64;
            let mut seg_bytes = 0u64;
            for (offset, kind, payload, flen) in &seg.frames {
                if boundary.is_none() && (records.len() as u64) < committed {
                    records.push(Record {
                        seq: records.len() as u64,
                        kind: *kind,
                        payload: payload.clone(),
                    });
                    seg_records += 1;
                    seg_bytes += flen;
                    report.records_replayed += 1;
                    report.bytes_replayed += flen;
                    if records.len() as u64 == committed {
                        boundary = Some((pos, offset + flen));
                    }
                } else {
                    report.uncommitted_records_dropped += 1;
                }
            }
            if committed == 0 && boundary.is_none() {
                boundary = Some((pos, 0));
            }
            if before_boundary {
                // This segment holds (part of) the committed prefix.
                kept_layout.push(SegmentEntry {
                    file: segment_file_name(seg.index),
                    records: seg_records,
                    bytes: seg_bytes,
                });
            }
        }

        // A bad tail anywhere in the scan is about to be discarded —
        // either truncated in place or removed with its whole file.
        if let Some(bad) = scanned.iter().find(|s| s.bad_tail) {
            report.torn_tails_truncated = 1;
            report.torn_tail_bytes = bad.total_len - bad.clean_end;
        }

        if (records.len() as u64) < committed {
            return Err(StoreError::CommittedDataLost {
                committed,
                salvaged: records.len() as u64,
                report,
            });
        }
        let (bpos, boffset) =
            boundary.expect("boundary set once committed records are gathered"); // conformance: allow(panic-policy) — boundary is set whenever committed records were gathered
        let bseg = &scanned[bpos];

        // Everything past the boundary is discarded: first the tail of
        // the boundary segment, then every later segment file.
        if bseg.total_len > boffset {
            let f = OpenOptions::new().write(true).open(&bseg.path)?;
            f.set_len(boffset)?;
            f.sync_all()?;
        }
        for (index, path) in list_segments(dir)? {
            if index > bseg.index {
                std::fs::remove_file(path)?;
                report.trailing_segments_removed += 1;
            }
        }

        report.manifest_agrees = prior_manifest
            .as_ref()
            .map(|m| m.total_records == committed)
            .unwrap_or(false);

        // Position the writer at the boundary.
        let mut file = OpenOptions::new().write(true).open(&bseg.path)?;
        file.seek(SeekFrom::End(0))?;
        let current = kept_layout.pop().unwrap_or(SegmentEntry {
            file: segment_file_name(bseg.index),
            records: 0,
            bytes: 0,
        });
        let mut writer = Writer {
            dir: dir.to_path_buf(),
            opts,
            file,
            seg_index: bseg.index,
            seg_bytes: current.bytes,
            seg_records: current.records,
            completed: kept_layout,
            next_seq: committed,
            stats: WriterStats::default(),
        };
        // Re-sync the manifest to the recovered truth immediately, so a
        // second crash before the first append still finds a consistent
        // store.
        writer.sync()?;
        Ok((writer, records, report))
    }
}

/// Read-only replay of a complete store: every valid record in order,
/// plus a report noting any torn tail (which is *not* truncated — replay
/// never writes).
pub fn replay(dir: &Path) -> Result<(Vec<Record>, RecoveryReport), StoreError> {
    let prior_manifest = read_manifest(dir);
    let (scanned, _unscanned) = scan_segments(dir)?;
    let mut report =
        RecoveryReport { segments_scanned: scanned.len() as u64, ..RecoveryReport::default() };
    let mut records = Vec::new();
    for seg in &scanned {
        for (_, kind, payload, flen) in &seg.frames {
            records.push(Record { seq: records.len() as u64, kind: *kind, payload: payload.clone() });
            report.records_replayed += 1;
            report.bytes_replayed += flen;
        }
        if seg.bad_tail {
            report.torn_tails_truncated = 1;
            report.torn_tail_bytes = seg.total_len - seg.clean_end;
            break;
        }
    }
    report.manifest_agrees = prior_manifest
        .as_ref()
        .map(|m| m.total_records == records.len() as u64)
        .unwrap_or(false);
    Ok((records, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("acctrade-store-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn small_opts() -> WalOptions {
        WalOptions { segment_max_bytes: 128 }
    }

    fn payload(i: u64) -> Vec<u8> {
        format!("{{\"record\":{i},\"pad\":\"{}\"}}", "x".repeat((i % 7) as usize * 5)).into_bytes()
    }

    #[test]
    fn append_sync_replay_roundtrip() {
        let dir = scratch("roundtrip");
        let mut w = Writer::create(&dir, small_opts()).unwrap();
        for i in 0..40 {
            let r = w.append((i % 4) as u8, &payload(i)).unwrap();
            assert_eq!(r.seq, i);
        }
        w.sync().unwrap();
        assert!(w.segment_count() > 1, "small cap must force rotation");
        assert_eq!(w.stats().segments_rotated, w.segment_count() - 1);
        let (records, report) = replay(&dir).unwrap();
        assert_eq!(records.len(), 40);
        assert_eq!(report.torn_tails_truncated, 0);
        assert!(report.manifest_agrees);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.kind, (i % 4) as u8);
            assert_eq!(r.payload, payload(i as u64));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_reflects_layout() {
        let dir = scratch("manifest");
        let mut w = Writer::create(&dir, small_opts()).unwrap();
        for i in 0..20 {
            w.append(0, &payload(i)).unwrap();
        }
        w.sync().unwrap();
        let m = w.manifest();
        assert!(m.validate().is_ok());
        assert_eq!(m.total_records, 20);
        let on_disk =
            StoreManifest::parse(&std::fs::read_to_string(dir.join(MANIFEST_FILE)).unwrap())
                .unwrap();
        assert_eq!(on_disk, m);
        // Segment files on disk match the manifest byte counts.
        for entry in &m.segments {
            let len = std::fs::metadata(dir.join(&entry.file)).unwrap().len();
            assert_eq!(len, entry.bytes, "{}", entry.file);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let dir = scratch("torn");
        let mut w = Writer::create(&dir, small_opts()).unwrap();
        for i in 0..10 {
            w.append(1, &payload(i)).unwrap();
        }
        w.sync().unwrap();
        // Simulate a crash mid-append: garbage half-frame at the tail of
        // the last segment.
        let last = list_segments(&dir).unwrap().pop().unwrap().1;
        let mut f = OpenOptions::new().append(true).open(&last).unwrap();
        f.write_all(&[0x55, 0x00, 0x00, 0x00, 0xAA, 0xBB]).unwrap(); // truncated header+crc
        drop(f);

        let (w2, records, report) = Writer::open_resume(&dir, small_opts(), 10).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(report.torn_tails_truncated, 1);
        assert_eq!(report.torn_tail_bytes, 6);
        assert_eq!(w2.total_records(), 10);
        drop(w2);
        // The tail is physically gone: a plain replay is now clean.
        let (_, clean) = replay(&dir).unwrap();
        assert_eq!(clean.torn_tails_truncated, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncommitted_records_roll_back() {
        let dir = scratch("rollback");
        let mut w = Writer::create(&dir, small_opts()).unwrap();
        for i in 0..30 {
            w.append(0, &payload(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Checkpoint only vouches for 12 records; the rest must vanish.
        let (w2, records, report) = Writer::open_resume(&dir, small_opts(), 12).unwrap();
        assert_eq!(records.len(), 12);
        assert_eq!(report.uncommitted_records_dropped, 18);
        assert_eq!(w2.total_records(), 12);
        drop(w2);
        let (after, _) = replay(&dir).unwrap();
        assert_eq!(after.len(), 12);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The invariant byte-identical resume rests on: append the same
    /// record stream with a crash + rollback in the middle, and the final
    /// segment chain is byte-identical to an uninterrupted writer's.
    #[test]
    fn resumed_layout_is_byte_identical() {
        let dir_a = scratch("layout-clean");
        let dir_b = scratch("layout-resumed");
        let mut a = Writer::create(&dir_a, small_opts()).unwrap();
        for i in 0..50 {
            a.append((i % 3) as u8, &payload(i)).unwrap();
        }
        a.sync().unwrap();

        let mut b = Writer::create(&dir_b, small_opts()).unwrap();
        for i in 0..23 {
            b.append((i % 3) as u8, &payload(i)).unwrap();
        }
        b.sync().unwrap();
        // Crash: 4 more records appended but only 23 committed, plus a
        // torn half-frame.
        for i in 23..27 {
            b.append((i % 3) as u8, &payload(i)).unwrap();
        }
        drop(b);
        let last = list_segments(&dir_b).unwrap().pop().unwrap().1;
        let mut f = OpenOptions::new().append(true).open(&last).unwrap();
        f.write_all(&[9, 9, 9]).unwrap();
        drop(f);

        let (mut b2, records, _) = Writer::open_resume(&dir_b, small_opts(), 23).unwrap();
        assert_eq!(records.len(), 23);
        for i in 23..50 {
            b2.append((i % 3) as u8, &payload(i)).unwrap();
        }
        b2.sync().unwrap();

        let segs_a = list_segments(&dir_a).unwrap();
        let segs_b = list_segments(&dir_b).unwrap();
        assert_eq!(segs_a.len(), segs_b.len());
        for ((ia, pa), (ib, pb)) in segs_a.iter().zip(segs_b.iter()) {
            assert_eq!(ia, ib);
            assert_eq!(
                std::fs::read(pa).unwrap(),
                std::fs::read(pb).unwrap(),
                "segment {ia} differs"
            );
        }
        assert_eq!(
            std::fs::read_to_string(dir_a.join(MANIFEST_FILE)).unwrap(),
            std::fs::read_to_string(dir_b.join(MANIFEST_FILE)).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }

    #[test]
    fn committed_data_lost_is_a_hard_error() {
        let dir = scratch("lost");
        let mut w = Writer::create(&dir, small_opts()).unwrap();
        for i in 0..8 {
            w.append(0, &payload(i)).unwrap();
        }
        w.sync().unwrap();
        drop(w);
        // Corrupt a byte inside the *first* record of the first segment.
        let first = list_segments(&dir).unwrap().remove(0).1;
        let mut bytes = std::fs::read(&first).unwrap();
        bytes[10] ^= 0xFF;
        std::fs::write(&first, &bytes).unwrap();
        match Writer::open_resume(&dir, small_opts(), 8) {
            Err(StoreError::CommittedDataLost { committed, salvaged, report }) => {
                assert_eq!(committed, 8);
                assert_eq!(salvaged, 0);
                assert!(report.describe().contains("salvaged 0 records"));
            }
            other => panic!("expected CommittedDataLost, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_empty_dir_with_zero_committed() {
        let dir = scratch("empty");
        let (w, records, report) = Writer::open_resume(&dir, small_opts(), 0).unwrap();
        assert_eq!(records.len(), 0);
        assert_eq!(report.records_replayed, 0);
        assert_eq!(w.total_records(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_missing_data_errors() {
        let dir = scratch("missing");
        match Writer::open_resume(&dir, small_opts(), 5) {
            Err(StoreError::CommittedDataLost { salvaged: 0, .. }) => {}
            other => panic!("expected CommittedDataLost, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
