//! Snapshot/compaction: rewrite a store to its minimal equivalent.
//!
//! A five-month crawl campaign re-observes the same listings iteration
//! after iteration, so the raw WAL holds many versions of each offer.
//! Compaction rewrites the log keeping, per logical key, only the
//! **latest version** (highest version number; ties broken by log
//! position), while passing every non-versioned record through
//! untouched.
//!
//! The store stays generic: the caller classifies each record via a
//! closure ([`Disposition`]) — the crawler's persist layer maps offer
//! records to `Dedup { key: "marketplace|offer_url", version: iteration }`
//! and everything else to `Keep`.
//!
//! Compaction is an **offline maintenance operation** on a complete,
//! healthy store: it refuses to run when the scan finds a torn tail
//! (recover first — see `Writer::open_resume`). The rewrite builds the
//! new chain in a scratch subdirectory, fsyncs it, and only then swaps it
//! into place and rewrites the manifest, so an interrupted compaction
//! leaves either the old chain or a recoverable mixture, never silent
//! partial data.

use crate::checkpoint::write_atomic;
use crate::manifest::MANIFEST_FILE;
use crate::segment::list_segments;
use crate::wal::{replay, StoreError, WalOptions, Writer};
use std::collections::BTreeMap;
use std::path::Path;

/// Scratch subdirectory used while building the compacted chain.
pub(crate) const COMPACT_TMP_DIR: &str = "compact.tmp";

/// How one record participates in compaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Disposition {
    /// Copy the record through unchanged.
    Keep,
    /// The record is one *version* of a logical entity: keep only the
    /// highest `version` per `key` (ties: the later log position wins).
    Dedup {
        /// Logical identity (e.g. `marketplace|offer_url`).
        key: String,
        /// Version ordinal (e.g. crawl iteration).
        version: u64,
    },
    /// Drop the record entirely.
    Drop,
}

/// What compaction did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// Records in the input chain.
    pub records_in: u64,
    /// Records in the rewritten chain.
    pub records_out: u64,
    /// Versioned records superseded by a newer version.
    pub records_deduped: u64,
    /// Records dropped by the classifier.
    pub records_dropped: u64,
    /// Framed bytes in the input chain.
    pub bytes_in: u64,
    /// Framed bytes in the rewritten chain.
    pub bytes_out: u64,
    /// Segments in the rewritten chain.
    pub segments_out: u64,
}

/// Compact the store at `dir` (see the module docs).
pub fn compact(
    dir: &Path,
    opts: WalOptions,
    mut classify: impl FnMut(u8, &[u8]) -> Disposition,
) -> Result<CompactionReport, StoreError> {
    let (records, scan) = replay(dir)?;
    if scan.torn_tails_truncated > 0 {
        return Err(StoreError::Invalid(
            "store has a torn tail; run recovery before compacting".into(),
        ));
    }

    // Pass 1: classify, electing a winner per dedup key.
    let mut winners: BTreeMap<String, (u64, u64)> = BTreeMap::new(); // key -> (version, seq)
    let dispositions: Vec<Disposition> = records
        .iter()
        .map(|r| {
            let d = classify(r.kind, &r.payload);
            if let Disposition::Dedup { key, version } = &d {
                let cand = (*version, r.seq);
                match winners.get(key) {
                    Some(best) if *best >= cand => {}
                    _ => {
                        winners.insert(key.clone(), cand);
                    }
                }
            }
            d
        })
        .collect();

    // Pass 2: rewrite the survivors, in original log order, into a
    // scratch chain.
    let tmp = dir.join(COMPACT_TMP_DIR);
    let _ = std::fs::remove_dir_all(&tmp);
    let mut out = Writer::create(&tmp, opts)?;
    let mut report = CompactionReport {
        records_in: records.len() as u64,
        bytes_in: scan.bytes_replayed,
        ..CompactionReport::default()
    };
    for (r, d) in records.iter().zip(dispositions.iter()) {
        let keep = match d {
            Disposition::Keep => true,
            Disposition::Drop => {
                report.records_dropped += 1;
                false
            }
            Disposition::Dedup { key, version } => {
                if winners.get(key) == Some(&(*version, r.seq)) {
                    true
                } else {
                    report.records_deduped += 1;
                    false
                }
            }
        };
        if keep {
            let receipt = out.append(r.kind, &r.payload)?;
            report.records_out += 1;
            report.bytes_out += receipt.bytes;
        }
    }
    out.sync()?;
    let new_manifest = out.manifest();
    report.segments_out = out.segment_count();
    drop(out);

    // Swap: remove the old chain, move the new one in, rewrite the
    // manifest last.
    for (_, path) in list_segments(dir)? {
        std::fs::remove_file(path)?;
    }
    for (_, path) in list_segments(&tmp)? {
        let name = path.file_name().expect("segment file has a name").to_os_string(); // conformance: allow(panic-policy) — list_segments only yields named segment files
        std::fs::rename(&path, dir.join(name))?;
    }
    write_atomic(&dir.join(MANIFEST_FILE), new_manifest.to_json_pretty().as_bytes())?;
    let _ = std::fs::remove_dir_all(&tmp);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("acctrade-store-compact-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const OFFER: u8 = 1;
    const POST: u8 = 2;

    /// Payload convention for the test: `key|version|body`.
    fn offer(key: &str, version: u64) -> Vec<u8> {
        format!("{key}|{version}|body-{key}-{version}").into_bytes()
    }

    fn classify(kind: u8, payload: &[u8]) -> Disposition {
        if kind != OFFER {
            return Disposition::Keep;
        }
        let text = String::from_utf8_lossy(payload);
        let mut parts = text.splitn(3, '|');
        let key = parts.next().unwrap_or_default().to_string();
        let version: u64 = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0);
        Disposition::Dedup { key, version }
    }

    #[test]
    fn latest_version_wins_and_order_is_preserved() {
        let dir = scratch("latest");
        let opts = WalOptions { segment_max_bytes: 96 };
        let mut w = Writer::create(&dir, opts).unwrap();
        // Three iterations over two offers, interleaved with posts.
        for iter in 0..3u64 {
            w.append(OFFER, &offer("swapd:a", iter)).unwrap();
            w.append(POST, format!("post-{iter}").as_bytes()).unwrap();
            w.append(OFFER, &offer("fameswap:b", iter)).unwrap();
        }
        w.sync().unwrap();
        drop(w);

        let report = compact(&dir, opts, classify).unwrap();
        assert_eq!(report.records_in, 9);
        assert_eq!(report.records_out, 5); // 3 posts + 2 latest offers
        assert_eq!(report.records_deduped, 4);
        assert_eq!(report.records_dropped, 0);
        assert!(report.bytes_out < report.bytes_in);

        let (records, scan) = replay(&dir).unwrap();
        assert_eq!(scan.torn_tails_truncated, 0);
        assert!(scan.manifest_agrees);
        let payloads: Vec<String> =
            records.iter().map(|r| String::from_utf8_lossy(&r.payload).into_owned()).collect();
        assert_eq!(
            payloads,
            vec![
                "post-0",
                "post-1",
                "swapd:a|2|body-swapd:a-2",
                "post-2",
                "fameswap:b|2|body-fameswap:b-2",
            ]
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_disposition_drops() {
        let dir = scratch("drop");
        let opts = WalOptions::default();
        let mut w = Writer::create(&dir, opts).unwrap();
        w.append(POST, b"keep me").unwrap();
        w.append(9, b"ephemeral").unwrap();
        w.sync().unwrap();
        drop(w);
        let report = compact(&dir, opts, |kind, _| {
            if kind == 9 { Disposition::Drop } else { Disposition::Keep }
        })
        .unwrap();
        assert_eq!(report.records_out, 1);
        assert_eq!(report.records_dropped, 1);
        let (records, _) = replay(&dir).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].payload, b"keep me");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_store_refuses_compaction() {
        let dir = scratch("torn");
        let opts = WalOptions::default();
        let mut w = Writer::create(&dir, opts).unwrap();
        w.append(POST, b"fine").unwrap();
        w.sync().unwrap();
        drop(w);
        // Torn half-frame at the tail.
        let last = list_segments(&dir).unwrap().pop().unwrap().1;
        let mut bytes = std::fs::read(&last).unwrap();
        bytes.extend_from_slice(&[1, 2, 3]);
        std::fs::write(&last, bytes).unwrap();
        match compact(&dir, opts, |_, _| Disposition::Keep) {
            Err(StoreError::Invalid(msg)) => assert!(msg.contains("torn")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
