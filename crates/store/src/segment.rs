//! Segment file naming and directory scanning.
//!
//! A store directory holds a numbered chain of segment files
//! (`wal-00000.seg`, `wal-00001.seg`, …) plus a JSON manifest
//! (`store_manifest.json`) and, for resumable pipelines, a checkpoint
//! written by the layer above. Only the segment chain is authoritative:
//! recovery always re-scans the files and treats the manifest as an
//! advisory cross-check.

use std::io;
use std::path::{Path, PathBuf};

/// Segment file prefix.
pub(crate) const SEGMENT_PREFIX: &str = "wal-";

/// Segment file extension.
pub(crate) const SEGMENT_SUFFIX: &str = ".seg";

/// File name of segment `index` (`wal-00042.seg`).
pub fn segment_file_name(index: u64) -> String {
    format!("{SEGMENT_PREFIX}{index:05}{SEGMENT_SUFFIX}")
}

/// Parse a segment index back out of a file name produced by
/// [`segment_file_name`]. Returns `None` for anything else.
pub(crate) fn parse_segment_index(name: &str) -> Option<u64> {
    let stem = name.strip_prefix(SEGMENT_PREFIX)?.strip_suffix(SEGMENT_SUFFIX)?;
    if stem.is_empty() || !stem.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    stem.parse().ok()
}

/// All segment files in `dir`, sorted ascending by index. Non-segment
/// files are ignored. Errors only on I/O failure listing the directory.
pub fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(index) = parse_segment_index(name) {
            out.push((index, entry.path()));
        }
    }
    out.sort_by_key(|(i, _)| *i);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naming_roundtrips() {
        for i in [0u64, 1, 99, 100_000] {
            assert_eq!(parse_segment_index(&segment_file_name(i)), Some(i));
        }
    }

    #[test]
    fn foreign_names_rejected() {
        for name in ["wal-.seg", "wal-12x.seg", "wal-5.log", "manifest.json", "seg-00001.wal"] {
            assert_eq!(parse_segment_index(name), None, "{name}");
        }
    }
}
