//! Property tests: the parser's browser-grade tolerance guarantees.

use acctrade_html::{parse, Selector};
use foundation::check::pattern;
use foundation::prop_check;

prop_check! {
    /// The parser never panics, whatever bytes arrive.
    fn parser_total_on_arbitrary_input(input in pattern("\\PC{0,300}")) {
        let _ = parse(&input);
    }

    /// Parsing is idempotent through a render cycle: parse → render →
    /// parse → render reaches a fixpoint after the first render.
    fn render_parse_fixpoint(input in pattern("[ -~]{0,200}")) {
        let once = parse(&input).render();
        let twice = parse(&once).render();
        assert_eq!(once, twice);
    }

    /// Every selector hit is genuinely an element with the queried tag.
    fn tag_selection_sound(tag in pattern("(div|span|a|p|li)"), input in pattern("[ -~]{0,200}")) {
        let doc = parse(&input);
        let sel = Selector::parse(&tag).unwrap();
        for el in doc.select(&sel) {
            assert_eq!(el.tag(), tag.as_str());
        }
    }

    /// Documents built from balanced markup survive a roundtrip with
    /// attribute values intact.
    fn attr_values_survive(value in pattern("[a-zA-Z0-9 ._/-]{0,40}")) {
        let html = format!(r#"<div data-x="{value}">t</div>"#);
        let doc = parse(&html);
        let el = doc.select_first(&Selector::parse("div").unwrap()).unwrap();
        assert_eq!(el.attr("data-x"), Some(value.as_str()));
        // And through a render cycle.
        let doc2 = parse(&doc.render());
        let el2 = doc2.select_first(&Selector::parse("div").unwrap()).unwrap();
        assert_eq!(el2.attr("data-x"), Some(value.as_str()));
    }

    /// Selector parsing never panics.
    fn selector_parse_total(input in pattern("\\PC{0,60}")) {
        let _ = Selector::parse(&input);
    }
}
