#![warn(missing_docs)]

//! # acctrade-html
//!
//! A small HTML engine: a DOM tree, a renderer, a tolerant parser, and a
//! CSS-ish selector engine.
//!
//! The reproduced paper crawled marketplace listing pages with
//! Selenium-driven Chrome. Our simulated marketplaces render genuine HTML
//! and the crawler genuinely parses it — so extraction bugs, malformed
//! markup, and selector drift are all real phenomena in this reproduction,
//! not stubs. The subset implemented covers everything the marketplace
//! templates emit: elements, attributes, text, comments, void elements, and
//! entity escaping.
//!
//! ```
//! use acctrade_html::{parse, Selector};
//!
//! let doc = parse(r#"<div class="offer"><a href="/offer/7">IG account</a></div>"#);
//! let sel = Selector::parse("div.offer a").unwrap();
//! let links = doc.select(&sel);
//! assert_eq!(links[0].attr("href"), Some("/offer/7"));
//! assert_eq!(links[0].text(), "IG account");
//! ```

pub mod dom;
pub mod escape;
pub mod parser;
pub mod select;

pub use dom::{Document, ElementRef, Node, NodeId};
pub use escape::{escape_attr, escape_text, unescape};
pub use parser::parse;
pub use select::Selector;
