//! A tolerant HTML parser: tokenizer + tree builder.
//!
//! Real marketplace HTML is messy; the paper's crawler had to survive it.
//! This parser implements browser-like error tolerance for the cases that
//! occur in our templates and their mutations: unclosed tags, stray closing
//! tags, attributes with or without quotes, void elements, comments, and
//! doctype declarations.

use crate::dom::{Document, Node, NodeId, VOID_ELEMENTS};
use crate::escape::unescape;

/// Parse HTML text into a [`Document`]. Never fails; invalid constructs are
/// skipped or auto-corrected like a browser would.
pub fn parse(input: &str) -> Document {
    let tokens = tokenize(input);
    build_tree(tokens)
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Open { tag: String, attrs: Vec<(String, String)>, self_closing: bool },
    Close { tag: String },
    Text(String),
    Comment(String),
}

fn tokenize(input: &str) -> Vec<Token> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let mut text_start = 0;

    while i < bytes.len() {
        if bytes[i] == b'<' {
            // Flush pending text.
            if i > text_start {
                let raw = &input[text_start..i];
                if !raw.is_empty() {
                    tokens.push(Token::Text(unescape(raw)));
                }
            }
            if input[i..].starts_with("<!--") {
                let end = input[i + 4..].find("-->").map(|j| i + 4 + j);
                match end {
                    Some(e) => {
                        tokens.push(Token::Comment(input[i + 4..e].to_string()));
                        i = e + 3;
                    }
                    None => {
                        // Unterminated comment swallows the rest.
                        tokens.push(Token::Comment(input[i + 4..].to_string()));
                        i = bytes.len();
                    }
                }
                text_start = i;
                continue;
            }
            if input[i..].starts_with("<!") {
                // DOCTYPE or bogus declaration: skip to '>'.
                match input[i..].find('>') {
                    Some(j) => i += j + 1,
                    None => i = bytes.len(),
                }
                text_start = i;
                continue;
            }
            match input[i..].find('>') {
                Some(j) => {
                    let inner = &input[i + 1..i + j];
                    i += j + 1;
                    text_start = i;
                    if let Some(tag) = inner.strip_prefix('/') {
                        let tag = tag.trim().to_ascii_lowercase();
                        if !tag.is_empty() {
                            tokens.push(Token::Close { tag });
                        }
                    } else if !inner.trim().is_empty() {
                        if let Some(tok) = parse_open_tag(inner) {
                            tokens.push(tok);
                        }
                    }
                }
                None => {
                    // Dangling '<' at EOF: treat as text.
                    tokens.push(Token::Text(unescape(&input[i..])));
                    i = bytes.len();
                    text_start = i;
                }
            }
        } else {
            i += 1;
        }
    }
    if text_start < bytes.len() {
        tokens.push(Token::Text(unescape(&input[text_start..])));
    }
    tokens
}

fn parse_open_tag(inner: &str) -> Option<Token> {
    let inner = inner.trim();
    let self_closing = inner.ends_with('/');
    let inner = inner.strip_suffix('/').unwrap_or(inner).trim();
    let mut chars = inner.char_indices();
    let tag_end = chars
        .find(|&(_, c)| c.is_whitespace())
        .map(|(idx, _)| idx)
        .unwrap_or(inner.len());
    let tag = inner[..tag_end].to_ascii_lowercase();
    if tag.is_empty() || !tag.chars().next().is_some_and(|c| c.is_ascii_alphabetic()) {
        return None;
    }
    let attrs = parse_attrs(&inner[tag_end..]);
    Some(Token::Open { tag, attrs, self_closing })
}

fn parse_attrs(s: &str) -> Vec<(String, String)> {
    // Char-boundary-safe scanner: `i` always sits on a boundary, advanced
    // by each char's UTF-8 width (attribute names in the wild include
    // arbitrary Unicode).
    let mut attrs = Vec::new();
    let mut i = 0;
    let at = |i: usize| s[i..].chars().next();
    let skip_ws = |mut i: usize| {
        while let Some(c) = s[i..].chars().next() {
            if !c.is_whitespace() {
                break;
            }
            i += c.len_utf8();
        }
        i
    };
    while i < s.len() {
        i = skip_ws(i);
        if i >= s.len() {
            break;
        }
        let name_start = i;
        while let Some(c) = at(i) {
            if c.is_whitespace() || c == '=' {
                break;
            }
            i += c.len_utf8();
        }
        let name = s[name_start..i].to_lowercase();
        if name.is_empty() {
            i += at(i).map(char::len_utf8).unwrap_or(1);
            continue;
        }
        i = skip_ws(i);
        if at(i) == Some('=') {
            i += 1;
            i = skip_ws(i);
            match at(i) {
                Some(quote @ ('"' | '\'')) => {
                    i += 1;
                    let val_start = i;
                    while let Some(c) = at(i) {
                        if c == quote {
                            break;
                        }
                        i += c.len_utf8();
                    }
                    attrs.push((name, unescape(&s[val_start..i])));
                    i += at(i).map(char::len_utf8).unwrap_or(0); // past closing quote
                }
                _ => {
                    let val_start = i;
                    while let Some(c) = at(i) {
                        if c.is_whitespace() {
                            break;
                        }
                        i += c.len_utf8();
                    }
                    attrs.push((name, unescape(&s[val_start..i])));
                }
            }
        } else {
            // Boolean attribute.
            attrs.push((name, String::new()));
        }
    }
    attrs
}

fn build_tree(tokens: Vec<Token>) -> Document {
    let mut doc = Document::new();
    let mut stack: Vec<(NodeId, String)> = Vec::new();

    let attach = |doc: &mut Document, stack: &[(NodeId, String)], node: Node| -> NodeId {
        let id = doc.push_node(node);
        match stack.last() {
            Some(&(parent, _)) => doc.add_child(parent, id),
            None => doc.add_root(id),
        }
        id
    };

    for token in tokens {
        match token {
            Token::Text(t) => {
                if !t.is_empty() {
                    attach(&mut doc, &stack, Node::Text(t));
                }
            }
            Token::Comment(c) => {
                attach(&mut doc, &stack, Node::Comment(c));
            }
            Token::Open { tag, attrs, self_closing } => {
                let id = attach(
                    &mut doc,
                    &stack,
                    Node::Element { tag: tag.clone(), attrs, children: Vec::new() },
                );
                if !self_closing && !VOID_ELEMENTS.contains(&tag.as_str()) {
                    stack.push((id, tag));
                }
            }
            Token::Close { tag } => {
                // Pop to the matching open tag; if none is open, ignore the
                // stray close (browser behaviour).
                if let Some(pos) = stack.iter().rposition(|(_, t)| *t == tag) {
                    stack.truncate(pos);
                }
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::select::Selector;

    #[test]
    fn parses_simple_page() {
        let doc = parse("<html><body><h1>Accounts</h1><p>38,253 for sale</p></body></html>");
        let h1 = doc.select_first(&Selector::parse("h1").unwrap()).unwrap();
        assert_eq!(h1.text(), "Accounts");
        let p = doc.select_first(&Selector::parse("p").unwrap()).unwrap();
        assert_eq!(p.text(), "38,253 for sale");
    }

    #[test]
    fn attributes_quoted_unquoted_boolean() {
        let doc = parse(r#"<input type="text" name=q disabled value='x y'>"#);
        let el = doc.element(doc.roots()[0]);
        assert_eq!(el.attr("type"), Some("text"));
        assert_eq!(el.attr("name"), Some("q"));
        assert_eq!(el.attr("disabled"), Some(""));
        assert_eq!(el.attr("value"), Some("x y"));
    }

    #[test]
    fn unclosed_tags_are_recovered() {
        let doc = parse("<div><p>first<p>second</div><span>after</span>");
        // Both <p> elements exist; the unclosed first <p> swallows "first".
        let ps = doc.select(&Selector::parse("p").unwrap());
        assert_eq!(ps.len(), 2);
        let span = doc.select_first(&Selector::parse("span").unwrap()).unwrap();
        assert_eq!(span.text(), "after");
    }

    #[test]
    fn stray_close_ignored() {
        let doc = parse("</div><p>ok</p>");
        assert_eq!(doc.select(&Selector::parse("p").unwrap()).len(), 1);
    }

    #[test]
    fn comments_and_doctype() {
        let doc = parse("<!DOCTYPE html><!-- header --><div>x</div>");
        assert_eq!(doc.select(&Selector::parse("div").unwrap()).len(), 1);
        let has_comment = (0..doc.len()).any(|i| matches!(doc.node(i), Node::Comment(c) if c.contains("header")));
        assert!(has_comment);
    }

    #[test]
    fn entities_decoded_in_text_and_attrs() {
        let doc = parse(r#"<a href="/q?a=1&amp;b=2">R&amp;B &lt;3</a>"#);
        let a = doc.element(doc.roots()[0]);
        assert_eq!(a.attr("href"), Some("/q?a=1&b=2"));
        assert_eq!(a.text(), "R&B <3");
    }

    #[test]
    fn void_elements_do_not_nest() {
        let doc = parse("<div><br><img src=x.png><span>in div</span></div>");
        let div = doc.element(doc.roots()[0]);
        // span must be a child of div, not of img.
        let span = div.select_first(&Selector::parse("span").unwrap()).unwrap();
        assert_eq!(span.text(), "in div");
        let img = div.select_first(&Selector::parse("img").unwrap()).unwrap();
        assert_eq!(img.children().len(), 0);
    }

    #[test]
    fn self_closing_syntax() {
        let doc = parse("<div><widget/><p>after</p></div>");
        let div = doc.element(doc.roots()[0]);
        assert_eq!(div.children().len(), 2);
    }

    #[test]
    fn dangling_angle_is_text() {
        let doc = parse("price < 100");
        let texts: Vec<String> = (0..doc.len())
            .filter_map(|i| match doc.node(i) {
                Node::Text(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(texts.join(""), "price < 100");
    }

    #[test]
    fn unterminated_comment_swallows_rest() {
        let doc = parse("<div>a</div><!-- never closed <p>ghost</p>");
        assert_eq!(doc.select(&Selector::parse("p").unwrap()).len(), 0);
    }

    #[test]
    fn roundtrip_render_parse_preserves_structure() {
        let html = r#"<div class="offer" data-id="7"><a href="/offer/7">IG <b>26,998</b> followers</a><br><span>$298</span></div>"#;
        let doc = parse(html);
        let rendered = doc.render();
        let doc2 = parse(&rendered);
        assert_eq!(doc.render(), doc2.render());
        let a = doc2.select_first(&Selector::parse("a").unwrap()).unwrap();
        assert_eq!(a.text(), "IG 26,998 followers");
    }
}
