//! HTML entity escaping and unescaping.

/// Escape text content: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escape an attribute value (double-quoted context): text escapes plus `"`.
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Unescape the named entities we emit plus `&#NN;` / `&#xHH;` numeric
/// references. Unknown entities pass through literally (browser behaviour).
pub fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(semi) = s[i..].find(';').map(|j| i + j) {
                let entity = &s[i + 1..semi];
                let decoded = match entity {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some('\u{a0}'),
                    _ => {
                        if let Some(hex) = entity.strip_prefix("#x").or(entity.strip_prefix("#X")) {
                            u32::from_str_radix(hex, 16).ok().and_then(char::from_u32)
                        } else if let Some(dec) = entity.strip_prefix('#') {
                            dec.parse::<u32>().ok().and_then(char::from_u32)
                        } else {
                            None
                        }
                    }
                };
                if let Some(c) = decoded {
                    // Entities longer than 24 chars are junk, not entities.
                    if entity.len() <= 24 {
                        out.push(c);
                        i = semi + 1;
                        continue;
                    }
                }
            }
        }
        let ch = s[i..].chars().next().expect("in-bounds char"); // conformance: allow(panic-policy) — i < s.len() on a char boundary by loop construction
        out.push(ch);
        i += ch.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_escaping_roundtrip() {
        let raw = "price < $50 & followers > 10k";
        assert_eq!(unescape(&escape_text(raw)), raw);
        assert_eq!(escape_text(raw), "price &lt; $50 &amp; followers &gt; 10k");
    }

    #[test]
    fn attr_escaping_handles_quotes() {
        assert_eq!(escape_attr(r#"say "hi""#), "say &quot;hi&quot;");
        assert_eq!(unescape("say &quot;hi&quot;"), r#"say "hi""#);
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(unescape("&#36;64&#x41;"), "$64A");
        assert_eq!(unescape("&#x1F600;"), "😀");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(unescape("&bogus; &"), "&bogus; &");
        assert_eq!(unescape("a&b"), "a&b");
    }

    #[test]
    fn non_ascii_untouched() {
        let s = "prix élevé — 你好";
        assert_eq!(unescape(&escape_text(s)), s);
    }
}
