//! A CSS-ish selector engine.
//!
//! Supported grammar (the subset marketplace extraction adapters use):
//!
//! ```text
//! selector      = compound (WS compound)*          ; descendant combinator
//! compound      = [tag] ('#'id | '.'class | '[attr]' | '[attr=value]')*
//! ```
//!
//! `*` matches any tag. Attribute values may be quoted or bare.

use crate::dom::{Document, Node, NodeId};

/// One simple (compound) selector: tag/id/class/attr constraints that must
/// all hold on a single element.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Compound {
    tag: Option<String>,
    id: Option<String>,
    classes: Vec<String>,
    attrs: Vec<(String, Option<String>)>,
}

impl Compound {
    fn matches(&self, doc: &Document, id: NodeId) -> bool {
        let Node::Element { tag, attrs, .. } = doc.node(id) else {
            return false;
        };
        if let Some(t) = &self.tag {
            if t != tag {
                return false;
            }
        }
        let get = |name: &str| {
            attrs
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str())
        };
        if let Some(want_id) = &self.id {
            if get("id") != Some(want_id.as_str()) {
                return false;
            }
        }
        if !self.classes.is_empty() {
            let have: Vec<&str> = get("class").map(|c| c.split_whitespace().collect()).unwrap_or_default();
            if !self.classes.iter().all(|c| have.contains(&c.as_str())) {
                return false;
            }
        }
        for (name, want) in &self.attrs {
            match (get(name), want) {
                (None, _) => return false,
                (Some(_), None) => {}
                (Some(v), Some(w)) => {
                    if v != w {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// A parsed selector: a chain of compounds joined by descendant combinators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    chain: Vec<Compound>,
}

/// Error produced by [`Selector::parse`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorParseError(pub String);

impl std::fmt::Display for SelectorParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad selector: {}", self.0)
    }
}

impl std::error::Error for SelectorParseError {}

impl Selector {
    /// Parse a selector string.
    pub fn parse(s: &str) -> Result<Selector, SelectorParseError> {
        let err = || SelectorParseError(s.to_string());
        let mut chain = Vec::new();
        for part in s.split_whitespace() {
            chain.push(parse_compound(part).ok_or_else(err)?);
        }
        if chain.is_empty() {
            return Err(err());
        }
        Ok(Selector { chain })
    }

    /// Does the element `id` match this selector (with its ancestors
    /// satisfying the leading compounds)?
    pub fn matches(&self, doc: &Document, id: NodeId) -> bool {
        let (last, prefix) = self.chain.split_last().expect("non-empty chain"); // conformance: allow(panic-policy) — the selector parser never yields an empty chain
        if !last.matches(doc, id) {
            return false;
        }
        // Walk ancestors, greedily consuming the prefix right-to-left.
        let mut needed: Vec<&Compound> = prefix.iter().collect();
        let mut current = id;
        while let Some(next_needed) = needed.last() {
            match doc.parent_of(current) {
                Some(parent) => {
                    if next_needed.matches(doc, parent) {
                        needed.pop();
                    }
                    current = parent;
                }
                None => return false,
            }
        }
        true
    }
}

fn parse_compound(s: &str) -> Option<Compound> {
    let mut tag = None;
    let mut id = None;
    let mut classes = Vec::new();
    let mut attrs = Vec::new();

    let bytes = s.as_bytes();
    let mut i = 0;

    // Leading tag or '*'.
    if i < bytes.len() && bytes[i] != b'#' && bytes[i] != b'.' && bytes[i] != b'[' {
        let start = i;
        while i < bytes.len() && bytes[i] != b'#' && bytes[i] != b'.' && bytes[i] != b'[' {
            i += 1;
        }
        let t = &s[start..i];
        if t != "*" {
            if !t.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
                return None;
            }
            tag = Some(t.to_ascii_lowercase());
        }
    }

    while i < bytes.len() {
        match bytes[i] {
            b'#' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'#' && bytes[i] != b'.' && bytes[i] != b'[' {
                    i += 1;
                }
                if start == i {
                    return None;
                }
                id = Some(s[start..i].to_string());
            }
            b'.' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'#' && bytes[i] != b'.' && bytes[i] != b'[' {
                    i += 1;
                }
                if start == i {
                    return None;
                }
                classes.push(s[start..i].to_string());
            }
            b'[' => {
                let close = s[i..].find(']')? + i;
                let inner = &s[i + 1..close];
                if inner.is_empty() {
                    return None;
                }
                match inner.split_once('=') {
                    Some((k, v)) => {
                        let v = v.trim_matches(|c| c == '"' || c == '\'');
                        attrs.push((k.to_ascii_lowercase(), Some(v.to_string())));
                    }
                    None => attrs.push((inner.to_ascii_lowercase(), None)),
                }
                i = close + 1;
            }
            _ => return None,
        }
    }

    Some(Compound { tag, id, classes, attrs })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const PAGE: &str = r#"
      <div id="listings" class="page">
        <div class="offer featured" data-platform="instagram">
          <a href="/offer/1" class="title">IG fashion</a>
          <span class="price">$298</span>
        </div>
        <div class="offer" data-platform="tiktok">
          <a href="/offer/2" class="title">TT memes</a>
          <span class="price">$755</span>
        </div>
        <aside><span class="price">$0 (ad)</span></aside>
      </div>"#;

    #[test]
    fn tag_selector() {
        let doc = parse(PAGE);
        assert_eq!(doc.select(&Selector::parse("a").unwrap()).len(), 2);
    }

    #[test]
    fn class_selector() {
        let doc = parse(PAGE);
        assert_eq!(doc.select(&Selector::parse(".offer").unwrap()).len(), 2);
        assert_eq!(doc.select(&Selector::parse(".offer.featured").unwrap()).len(), 1);
    }

    #[test]
    fn id_selector() {
        let doc = parse(PAGE);
        assert_eq!(doc.select(&Selector::parse("#listings").unwrap()).len(), 1);
        assert_eq!(doc.select(&Selector::parse("div#listings").unwrap()).len(), 1);
    }

    #[test]
    fn attr_selectors() {
        let doc = parse(PAGE);
        assert_eq!(doc.select(&Selector::parse("[data-platform]").unwrap()).len(), 2);
        let tt = doc.select(&Selector::parse(r#"[data-platform=tiktok]"#).unwrap());
        assert_eq!(tt.len(), 1);
        assert!(tt[0].has_class("offer"));
        let quoted = doc.select(&Selector::parse(r#"div[data-platform="instagram"]"#).unwrap());
        assert_eq!(quoted.len(), 1);
    }

    #[test]
    fn descendant_combinator() {
        let doc = parse(PAGE);
        // Prices inside offers only — excludes the aside ad.
        assert_eq!(doc.select(&Selector::parse(".offer .price").unwrap()).len(), 2);
        assert_eq!(doc.select(&Selector::parse("#listings aside span").unwrap()).len(), 1);
        assert_eq!(doc.select(&Selector::parse(".offer aside").unwrap()).len(), 0);
    }

    #[test]
    fn star_matches_any_tag() {
        let doc = parse(PAGE);
        let all = doc.select(&Selector::parse("*").unwrap());
        assert!(all.len() >= 8);
        assert_eq!(doc.select(&Selector::parse("*.price").unwrap()).len(), 3);
    }

    #[test]
    fn element_scoped_select() {
        let doc = parse(PAGE);
        let offers = doc.select(&Selector::parse(".offer").unwrap());
        let price = offers[0].select_first(&Selector::parse(".price").unwrap()).unwrap();
        assert_eq!(price.text(), "$298");
    }

    #[test]
    fn malformed_selectors_rejected() {
        for bad in ["", ".", "#", "div[", "a..b", "d!v"] {
            assert!(Selector::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn deep_descendant_requires_all_ancestors() {
        let doc = parse("<div class=a><div class=b><p>x</p></div></div><div class=b><p>y</p></div>");
        let sel = Selector::parse(".a .b p").unwrap();
        let hits = doc.select(&sel);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].text(), "x");
    }
}
