//! An arena-backed DOM tree with a builder API and a renderer.

use crate::escape::{escape_attr, escape_text};
use crate::select::Selector;

/// Index of a node in its document's arena.
pub type NodeId = usize;

/// Elements that never have children and render without a closing tag.
pub const VOID_ELEMENTS: &[&str] =
    &["br", "hr", "img", "input", "meta", "link", "area", "base", "col", "embed", "source", "wbr"];

/// One DOM node.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// An element: tag name, attributes in source order, child node ids.
    Element {
        /// Tag.
        tag: String,
        /// Attrs.
        attrs: Vec<(String, String)>,
        /// Children.
        children: Vec<NodeId>,
    },
    /// A text node (unescaped content).
    Text(String),
    /// A comment (`<!-- ... -->`).
    Comment(String),
}

/// A parsed or built HTML document.
///
/// Nodes live in an arena; the document root is a virtual element that holds
/// top-level nodes. Use [`Document::select`] to query, [`Document::render`]
/// to serialize.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    root_children: Vec<NodeId>,
}

impl Document {
    /// An empty document.
    pub fn new() -> Document {
        Document { nodes: Vec::new(), root_children: Vec::new() }
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the document holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Top-level node ids.
    pub fn roots(&self) -> &[NodeId] {
        &self.root_children
    }

    pub(crate) fn push_node(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    pub(crate) fn add_root(&mut self, id: NodeId) {
        self.root_children.push(id);
    }

    pub(crate) fn add_child(&mut self, parent: NodeId, child: NodeId) {
        if let Node::Element { children, .. } = &mut self.nodes[parent] {
            children.push(child);
        }
    }

    /// Wrap a node id for ergonomic traversal.
    pub fn element(&self, id: NodeId) -> ElementRef<'_> {
        ElementRef { doc: self, id }
    }

    /// All element ids in depth-first document order.
    pub fn all_elements(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.root_children.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if let Node::Element { children, .. } = &self.nodes[id] {
                out.push(id);
                for &c in children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Elements matching a selector, in document order.
    pub fn select(&self, selector: &Selector) -> Vec<ElementRef<'_>> {
        self.all_elements()
            .into_iter()
            .filter(|&id| selector.matches(self, id))
            .map(|id| self.element(id))
            .collect()
    }

    /// First element matching a selector.
    pub fn select_first(&self, selector: &Selector) -> Option<ElementRef<'_>> {
        self.all_elements()
            .into_iter()
            .find(|&id| selector.matches(self, id))
            .map(|id| self.element(id))
    }

    /// Parent of `id`, if any (linear scan; documents here are page-sized).
    pub fn parent_of(&self, id: NodeId) -> Option<NodeId> {
        self.all_ids_with_children()
            .find(|(_, children)| children.contains(&id))
            .map(|(pid, _)| pid)
    }

    fn all_ids_with_children(&self) -> impl Iterator<Item = (NodeId, Vec<NodeId>)> + '_ {
        self.nodes.iter().enumerate().filter_map(|(i, n)| match n {
            Node::Element { children, .. } => Some((i, children.clone())),
            _ => None,
        })
    }

    /// Serialize the document to HTML.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for &id in &self.root_children {
            self.render_node(id, &mut out);
        }
        out
    }

    fn render_node(&self, id: NodeId, out: &mut String) {
        match &self.nodes[id] {
            Node::Text(t) => out.push_str(&escape_text(t)),
            Node::Comment(c) => {
                out.push_str("<!--");
                out.push_str(c);
                out.push_str("-->");
            }
            Node::Element { tag, attrs, children } => {
                out.push('<');
                out.push_str(tag);
                for (k, v) in attrs {
                    out.push(' ');
                    out.push_str(k);
                    out.push_str("=\"");
                    out.push_str(&escape_attr(v));
                    out.push('"');
                }
                out.push('>');
                if !VOID_ELEMENTS.contains(&tag.as_str()) {
                    for &c in children {
                        self.render_node(c, out);
                    }
                    out.push_str("</");
                    out.push_str(tag);
                    out.push('>');
                }
            }
        }
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::new()
    }
}

/// A borrowed view of an element node.
#[derive(Debug, Clone, Copy)]
pub struct ElementRef<'a> {
    doc: &'a Document,
    id: NodeId,
}

impl<'a> ElementRef<'a> {
    /// The node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Tag name, lowercase.
    pub fn tag(&self) -> &'a str {
        match self.doc.node(self.id) {
            Node::Element { tag, .. } => tag,
            _ => "",
        }
    }

    /// Attribute value by name.
    pub fn attr(&self, name: &str) -> Option<&'a str> {
        match self.doc.node(self.id) {
            Node::Element { attrs, .. } => attrs
                .iter()
                .find(|(k, _)| k.eq_ignore_ascii_case(name))
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Space-separated class list.
    pub fn classes(&self) -> Vec<&'a str> {
        self.attr("class")
            .map(|c| c.split_whitespace().collect())
            .unwrap_or_default()
    }

    /// `true` if the element carries the class.
    pub fn has_class(&self, class: &str) -> bool {
        self.classes().contains(&class)
    }

    /// Child element refs.
    pub fn children(&self) -> Vec<ElementRef<'a>> {
        match self.doc.node(self.id) {
            Node::Element { children, .. } => children
                .iter()
                .filter(|&&c| matches!(self.doc.node(c), Node::Element { .. }))
                .map(|&c| ElementRef { doc: self.doc, id: c })
                .collect(),
            _ => Vec::new(),
        }
    }

    /// Concatenated text content of the subtree, whitespace-normalized.
    pub fn text(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        self.collect_text(self.id, &mut parts);
        parts.join(" ").split_whitespace().collect::<Vec<_>>().join(" ")
    }

    fn collect_text(&self, id: NodeId, out: &mut Vec<String>) {
        match self.doc.node(id) {
            Node::Text(t) => out.push(t.clone()),
            Node::Element { children, .. } => {
                for &c in children {
                    self.collect_text(c, out);
                }
            }
            Node::Comment(_) => {}
        }
    }

    /// Descendant elements matching a selector, in document order.
    pub fn select(&self, selector: &Selector) -> Vec<ElementRef<'a>> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = match self.doc.node(self.id) {
            Node::Element { children, .. } => children.iter().rev().copied().collect(),
            _ => Vec::new(),
        };
        while let Some(id) = stack.pop() {
            if let Node::Element { children, .. } = self.doc.node(id) {
                if selector.matches(self.doc, id) {
                    out.push(ElementRef { doc: self.doc, id });
                }
                for &c in children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// First descendant matching a selector.
    pub fn select_first(&self, selector: &Selector) -> Option<ElementRef<'a>> {
        self.select(selector).into_iter().next()
    }

    /// The document this element belongs to.
    pub fn document(&self) -> &'a Document {
        self.doc
    }
}

/// A fluent builder for constructing documents in marketplace templates.
///
/// ```
/// use acctrade_html::dom::Builder;
///
/// let mut b = Builder::new();
/// b.open("div").attr("class", "offer");
/// b.open("a").attr("href", "/offer/1").text("TikTok 2.1M").close();
/// b.close();
/// let html = b.finish().render();
/// assert!(html.contains("class=\"offer\""));
/// ```
pub struct Builder {
    doc: Document,
    stack: Vec<NodeId>,
}

impl Builder {
    /// Start building an empty document.
    pub fn new() -> Builder {
        Builder { doc: Document::new(), stack: Vec::new() }
    }

    /// Open an element and descend into it.
    pub fn open(&mut self, tag: &str) -> &mut Builder {
        let id = self.doc.push_node(Node::Element {
            tag: tag.to_ascii_lowercase(),
            attrs: Vec::new(),
            children: Vec::new(),
        });
        match self.stack.last() {
            Some(&parent) => self.doc.add_child(parent, id),
            None => self.doc.add_root(id),
        }
        self.stack.push(id);
        self
    }

    /// Set an attribute on the innermost open element.
    pub fn attr(&mut self, name: &str, value: impl Into<String>) -> &mut Builder {
        if let Some(&id) = self.stack.last() {
            if let Node::Element { attrs, .. } = &mut self.doc.nodes[id] {
                attrs.push((name.to_ascii_lowercase(), value.into()));
            }
        }
        self
    }

    /// Append a text node to the innermost open element.
    pub fn text(&mut self, content: impl Into<String>) -> &mut Builder {
        let id = self.doc.push_node(Node::Text(content.into()));
        match self.stack.last() {
            Some(&parent) => self.doc.add_child(parent, id),
            None => self.doc.add_root(id),
        }
        self
    }

    /// Append a comment node.
    pub fn comment(&mut self, content: impl Into<String>) -> &mut Builder {
        let id = self.doc.push_node(Node::Comment(content.into()));
        match self.stack.last() {
            Some(&parent) => self.doc.add_child(parent, id),
            None => self.doc.add_root(id),
        }
        self
    }

    /// Open a void element (no children, self-closing render).
    pub fn void(&mut self, tag: &str) -> &mut Builder {
        self.open(tag).close()
    }

    /// Close the innermost open element.
    pub fn close(&mut self) -> &mut Builder {
        self.stack.pop();
        self
    }

    /// Shorthand: `<tag>text</tag>`.
    pub fn leaf(&mut self, tag: &str, text: &str) -> &mut Builder {
        self.open(tag).text(text).close()
    }

    /// Finish building; closes any still-open elements.
    pub fn finish(mut self) -> Document {
        self.stack.clear();
        self.doc
    }
}

impl Default for Builder {
    fn default() -> Self {
        Builder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_nested_markup() {
        let mut b = Builder::new();
        b.open("ul").attr("id", "offers");
        for i in 0..2 {
            b.open("li").leaf("span", &format!("offer {i}")).close();
        }
        b.close();
        let html = b.finish().render();
        assert_eq!(
            html,
            "<ul id=\"offers\"><li><span>offer 0</span></li><li><span>offer 1</span></li></ul>"
        );
    }

    #[test]
    fn text_is_escaped_on_render() {
        let mut b = Builder::new();
        b.leaf("p", "a < b & c");
        assert_eq!(b.finish().render(), "<p>a &lt; b &amp; c</p>");
    }

    #[test]
    fn void_elements_render_without_closing_tag() {
        let mut b = Builder::new();
        b.open("div").void("br").close();
        assert_eq!(b.finish().render(), "<div><br></div>");
    }

    #[test]
    fn element_text_concatenates_subtree() {
        let mut b = Builder::new();
        b.open("div").text("price: ").leaf("b", "$157").text(" total").close();
        let doc = b.finish();
        let root = doc.element(doc.roots()[0]);
        assert_eq!(root.text(), "price: $157 total");
    }

    #[test]
    fn classes_parse() {
        let mut b = Builder::new();
        b.open("div").attr("class", "offer featured sold").close();
        let doc = b.finish();
        let el = doc.element(doc.roots()[0]);
        assert!(el.has_class("featured"));
        assert!(!el.has_class("off"));
        assert_eq!(el.classes().len(), 3);
    }

    #[test]
    fn unbalanced_builder_is_tolerated() {
        let mut b = Builder::new();
        b.open("div").open("span").text("dangling");
        let doc = b.finish(); // closes implicitly
        assert!(doc.render().contains("dangling"));
    }
}
