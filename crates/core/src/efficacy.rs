//! §8 — Efficacy and abuse control (Table 8).
//!
//! Re-queries every visible account at the end of the study and decodes
//! the platform's response vocabulary: `Forbidden` (banned), the
//! platform's "not found" phrasing (deleted/renamed — conservatively also
//! counted), or a live profile.

use acctrade_crawler::record::{FetchStatus, ProfileRecord};

/// One Table 8 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table8Row {
    /// Platform.
    pub platform: String,
    /// Visible accounts.
    pub visible_accounts: usize,
    /// Inactive accounts.
    pub inactive_accounts: usize,
    /// Blocking efficacy pct.
    pub blocking_efficacy_pct: f64,
}

/// The §8 analysis: per-platform efficacy plus the overall row.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficacyAnalysis {
    /// Rows.
    pub rows: Vec<Table8Row>,
    /// All row.
    pub all_row: Table8Row,
    /// Of the inactive accounts, how many were hard bans (`Forbidden`) vs
    /// not-found (only X distinguishes).
    pub forbidden: usize,
    /// Not found.
    pub not_found: usize,
}

/// Compute Table 8 from the final re-query records.
pub fn analyze(requery: &[ProfileRecord]) -> EfficacyAnalysis {
    let mut rows = Vec::new();
    let (mut total, mut total_inactive) = (0usize, 0usize);
    // Paper order (Table 8): YouTube, Facebook, X, Instagram, TikTok.
    for platform in ["YouTube", "Facebook", "X", "Instagram", "TikTok"] {
        let of_platform: Vec<&ProfileRecord> =
            requery.iter().filter(|p| p.platform == platform).collect();
        let inactive = of_platform.iter().filter(|p| p.status.is_inactive()).count();
        total += of_platform.len();
        total_inactive += inactive;
        rows.push(Table8Row {
            platform: platform.to_string(),
            visible_accounts: of_platform.len(),
            inactive_accounts: inactive,
            blocking_efficacy_pct: 100.0 * inactive as f64 / of_platform.len().max(1) as f64,
        });
    }
    let all_row = Table8Row {
        platform: "All".to_string(),
        visible_accounts: total,
        inactive_accounts: total_inactive,
        blocking_efficacy_pct: 100.0 * total_inactive as f64 / total.max(1) as f64,
    };
    EfficacyAnalysis {
        rows,
        all_row,
        forbidden: requery.iter().filter(|p| p.status == FetchStatus::Forbidden).count(),
        not_found: requery.iter().filter(|p| p.status == FetchStatus::NotFound).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(platform: &str, status: FetchStatus) -> ProfileRecord {
        ProfileRecord {
            platform: platform.into(),
            handle: "h".into(),
            status,
            status_detail: None,
            user_id: None,
            name: None,
            description: None,
            location: None,
            category: None,
            email: None,
            phone: None,
            website: None,
            created_unix: None,
            account_type: None,
            followers: None,
            post_count: None,
        }
    }

    #[test]
    fn per_platform_rates() {
        let requery = vec![
            record("TikTok", FetchStatus::Ok),
            record("TikTok", FetchStatus::NotFound),
            record("X", FetchStatus::Forbidden),
            record("X", FetchStatus::Ok),
            record("X", FetchStatus::Ok),
            record("X", FetchStatus::Ok),
        ];
        let a = analyze(&requery);
        let tt = a.rows.iter().find(|r| r.platform == "TikTok").unwrap();
        assert!((tt.blocking_efficacy_pct - 50.0).abs() < 1e-9);
        let x = a.rows.iter().find(|r| r.platform == "X").unwrap();
        assert!((x.blocking_efficacy_pct - 25.0).abs() < 1e-9);
        assert_eq!(a.all_row.visible_accounts, 6);
        assert_eq!(a.all_row.inactive_accounts, 2);
        assert_eq!(a.forbidden, 1);
        assert_eq!(a.not_found, 1);
    }

    #[test]
    fn errors_do_not_count_as_inactive() {
        let requery = vec![record("X", FetchStatus::Error), record("X", FetchStatus::Ok)];
        let a = analyze(&requery);
        assert_eq!(a.all_row.inactive_accounts, 0);
    }

    #[test]
    fn empty_input() {
        let a = analyze(&[]);
        assert_eq!(a.all_row.visible_accounts, 0);
        assert_eq!(a.all_row.blocking_efficacy_pct, 0.0);
    }
}
