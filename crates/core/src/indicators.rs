//! §9 — evaluating the paper's proposed detection indicators.
//!
//! The paper *recommends* two platform-side indicators without being able
//! to test them; the simulation can. This module deploys both against a
//! generated world and scores them with ground truth:
//!
//! * **referral monitoring** — instrument every platform's public web
//!   host with a [`ReferralMonitor`], simulate buyer browsing sessions
//!   (marketplace offer page → profile click-through, `Referer` set, as
//!   browsers do) mixed with organic traffic, and measure what fraction
//!   of advertised accounts the platform flags;
//! * **rapid-growth detection** — score every visible account's follower
//!   telemetry with the [`RapidGrowthDetector`] and compute
//!   precision/recall against the generator's disposition ground truth
//!   (farmed + scam-operator accounts are the positives).

use acctrade_crawler::record::OfferRecord;
use acctrade_net::client::Client;
use acctrade_net::http::Request;
use acctrade_net::sim::SimNet;
use acctrade_net::url::Url;
use acctrade_social::account::AccountDisposition;
use acctrade_social::detector::{
    telemetry_trajectory, DetectorMetrics, RapidGrowthDetector, ReferralMonitor,
};
use acctrade_social::platform::{Platform, ALL_PLATFORMS};
use acctrade_workload::world::World;
use foundation::rng::IndexedRandom;
use foundation::rng::{RngExt, SeedableRng};
use foundation::rng::ChaCha8Rng;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Outcome of the referral-monitoring experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferralReport {
    /// Buyer click-through sessions simulated.
    pub buyer_sessions: usize,
    /// Organic (non-marketplace) profile visits simulated.
    pub organic_visits: usize,
    /// Advertised visible accounts flagged by at least one referral.
    pub flagged_advertised: usize,
    /// Advertised visible accounts in total.
    pub advertised_total: usize,
    /// Flags on accounts *not* advertised anywhere (false alarms).
    pub flagged_unadvertised: usize,
}

impl ReferralReport {
    /// Fraction of advertised accounts the indicator surfaced.
    pub fn coverage(&self) -> f64 {
        if self.advertised_total == 0 {
            return 0.0;
        }
        self.flagged_advertised as f64 / self.advertised_total as f64
    }
}

/// Deploy referral monitors on every platform web host, replay buyer and
/// organic traffic, and measure coverage.
///
/// `buyer_sessions` buyers each browse one marketplace offer and click
/// through to its profile link with the `Referer` header a real browser
/// sends; `organic_visits` visitors hit random profiles directly.
pub fn evaluate_referral_monitoring(
    world: &World,
    net: &Arc<SimNet>,
    offers: &[OfferRecord],
    buyer_sessions: usize,
    organic_visits: usize,
    seed: u64,
) -> ReferralReport {
    let watchlist: Vec<String> = acctrade_market::config::ALL_MARKETPLACES
        .iter()
        .map(|m| m.host().to_string())
        .collect();
    let monitors: Vec<(Platform, Arc<ReferralMonitor>)> = ALL_PLATFORMS
        .into_iter()
        .map(|p| {
            let monitor = Arc::new(ReferralMonitor::new(watchlist.clone()));
            net.register(p.web_host(), Arc::clone(&monitor));
            (p, monitor)
        })
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0BFE_44A1);
    let client = Client::new(net, "buyer-browser/1.0");

    // Buyer sessions: marketplace offer -> profile click-through.
    let visible: Vec<&OfferRecord> = offers.iter().filter(|o| o.is_visible()).collect();
    let mut sessions_run = 0usize;
    if !visible.is_empty() {
        for _ in 0..buyer_sessions {
            let offer = visible.choose(&mut rng).expect("non-empty"); // conformance: allow(panic-policy) — `visible` is checked non-empty above
            let Some(link) = &offer.profile_link else { continue };
            let Ok(url) = Url::parse(link) else { continue };
            let req = Request::get(url).with_header("referer", offer.offer_url.clone());
            let _ = client.execute(req);
            sessions_run += 1;
        }
    }

    // Organic traffic: direct profile visits, no referer.
    let mut organic_run = 0usize;
    for _ in 0..organic_visits {
        let platform = ALL_PLATFORMS[rng.random_range(0..ALL_PLATFORMS.len())];
        let handle = {
            let store = world.stores[&platform].read();
            let accounts = store.accounts_sorted();
            if accounts.is_empty() {
                continue;
            }
            accounts[rng.random_range(0..accounts.len())].handle.clone()
        };
        let _ = client.get(&format!("http://{}/{}", platform.web_host(), handle));
        organic_run += 1;
    }

    // Score: flagged handles vs advertised handles.
    let advertised: BTreeSet<(Platform, String)> = visible
        .iter()
        .filter_map(|o| {
            let p = o.platform.as_deref().and_then(Platform::parse)?;
            Some((p, o.handle.clone()?))
        })
        .collect();
    let mut flagged_advertised_set: BTreeSet<(Platform, String)> = BTreeSet::new();
    let mut flagged_unadvertised = 0usize;
    for (platform, monitor) in &monitors {
        for handle in monitor.flagged().keys() {
            let key = (*platform, handle.clone());
            if advertised.contains(&key) {
                flagged_advertised_set.insert(key);
            } else {
                flagged_unadvertised += 1;
            }
        }
    }

    ReferralReport {
        buyer_sessions: sessions_run,
        organic_visits: organic_run,
        flagged_advertised: flagged_advertised_set.len(),
        advertised_total: advertised.len(),
        flagged_unadvertised,
    }
}

/// Outcome of the rapid-growth experiment: metrics per threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct GrowthReport {
    /// `(threshold, metrics)` per evaluated operating point.
    pub operating_points: Vec<(f64, DetectorMetrics)>,
    /// Accounts evaluated.
    pub accounts_evaluated: usize,
}

impl GrowthReport {
    /// The operating point with the best F1.
    pub fn best(&self) -> Option<&(f64, DetectorMetrics)> {
        self.operating_points.iter().max_by(|a, b| {
            a.1.f1().total_cmp(&b.1.f1())
        })
    }
}

/// Evaluate the rapid-follower-growth indicator across thresholds.
/// Positives = farmed and scam-operator accounts (the "engagement or
/// account farming" the paper's recommendation targets).
pub fn evaluate_growth_indicator(
    world: &World,
    thresholds: &[f64],
    telemetry_days: u32,
    seed: u64,
) -> GrowthReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x64_0057);
    // Collect (trajectory, is_positive) for every visible account.
    let mut samples: Vec<(acctrade_social::engagement::Trajectory, bool)> = Vec::new();
    for platform in ALL_PLATFORMS {
        let store = world.stores[&platform].read();
        for account in store.accounts_sorted() {
            let positive = matches!(
                account.disposition,
                AccountDisposition::Farmed | AccountDisposition::ScamOperator
            );
            let trajectory = telemetry_trajectory(
                account.disposition,
                account.followers,
                telemetry_days,
                &mut rng,
            );
            samples.push((trajectory, positive));
        }
    }
    let operating_points = thresholds
        .iter()
        .map(|&threshold| {
            let detector = RapidGrowthDetector::new(threshold);
            let mut metrics = DetectorMetrics::default();
            for (trajectory, positive) in &samples {
                metrics.record(detector.flags(trajectory), *positive);
            }
            (threshold, metrics)
        })
        .collect();
    GrowthReport { operating_points, accounts_evaluated: samples.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_crawler::crawl::MarketplaceCrawler;
    use acctrade_market::config::MarketplaceId;
    use acctrade_workload::world::WorldParams;

    fn small_world(seed: u64) -> (World, Arc<SimNet>) {
        let world = World::generate(WorldParams { seed, scale: 0.02 });
        let net = SimNet::new(seed);
        world.deploy(&net);
        (world, net)
    }

    #[test]
    fn referral_monitoring_covers_advertised_accounts() {
        let (world, net) = small_world(61);
        let client = Client::new(&net, "acctrade-crawler/0.1");
        let mut offers = Vec::new();
        for market in [MarketplaceId::Accsmarket, MarketplaceId::FameSwap] {
            let (o, _) = MarketplaceCrawler::new(&client, market).crawl(0);
            offers.extend(o);
        }
        let report = evaluate_referral_monitoring(&world, &net, &offers, 2_000, 300, 61);
        assert!(report.buyer_sessions > 1_900);
        assert!(report.advertised_total > 0);
        // Heavy buyer traffic surfaces most advertised accounts...
        assert!(report.coverage() > 0.5, "coverage {}", report.coverage());
        // ...with zero false alarms: only marketplace referers flag.
        assert_eq!(report.flagged_unadvertised, 0);
    }

    #[test]
    fn growth_indicator_beats_chance_and_sweeps_tradeoff() {
        let (world, _net) = small_world(62);
        let report =
            evaluate_growth_indicator(&world, &[0.05, 0.2, 0.5, 2.0], 180, 62);
        assert!(report.accounts_evaluated > 100);
        let (threshold, best) = report.best().expect("operating points exist");
        assert!(best.f1() > 0.7, "best f1 {} at {threshold}", best.f1());
        // Recall decreases as the threshold rises.
        let recalls: Vec<f64> =
            report.operating_points.iter().map(|(_, m)| m.recall()).collect();
        assert!(
            recalls.windows(2).all(|w| w[1] <= w[0] + 1e-9),
            "recall not monotone: {recalls:?}"
        );
    }
}
