//! The end-to-end study: §3's three modules wired together.
//!
//! [`Study::run`] executes the whole measurement campaign against a
//! generated world:
//!
//! 1. **collect marketplaces** — the world deploys the Table 9 channels
//!    (the 11 public marketplaces with visible handles, the platform
//!    APIs, and the 8 underground forums);
//! 2. **data collection** — the crawl campaign iterates Feb–Jun,
//!    the profile resolver pulls metadata and timelines for every visible
//!    account, and the manual collector walks the underground forums over
//!    Tor;
//! 3. **tracking & analysis** — moderation runs during the window, the
//!    efficacy audit re-queries every visible account, and every analysis
//!    of §§4–8 is computed.

use crate::{anatomy, dynamics, efficacy, network, report, scamposts, setup, underground};
use acctrade_crawler::persist::{
    ApiOutcomeRecord, CampaignCheckpoint, CampaignStore, ShardCursor, CHECKPOINT_SCHEMA,
};
use acctrade_crawler::record::{Dataset, ProfileRecord};
use acctrade_crawler::resolve::ProfileResolver;
use acctrade_crawler::schedule::{
    CampaignProgress, CrawlCampaign, IterationSnapshot, DEFAULT_DAYS_BETWEEN,
};
use acctrade_crawler::underground::UndergroundCollector;
use ::economy::{EconomyConfig, EconomyEvent, EconomySim};
use acctrade_net::client::Client;
use acctrade_net::clock::DAY;
use acctrade_net::transport::Transport;
use acctrade_net::sim::SimNet;
use acctrade_net::tor::TorDirectory;
use acctrade_social::platform::Platform;
use acctrade_workload::world::{World, WorldParams};
use foundation::rng::SeedableRng;
use foundation::rng::ChaCha8Rng;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use store::{RecoveryReport, StoreError};

/// Study configuration.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Seed.
    pub seed: u64,
    /// World scale (1.0 = the paper's 38,253 listings).
    pub scale: f64,
    /// Crawl iterations across the collection window (the paper's
    /// campaign ran ~10 passes over Feb–Jun 2024).
    pub iterations: usize,
    /// Scam-pipeline configuration.
    pub scam: scamposts::ScamPipelineConfig,
}

impl StudyConfig {
    /// A small, fast configuration for tests and the quickstart example.
    pub fn small(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            scale: 0.02,
            iterations: 4,
            scam: scamposts::ScamPipelineConfig::default(),
        }
    }

    /// The full paper-scale configuration.
    pub fn full(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            scale: 1.0,
            iterations: 10,
            scam: scamposts::ScamPipelineConfig::default(),
        }
    }
}

/// Everything the study produces.
pub struct StudyReport {
    /// Config.
    pub config: StudyConfig,
    /// Dataset.
    pub dataset: Dataset,
    /// Table1.
    pub table1: Vec<anatomy::Table1Row>,
    /// Table2.
    pub table2: Vec<anatomy::Table2Row>,
    /// Anatomy.
    pub anatomy: anatomy::AnatomyStats,
    /// Dynamics.
    pub dynamics: dynamics::ListingDynamics,
    /// Table4.
    pub table4: Vec<setup::Table4Row>,
    /// Creation.
    pub creation: setup::CreationCdf,
    /// Setup.
    pub setup: setup::SetupStats,
    /// Scam.
    pub scam: scamposts::ScamAnalysis,
    /// Network.
    pub network: network::NetworkAnalysis,
    /// Efficacy.
    pub efficacy: efficacy::EfficacyAnalysis,
    /// Underground.
    pub underground: underground::UndergroundAnalysis,
    /// Requests the campaign issued on the fabric.
    pub requests_issued: usize,
    /// Virtual days the campaign spanned.
    pub campaign_days: f64,
    /// Run-provenance manifest: per-stage timings, crawl/API tallies,
    /// counters (exported as `TELEMETRY_report.json`).
    pub telemetry: telemetry::RunManifest,
    /// What store recovery salvaged, when this report came out of
    /// [`Study::resume_from`] (`None` on uninterrupted runs).
    pub recovery: Option<RecoveryReport>,
    /// Economy analysis (E1–E3 + payment reconciliation), when the
    /// study ran with [`Study::with_economy`]; `None` otherwise.
    pub economy: Option<crate::economy::EconomyAnalysis>,
    /// The economy's full event stream (empty when disabled) — the
    /// replayable provenance behind [`StudyReport::economy`], exported
    /// by the quickstart as `ECONOMY_events.jsonl`.
    pub economy_events: Vec<EconomyEvent>,
    /// Repricings the crawler observed on re-visited offers (only ever
    /// non-zero when a live economy repriced listings between passes).
    pub price_observations: usize,
}

impl StudyReport {
    /// Render every table and figure as one text report.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&report::render_figure1());
        out.push('\n');
        out.push_str(&report::render_table1(&self.table1));
        out.push('\n');
        out.push_str(&report::render_table2(&self.table2));
        out.push('\n');
        out.push_str(&report::render_table3());
        out.push('\n');
        out.push_str(&report::render_anatomy(&self.anatomy));
        out.push('\n');
        out.push_str(&report::render_figure2(&self.dynamics));
        out.push('\n');
        out.push_str(&report::render_figure3(anatomy::figure3_outlier(&self.dataset.offers)));
        out.push('\n');
        out.push_str(&report::render_underground(&self.underground));
        out.push('\n');
        out.push_str(&report::render_table4(&self.table4));
        out.push('\n');
        out.push_str(&report::render_figure4(&self.creation));
        out.push('\n');
        out.push_str(&report::render_setup(&self.setup));
        out.push('\n');
        out.push_str(&report::render_table5(&self.scam));
        out.push('\n');
        out.push_str(&report::render_table6(&self.scam));
        out.push('\n');
        out.push_str(&report::render_table7(&self.network));
        out.push('\n');
        out.push_str(&report::render_figure5(&self.network));
        out.push('\n');
        out.push_str(&report::render_table8(&self.efficacy));
        out.push('\n');
        out.push_str(&report::render_table9());
        out.push('\n');
        out.push_str(&crate::payments_security::render_appendix_a());
        if let Some(economy) = &self.economy {
            out.push('\n');
            out.push_str(&economy.render());
        }
        out
    }
}

/// The study driver.
///
/// ```no_run
/// use acctrade_core::study::{Study, StudyConfig};
///
/// // A fast 2%-scale pass; StudyConfig::full(seed) reproduces the paper.
/// let report = Study::new(StudyConfig::small(42)).run();
/// println!("{}", report.render_all());
/// assert!(report.scam.total_scam_posts > 0);
/// ```
pub struct Study {
    /// Config.
    pub config: StudyConfig,
    /// Worker threads for the sharded crawl engine (default 1). Not
    /// part of [`StudyConfig`] on purpose: any worker count produces
    /// byte-identical artifacts, so it must not perturb the config
    /// digest a resume validates against — a campaign started at
    /// `--workers 1` may legitimately resume at `--workers 8`.
    pub workers: usize,
    /// Pluggable request transport for the crawler and API clients
    /// (default `None` = the native sim fabric). Like `workers`, not
    /// part of [`StudyConfig`]: a loopback run is a different *wire*,
    /// not a different study. The underground (Tor) collection always
    /// runs on the fabric — the loopback server speaks clearnet HTTP
    /// only.
    pub transport: Option<Arc<dyn Transport>>,
    /// Optional live economy (default `None` = the static seed world).
    /// Like `workers` and `transport`, deliberately not part of
    /// [`StudyConfig`]: with no economy attached every artifact is
    /// byte-identical to the pre-economy pipeline, so the config digest
    /// a resume validates against must not change. The scenario *is*
    /// recorded in the checkpoint (`economy_scenario`) so a resumed run
    /// rebuilds the same economy.
    pub economy: Option<EconomyConfig>,
}

impl Study {
    /// Create a study.
    pub fn new(config: StudyConfig) -> Study {
        Study { config, workers: 1, transport: None, economy: None }
    }

    /// Attach an economy scenario (builder style): escrow order flow,
    /// price trajectories, and bot-operated inventory run between crawl
    /// passes, and the report gains the E1–E3 tables.
    pub fn with_economy(mut self, economy: EconomyConfig) -> Study {
        self.economy = Some(economy);
        self
    }

    /// The attached economy scenario's name, or `""` when disabled
    /// (the checkpoint encoding of "no economy").
    pub fn economy_scenario(&self) -> &'static str {
        self.economy.as_ref().map(|c| c.name).unwrap_or("")
    }

    /// Set the crawl-engine worker count (builder style).
    pub fn with_workers(mut self, workers: usize) -> Study {
        self.workers = workers.max(1);
        self
    }

    /// Route the crawler and profile-resolver clients through a
    /// [`Transport`] (builder style) — e.g. `acctrade-httpd`'s loopback
    /// TCP. The transport's mode name is recorded in telemetry as the
    /// run's `transport_mode` event for provenance.
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Study {
        self.transport = Some(transport);
        self
    }

    /// The installed transport's mode, or "sim".
    pub fn transport_mode(&self) -> &'static str {
        self.transport.as_deref().map(Transport::mode).unwrap_or("sim")
    }

    /// Apply the study's transport (if any) to a client.
    fn outfit(&self, client: Client) -> Client {
        match &self.transport {
            Some(t) => client.with_transport(Arc::clone(t)),
            None => client,
        }
    }

    /// Run the full pipeline. This generates the world internally; use
    /// [`Study::run_on`] to measure a pre-built world.
    pub fn run(&self) -> StudyReport {
        let mut world = World::generate(WorldParams {
            seed: self.config.seed,
            scale: self.config.scale,
        });
        self.run_on(&mut world)
    }

    /// Run the pipeline against an existing world.
    ///
    /// The run is instrumented end-to-end: if the caller has already
    /// scoped a [`telemetry::Recorder`], the study records into it;
    /// otherwise it creates its own. Either way the resulting
    /// [`telemetry::RunManifest`] lands in [`StudyReport::telemetry`].
    pub fn run_on(&self, world: &mut World) -> StudyReport {
        self.run_on_store(world, None, None, None)
            .expect("in-memory study cannot fail") // conformance: allow(panic-policy) — no store and no kill hook: infallible by construction
            .expect("no kill was requested")
    }

    /// Run the full pipeline, streaming every dataset record into a
    /// durable store at `store_dir` with per-iteration checkpoints.
    ///
    /// A process that dies mid-campaign leaves behind a WAL plus a
    /// checkpoint from which [`Study::resume_from`] continues the run —
    /// producing a byte-identical dataset and telemetry manifest versus
    /// an uninterrupted run of the same seed.
    pub fn run_persisted(&self, store_dir: &Path) -> Result<StudyReport, StoreError> {
        let mut world = World::generate(WorldParams {
            seed: self.config.seed,
            scale: self.config.scale,
        });
        let mut store = CampaignStore::create(store_dir)?;
        Ok(self
            .run_on_store(&mut world, Some(&mut store), None, None)?
            .expect("no kill was requested")) // conformance: allow(panic-policy) — no kill hook was passed
    }

    /// [`Study::run_persisted`], but stop (simulating a crash) once
    /// `kill_after_iterations` campaign iterations have completed and
    /// checkpointed. Returns `Ok(None)` when the kill fired; `Ok(Some)`
    /// when the whole study finished first.
    pub fn run_persisted_with_kill(
        &self,
        store_dir: &Path,
        kill_after_iterations: usize,
    ) -> Result<Option<StudyReport>, StoreError> {
        let mut world = World::generate(WorldParams {
            seed: self.config.seed,
            scale: self.config.scale,
        });
        let mut store = CampaignStore::create(store_dir)?;
        self.run_on_store(&mut world, Some(&mut store), Some(kill_after_iterations), None)
    }

    /// [`Study::run_persisted`], but simulate a process death *inside*
    /// the parallel crawl phase: during campaign iteration `iteration`,
    /// the engine stops after `after_shards` shard completions and the
    /// run aborts with nothing of that iteration persisted (the WAL and
    /// checkpoint still describe the previous iteration boundary).
    /// Returns `Ok(None)` when the kill fired; `Ok(Some)` if the run
    /// finished before reaching it.
    pub fn run_persisted_with_shard_kill(
        &self,
        store_dir: &Path,
        iteration: usize,
        after_shards: usize,
    ) -> Result<Option<StudyReport>, StoreError> {
        let mut world = World::generate(WorldParams {
            seed: self.config.seed,
            scale: self.config.scale,
        });
        let mut store = CampaignStore::create(store_dir)?;
        self.run_on_store(&mut world, Some(&mut store), None, Some((iteration, after_shards)))
    }

    /// Resume an interrupted persisted study from `store_dir`.
    ///
    /// Recovery first (on the *ambient* telemetry recorder): the WAL is
    /// replayed, torn tails truncated, uncommitted records rolled back.
    /// Then the run is rebuilt exactly — world regenerated and stepped
    /// through the checkpointed evolution timestamps, virtual clock and
    /// fabric RNG seeked to their checkpointed positions, telemetry
    /// restored from its snapshot — and the campaign continues at the
    /// checkpointed iteration as if never interrupted.
    pub fn resume_from(config: StudyConfig, store_dir: &Path) -> Result<StudyReport, StoreError> {
        Study::resume_from_with_workers(config, store_dir, 1)
    }

    /// [`Study::resume_from`] with an explicit crawl-engine worker
    /// count. The count need not match the interrupted run's — any
    /// combination converges on byte-identical artifacts.
    pub fn resume_from_with_workers(
        config: StudyConfig,
        store_dir: &Path,
        workers: usize,
    ) -> Result<StudyReport, StoreError> {
        let (mut store, cp, wal, recovery) = CampaignStore::open_resume(store_dir)?;
        if cp.complete {
            return Err(StoreError::Invalid(
                "checkpoint marks the study complete; nothing to resume".into(),
            ));
        }
        if cp.seed != config.seed {
            return Err(StoreError::Invalid(format!(
                "checkpoint seed {} does not match config seed {}",
                cp.seed, config.seed
            )));
        }
        let config_digest = telemetry::digest64(&format!("{:?}", config));
        if cp.config_digest != config_digest {
            return Err(StoreError::Invalid(format!(
                "checkpoint config digest {} does not match config digest {config_digest}",
                cp.config_digest
            )));
        }

        // The economy scenario rides in the checkpoint, not the config:
        // a resume must rebuild exactly the economy the interrupted run
        // was simulating.
        let economy_cfg = if cp.economy_scenario.is_empty() {
            None
        } else {
            match EconomyConfig::scenario(&cp.economy_scenario) {
                Some(cfg) => Some(cfg),
                None => {
                    return Err(StoreError::Invalid(format!(
                        "checkpoint names unknown economy scenario {:?}",
                        cp.economy_scenario
                    )))
                }
            }
        };
        let mut study = Study::new(config).with_workers(workers);
        study.economy = economy_cfg.clone();

        // Rebuild the simulation silently: deploy and world evolution were
        // already recorded before the interruption; re-recording them would
        // diverge from an uninterrupted run.
        let mut world;
        let net;
        let mut sim;
        {
            let quiet = telemetry::Recorder::disabled();
            let _gag = quiet.enter();
            world = World::generate(WorldParams { seed: config.seed, scale: config.scale });
            net = SimNet::new(config.seed);
            world.deploy(&net);
            // The economy replays the same schedule the live run walked:
            // primed at t0, advanced at every inter-iteration step.
            sim = economy_cfg.map(|cfg| {
                let mut sim = EconomySim::new(config.seed, config.scale, cfg);
                sim.prime(&mut world, cp.t0_unix);
                sim
            });
            for &at in &cp.step_unixes {
                world.step_iteration(at);
                if let Some(sim) = sim.as_mut() {
                    sim.advance_to(&mut world, at);
                }
            }
            net.clock().advance_to(cp.clock_us);
            net.set_rng_word_position(cp.net_rng_words);
        }
        if let Some(sim) = sim.as_mut() {
            // Integrity gate: the deterministic rebuild must reproduce
            // the committed WAL stream event for event, or the store
            // does not describe this seed/scenario.
            if wal.economy_events.as_slice() != sim.events() {
                return Err(StoreError::Invalid(format!(
                    "economy event stream mismatch on resume: WAL committed {} events, \
                     rebuild produced {}",
                    wal.economy_events.len(),
                    sim.events().len()
                )));
            }
            sim.mark_all_persisted();
        }

        let rec = telemetry::Recorder::from_snapshot(&cp.telemetry);
        rec.set_virtual_clock(Arc::new(net.clock().clone()));
        let _scope = rec.enter();

        let ctx = PersistCtx {
            config_digest,
            iterations: cp.iterations_total,
            days_between: cp.days_between,
            t0_unix: cp.t0_unix,
            campaign_started_us: cp.campaign_started_us,
            requests_base: cp.requests_issued,
            kill_after: None,
            shard_kill: None,
        };
        // The re-visit comparison basis is rebuilt the way the live run
        // built it: first parsed price per offer, then every committed
        // observation applied in stream order.
        let mut last_price: BTreeMap<String, f64> = BTreeMap::new();
        for offer in &wal.dataset.offers {
            if let Some(price) = offer.price_usd {
                last_price.insert(offer.offer_url.clone(), price);
            }
        }
        for obs in &wal.price_obs {
            last_price.insert(obs.offer_url.clone(), obs.price_usd);
        }
        let mut progress = CampaignProgress {
            seen: wal.dataset.offers.iter().map(|o| o.offer_url.clone()).collect(),
            offers: wal.dataset.offers,
            snapshots: cp.snapshots,
            next_iteration: cp.next_iteration,
            step_unixes: cp.step_unixes,
            shard_cursors: cp.shard_cursors,
            price_obs: wal.price_obs,
            last_price,
        };
        {
            // Re-open the interrupted `crawl_campaign` span at its original
            // virtual start, so the resumed manifest reports the same stage.
            let _stage = rec.span_starting_at("crawl_campaign", cp.campaign_started_us);
            study.run_campaign_segment(
                &mut world,
                &net,
                &rec,
                &mut progress,
                &mut store,
                sim.as_mut(),
                &ctx,
            )?;
        }

        let dataset =
            Dataset { offers: std::mem::take(&mut progress.offers), ..Dataset::default() };
        let outcome = CampaignOutcome {
            dataset,
            snapshots: progress.snapshots,
            step_unixes: progress.step_unixes,
            shard_cursors: progress.shard_cursors,
            economy_events: sim.map(|s| s.events().to_vec()).unwrap_or_default(),
            price_observations: progress.price_obs.len(),
            recovery: Some(recovery),
        };
        study.finish(&mut world, &net, &rec, Some(&mut store), outcome, &ctx)
    }

    /// The shared engine behind [`Study::run_on`], [`Study::run_persisted`]
    /// and [`Study::run_persisted_with_kill`]: deploy, campaign (with
    /// optional persistence and crash injection), then the shared tail.
    /// Returns `Ok(None)` when a requested kill fired mid-campaign.
    fn run_on_store(
        &self,
        world: &mut World,
        mut store: Option<&mut CampaignStore>,
        kill_after: Option<usize>,
        shard_kill: Option<(usize, usize)>,
    ) -> Result<Option<StudyReport>, StoreError> {
        // Resolve the recorder before touching the fabric so
        // `SimNet::with_clock` installs the virtual clock into it.
        let current = telemetry::recorder();
        let rec = if current.is_enabled() { current } else { telemetry::Recorder::new() };
        let _scope = rec.enter();

        let net = SimNet::new(self.config.seed);
        {
            let _stage = telemetry::span("deploy");
            world.deploy(&net);
        }
        rec.event("transport_mode", self.transport_mode());
        let t0 = net.clock().now_unix();

        // The economy primes right after deploy — bot sellers register
        // and the engines schedule their first actions at t0 — so the
        // first crawl pass already sees the operated market.
        let mut sim = self.economy.clone().map(|cfg| {
            let mut sim = EconomySim::new(self.config.seed, self.config.scale, cfg);
            sim.prime(world, t0);
            sim
        });

        let mut ctx = PersistCtx {
            config_digest: telemetry::digest64(&format!("{:?}", self.config)),
            iterations: self.config.iterations.max(1),
            days_between: DEFAULT_DAYS_BETWEEN,
            t0_unix: t0,
            campaign_started_us: 0,
            requests_base: 0,
            kill_after,
            shard_kill,
        };

        // -- Module 2a: the public-marketplace crawl campaign.
        let mut progress = CampaignProgress::default();
        ctx.campaign_started_us = rec.virtual_now();
        {
            let _stage = telemetry::span("crawl_campaign");
            if let Some(s) = store.as_deref_mut() {
                self.run_campaign_segment(world, &net, &rec, &mut progress, s, sim.as_mut(), &ctx)?;
            } else {
                let crawler_client = self
                    .outfit(Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0));
                let mut campaign = CrawlCampaign::new(&crawler_client);
                campaign.days_between = ctx.days_between;
                campaign.workers = self.workers;
                campaign.shard_kill = ctx.shard_kill;
                campaign
                    .run_resumable(world, ctx.iterations, &mut progress, None, sim.as_mut(), |_, _| {
                        Ok(true)
                    })
                    .map_err(StoreError::Io)?;
            }
        }
        if progress.next_iteration < ctx.iterations {
            // The injected kill fired; the checkpoint and WAL are on disk.
            return Ok(None);
        }

        let dataset =
            Dataset { offers: std::mem::take(&mut progress.offers), ..Dataset::default() };
        let outcome = CampaignOutcome {
            dataset,
            snapshots: progress.snapshots,
            step_unixes: progress.step_unixes,
            shard_cursors: progress.shard_cursors,
            economy_events: sim.map(|s| s.events().to_vec()).unwrap_or_default(),
            price_observations: progress.price_obs.len(),
            recovery: None,
        };
        self.finish(world, &net, &rec, store, outcome, &ctx).map(Some)
    }

    /// Run (or continue) the crawl campaign against a durable store,
    /// checkpointing after every iteration and honouring `ctx.kill_after`.
    #[allow(clippy::too_many_arguments)]
    fn run_campaign_segment(
        &self,
        world: &mut World,
        net: &std::sync::Arc<SimNet>,
        rec: &telemetry::Recorder,
        progress: &mut CampaignProgress,
        store: &mut CampaignStore,
        economy: Option<&mut EconomySim>,
        ctx: &PersistCtx,
    ) -> Result<(), StoreError> {
        let crawler_client =
            self.outfit(Client::new(net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0));
        let mut campaign = CrawlCampaign::new(&crawler_client);
        campaign.days_between = ctx.days_between;
        campaign.workers = self.workers;
        campaign.shard_kill = ctx.shard_kill;
        campaign
            .run_resumable(world, ctx.iterations, progress, Some(store), economy, |progress, store| {
                if let Some(s) = store {
                    let cp = self.make_checkpoint(
                        net,
                        rec,
                        s,
                        ctx,
                        progress.next_iteration,
                        &progress.snapshots,
                        &progress.step_unixes,
                        &progress.shard_cursors,
                        false,
                    );
                    s.write_checkpoint(&cp)?;
                }
                Ok(ctx.kill_after.is_none_or(|k| progress.next_iteration < k))
            })
            .map_err(StoreError::Io)
    }

    /// Build a checkpoint capturing the run's entire resumable state.
    #[allow(clippy::too_many_arguments)]
    fn make_checkpoint(
        &self,
        net: &std::sync::Arc<SimNet>,
        rec: &telemetry::Recorder,
        store: &CampaignStore,
        ctx: &PersistCtx,
        next_iteration: usize,
        snapshots: &[IterationSnapshot],
        step_unixes: &[i64],
        shard_cursors: &[ShardCursor],
        complete: bool,
    ) -> CampaignCheckpoint {
        CampaignCheckpoint {
            schema: CHECKPOINT_SCHEMA.to_string(),
            seed: self.config.seed,
            config_digest: ctx.config_digest.clone(),
            iterations_total: ctx.iterations,
            next_iteration,
            days_between: ctx.days_between,
            t0_unix: ctx.t0_unix,
            campaign_started_us: ctx.campaign_started_us,
            clock_us: net.clock().now_us(),
            net_rng_words: net.rng_word_position(),
            requests_issued: ctx.requests_base + net.request_count(),
            committed_records: store.total_records(),
            segment_max_bytes: store.segment_max_bytes(),
            step_unixes: step_unixes.to_vec(),
            snapshots: snapshots.to_vec(),
            shard_cursors: shard_cursors.to_vec(),
            telemetry: rec.snapshot(),
            economy_scenario: self.economy_scenario().to_string(),
            complete,
        }
    }

    /// Everything after the crawl campaign: resolution, underground
    /// collection, moderation, the §8 re-query, the analyses, the
    /// manifest, and — on persisted runs — the final complete checkpoint.
    fn finish(
        &self,
        world: &mut World,
        net: &std::sync::Arc<SimNet>,
        rec: &telemetry::Recorder,
        mut store: Option<&mut CampaignStore>,
        outcome: CampaignOutcome,
        ctx: &PersistCtx,
    ) -> Result<StudyReport, StoreError> {
        let CampaignOutcome {
            mut dataset,
            snapshots,
            step_unixes,
            shard_cursors,
            economy_events,
            price_observations,
            recovery,
        } = outcome;

        // -- Module 2b: profile metadata + timelines for visible accounts.
        let api_client = self.outfit(Client::new(net, "acctrade-pipeline/0.1"));
        let resolver = ProfileResolver::new(&api_client);
        {
            let _stage = telemetry::span("resolve_profiles");
            let (profiles, posts) =
                resolver.resolve_offers_into(&dataset.offers, store.as_deref_mut())?;
            dataset.profiles = profiles;
            dataset.posts = posts;
        }

        // -- Module 2c: manual underground collection over Tor.
        {
            let _stage = telemetry::span("underground_collection");
            let directory = TorDirectory::default_consensus();
            let mut tor_rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x70C0_11EC);
            // Every inspected market is visited — including the two that
            // turn out to sell nothing (the paper did the same; their
            // emptiness is itself a §4.2 finding).
            for forum in &world.forums {
                let cfg = forum.config();
                let operator = Client::new(net, "tor-browser/13")
                    .manual(self.config.seed ^ cfg.id as u64)
                    .via_tor(directory.build_circuit(&mut tor_rng));
                let collector =
                    UndergroundCollector::new(&operator, cfg.host.clone(), cfg.name);
                let (records, _stats) = collector.collect();
                for record in records {
                    if let Some(s) = store.as_deref_mut() {
                        s.append_underground(&record)?;
                    }
                    dataset.underground.push(record);
                }
            }
        }

        // -- Module 3: moderation acts during the window; the audit
        //    re-queries at the end.
        {
            let _stage = telemetry::span("moderation");
            net.clock().advance(20 * DAY);
            world.run_moderation(net.clock().now_unix());
        }
        let requery: Vec<ProfileRecord> = {
            let _stage = telemetry::span("efficacy_requery");
            let mut requery = Vec::with_capacity(dataset.profiles.len());
            for p in &dataset.profiles {
                let record = resolver
                    .resolve(Platform::parse(&p.platform).expect("known platform"), &p.handle); // conformance: allow(panic-policy) — dataset platforms come from Platform::name
                if let Some(s) = store.as_deref_mut() {
                    s.append_api_outcome(&ApiOutcomeRecord {
                        platform: record.platform.clone(),
                        handle: record.handle.clone(),
                        status: record.status,
                        at_unix: net.clock().now_unix(),
                    })?;
                }
                requery.push(record);
            }
            requery
        };

        // -- Analyses.
        let _stage = telemetry::span("analysis");
        let table1 = anatomy::table1(&dataset.offers);
        let mut visible_and_posts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for p in &dataset.profiles {
            visible_and_posts.entry(p.platform.clone()).or_default().0 += 1;
        }
        for p in &dataset.posts {
            visible_and_posts.entry(p.platform.clone()).or_default().1 += 1;
        }
        let table2 = anatomy::table2(&dataset.offers, &visible_and_posts);
        let anatomy_stats = anatomy::anatomy_stats(&dataset.offers);
        let listing_dynamics = dynamics::ListingDynamics::from_snapshots(&snapshots);
        let table4 = setup::table4(&dataset.profiles);
        let creation = setup::creation_cdf(&dataset.profiles);
        let setup_stats = setup::setup_stats(&dataset.profiles);
        let scam = scamposts::analyze(&dataset.posts, self.config.scam);
        let network_analysis = network::analyze(&dataset.profiles);
        let efficacy_analysis = efficacy::analyze(&requery);
        let underground_analysis = underground::analyze(&dataset.underground);
        let campaign_days = (net.clock().now_unix() - ctx.t0_unix) as f64 / 86_400.0;
        let economy_analysis = match &self.economy {
            Some(cfg) => Some(
                crate::economy::analyze(
                    cfg.name,
                    &economy_events,
                    world,
                    ctx.t0_unix,
                    campaign_days,
                )
                .map_err(StoreError::Invalid)?,
            ),
            None => None,
        };
        drop(_stage); // close the analysis span before exporting stages

        let manifest = rec.manifest("study", self.config.seed, &ctx.config_digest);

        // Persisted runs end with a durable sync and a `complete`
        // checkpoint, so a finished store is never mistaken for an
        // interrupted one.
        if let Some(s) = store {
            s.sync()?;
            let cp = self.make_checkpoint(
                net,
                rec,
                s,
                ctx,
                ctx.iterations,
                &snapshots,
                &step_unixes,
                &shard_cursors,
                true,
            );
            s.write_checkpoint(&cp)?;
        }

        Ok(StudyReport {
            config: self.config,
            dataset,
            table1,
            table2,
            anatomy: anatomy_stats,
            dynamics: listing_dynamics,
            table4,
            creation,
            setup: setup_stats,
            scam,
            network: network_analysis,
            efficacy: efficacy_analysis,
            underground: underground_analysis,
            requests_issued: ctx.requests_base + net.request_count(),
            campaign_days,
            telemetry: manifest,
            recovery,
            economy: economy_analysis,
            economy_events,
            price_observations,
        })
    }
}

/// Context shared by every phase of a (possibly persisted) run.
struct PersistCtx {
    /// Digest of the study configuration.
    config_digest: String,
    /// Campaign iterations (`config.iterations.max(1)`).
    iterations: usize,
    /// Virtual days between iterations.
    days_between: u64,
    /// Virtual unix time right after deploy (campaign_days basis).
    t0_unix: i64,
    /// Virtual µs when the `crawl_campaign` stage opened.
    campaign_started_us: u64,
    /// Requests issued before this process took over (resume only).
    requests_base: usize,
    /// Crash injection: stop after this many completed iterations.
    kill_after: Option<usize>,
    /// Crash injection inside the parallel phase: abort during
    /// iteration `.0` once `.1` shards completed.
    shard_kill: Option<(usize, usize)>,
}

/// What the campaign phase hands to the shared tail.
struct CampaignOutcome {
    dataset: Dataset,
    snapshots: Vec<IterationSnapshot>,
    step_unixes: Vec<i64>,
    shard_cursors: Vec<ShardCursor>,
    economy_events: Vec<EconomyEvent>,
    price_observations: usize,
    recovery: Option<RecoveryReport>,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared small-study run (building it is the expensive part).
    fn run_small() -> StudyReport {
        Study::new(StudyConfig::small(1234)).run()
    }

    #[test]
    fn small_study_end_to_end() {
        let report = run_small();

        // Table 1: all marketplaces present, counts at ~2% scale.
        assert_eq!(report.table1.len(), 11);
        let total: usize = report.table1.iter().map(|r| r.accounts).sum();
        assert!((500..1_100).contains(&total), "total offers {total}");
        let hidden = report.table1.iter().filter(|r| r.sellers.is_none()).count();
        assert_eq!(hidden, 5, "five marketplaces hide sellers");

        // Table 2: visible ~29% of all.
        let vis: usize = report.table2.iter().map(|r| r.visible_accounts).sum();
        let all: usize = report.table2.iter().map(|r| r.all_accounts).sum();
        let frac = vis as f64 / all as f64;
        assert!((0.2..0.45).contains(&frac), "visible fraction {frac}");

        // Figure 2 shape.
        assert!(report.dynamics.cumulative_monotone());
        assert!(report.dynamics.final_gap() > 0);

        // Figure 4 anchors.
        assert!((0.15..0.45).contains(&report.creation.pre_2020));

        // Table 5/6: scams found.
        assert!(report.scam.total_scam_posts > 0);
        assert!(report.scam.scam_cluster_count >= 3);

        // Table 7: some clusters, low overall percentage.
        assert!(report.network.all_row.clusters > 0);
        assert!(report.network.all_row.clustered_pct < 25.0);

        // Table 8: overall efficacy in the paper's band.
        let eff = report.efficacy.all_row.blocking_efficacy_pct;
        assert!((10.0..32.0).contains(&eff), "efficacy {eff}");

        // Underground: 65 posts collected minus caps.
        assert!(report.underground.total_posts >= 40);
        assert!(!report.underground.reuse_pairs.is_empty());

        // The report renders every table.
        let text = report.render_all();
        for needle in [
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7",
            "Table 8", "Table 9", "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "Section 4.1", "Section 4.2", "Section 5", "Appendix A",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }

        // The campaign consumed virtual time and issued real requests.
        assert!(report.campaign_days > 30.0);
        assert!(report.requests_issued > 1_000);

        // The run manifest is well-formed and carries the provenance the
        // paper's credibility rests on.
        assert!(report.telemetry.validate().is_ok());
        let stage_names: Vec<&str> =
            report.telemetry.stages.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "deploy",
            "crawl_campaign",
            "resolve_profiles",
            "underground_collection",
            "moderation",
            "efficacy_requery",
            "analysis",
        ] {
            assert!(stage_names.contains(&stage), "missing stage {stage}");
        }
        assert_eq!(report.telemetry.crawl.len(), 11, "one crawl row per marketplace");
        assert!(!report.telemetry.api.is_empty(), "API outcome tallies recorded");
        let manifest_pages: u64 = report.telemetry.crawl.iter().map(|c| c.pages).sum();
        assert!(manifest_pages > 0);
    }

    #[test]
    fn study_is_deterministic() {
        let a = Study::new(StudyConfig::small(77)).run();
        let b = Study::new(StudyConfig::small(77)).run();
        assert_eq!(a.dataset.offers.len(), b.dataset.offers.len());
        assert_eq!(a.scam.total_scam_posts, b.scam.total_scam_posts);
        assert_eq!(
            a.efficacy.all_row.inactive_accounts,
            b.efficacy.all_row.inactive_accounts
        );
        assert_eq!(a.render_all(), b.render_all());
    }
}
