//! The end-to-end study: §3's three modules wired together.
//!
//! [`Study::run`] executes the whole measurement campaign against a
//! generated world:
//!
//! 1. **collect marketplaces** — the world deploys the Table 9 channels
//!    (the 11 public marketplaces with visible handles, the platform
//!    APIs, and the 8 underground forums);
//! 2. **data collection** — the crawl campaign iterates Feb–Jun,
//!    the profile resolver pulls metadata and timelines for every visible
//!    account, and the manual collector walks the underground forums over
//!    Tor;
//! 3. **tracking & analysis** — moderation runs during the window, the
//!    efficacy audit re-queries every visible account, and every analysis
//!    of §§4–8 is computed.

use crate::{anatomy, dynamics, efficacy, network, report, scamposts, setup, underground};
use acctrade_crawler::record::{Dataset, ProfileRecord};
use acctrade_crawler::resolve::ProfileResolver;
use acctrade_crawler::schedule::CrawlCampaign;
use acctrade_crawler::underground::UndergroundCollector;
use acctrade_net::client::Client;
use acctrade_net::clock::DAY;
use acctrade_net::sim::SimNet;
use acctrade_net::tor::TorDirectory;
use acctrade_social::platform::Platform;
use acctrade_workload::world::{World, WorldParams};
use foundation::rng::SeedableRng;
use foundation::rng::ChaCha8Rng;
use std::collections::BTreeMap;

/// Study configuration.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Seed.
    pub seed: u64,
    /// World scale (1.0 = the paper's 38,253 listings).
    pub scale: f64,
    /// Crawl iterations across the collection window (the paper's
    /// campaign ran ~10 passes over Feb–Jun 2024).
    pub iterations: usize,
    /// Scam-pipeline configuration.
    pub scam: scamposts::ScamPipelineConfig,
}

impl StudyConfig {
    /// A small, fast configuration for tests and the quickstart example.
    pub fn small(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            scale: 0.02,
            iterations: 4,
            scam: scamposts::ScamPipelineConfig::default(),
        }
    }

    /// The full paper-scale configuration.
    pub fn full(seed: u64) -> StudyConfig {
        StudyConfig {
            seed,
            scale: 1.0,
            iterations: 10,
            scam: scamposts::ScamPipelineConfig::default(),
        }
    }
}

/// Everything the study produces.
pub struct StudyReport {
    /// Config.
    pub config: StudyConfig,
    /// Dataset.
    pub dataset: Dataset,
    /// Table1.
    pub table1: Vec<anatomy::Table1Row>,
    /// Table2.
    pub table2: Vec<anatomy::Table2Row>,
    /// Anatomy.
    pub anatomy: anatomy::AnatomyStats,
    /// Dynamics.
    pub dynamics: dynamics::ListingDynamics,
    /// Table4.
    pub table4: Vec<setup::Table4Row>,
    /// Creation.
    pub creation: setup::CreationCdf,
    /// Setup.
    pub setup: setup::SetupStats,
    /// Scam.
    pub scam: scamposts::ScamAnalysis,
    /// Network.
    pub network: network::NetworkAnalysis,
    /// Efficacy.
    pub efficacy: efficacy::EfficacyAnalysis,
    /// Underground.
    pub underground: underground::UndergroundAnalysis,
    /// Requests the campaign issued on the fabric.
    pub requests_issued: usize,
    /// Virtual days the campaign spanned.
    pub campaign_days: f64,
    /// Run-provenance manifest: per-stage timings, crawl/API tallies,
    /// counters (exported as `TELEMETRY_report.json`).
    pub telemetry: telemetry::RunManifest,
}

impl StudyReport {
    /// Render every table and figure as one text report.
    pub fn render_all(&self) -> String {
        let mut out = String::new();
        out.push_str(&report::render_figure1());
        out.push('\n');
        out.push_str(&report::render_table1(&self.table1));
        out.push('\n');
        out.push_str(&report::render_table2(&self.table2));
        out.push('\n');
        out.push_str(&report::render_table3());
        out.push('\n');
        out.push_str(&report::render_anatomy(&self.anatomy));
        out.push('\n');
        out.push_str(&report::render_figure2(&self.dynamics));
        out.push('\n');
        out.push_str(&report::render_figure3(anatomy::figure3_outlier(&self.dataset.offers)));
        out.push('\n');
        out.push_str(&report::render_underground(&self.underground));
        out.push('\n');
        out.push_str(&report::render_table4(&self.table4));
        out.push('\n');
        out.push_str(&report::render_figure4(&self.creation));
        out.push('\n');
        out.push_str(&report::render_setup(&self.setup));
        out.push('\n');
        out.push_str(&report::render_table5(&self.scam));
        out.push('\n');
        out.push_str(&report::render_table6(&self.scam));
        out.push('\n');
        out.push_str(&report::render_table7(&self.network));
        out.push('\n');
        out.push_str(&report::render_figure5(&self.network));
        out.push('\n');
        out.push_str(&report::render_table8(&self.efficacy));
        out.push('\n');
        out.push_str(&report::render_table9());
        out.push('\n');
        out.push_str(&crate::payments_security::render_appendix_a());
        out
    }
}

/// The study driver.
///
/// ```no_run
/// use acctrade_core::study::{Study, StudyConfig};
///
/// // A fast 2%-scale pass; StudyConfig::full(seed) reproduces the paper.
/// let report = Study::new(StudyConfig::small(42)).run();
/// println!("{}", report.render_all());
/// assert!(report.scam.total_scam_posts > 0);
/// ```
pub struct Study {
    /// Config.
    pub config: StudyConfig,
}

impl Study {
    /// Create a study.
    pub fn new(config: StudyConfig) -> Study {
        Study { config }
    }

    /// Run the full pipeline. This generates the world internally; use
    /// [`Study::run_on`] to measure a pre-built world.
    pub fn run(&self) -> StudyReport {
        let mut world = World::generate(WorldParams {
            seed: self.config.seed,
            scale: self.config.scale,
        });
        self.run_on(&mut world)
    }

    /// Run the pipeline against an existing world.
    ///
    /// The run is instrumented end-to-end: if the caller has already
    /// scoped a [`telemetry::Recorder`], the study records into it;
    /// otherwise it creates its own. Either way the resulting
    /// [`telemetry::RunManifest`] lands in [`StudyReport::telemetry`].
    pub fn run_on(&self, world: &mut World) -> StudyReport {
        // Resolve the recorder before touching the fabric so
        // `SimNet::with_clock` installs the virtual clock into it.
        let current = telemetry::recorder();
        let rec = if current.is_enabled() { current } else { telemetry::Recorder::new() };
        let _scope = rec.enter();

        let net = SimNet::new(self.config.seed);
        {
            let _stage = telemetry::span("deploy");
            world.deploy(&net);
        }
        let t0 = net.clock().now_unix();

        // -- Module 2a: the public-marketplace crawl campaign.
        let (mut dataset, snapshots) = {
            let _stage = telemetry::span("crawl_campaign");
            let crawler_client =
                Client::new(&net, "acctrade-crawler/0.1").with_politeness(20.0, 8.0);
            let campaign = CrawlCampaign::new(&crawler_client);
            campaign.run(world, self.config.iterations.max(1))
        };

        // -- Module 2b: profile metadata + timelines for visible accounts.
        let api_client = Client::new(&net, "acctrade-pipeline/0.1");
        let resolver = ProfileResolver::new(&api_client);
        {
            let _stage = telemetry::span("resolve_profiles");
            let (profiles, posts) = resolver.resolve_offers(&dataset.offers);
            dataset.profiles = profiles;
            dataset.posts = posts;
        }

        // -- Module 2c: manual underground collection over Tor.
        {
            let _stage = telemetry::span("underground_collection");
            let directory = TorDirectory::default_consensus();
            let mut tor_rng = ChaCha8Rng::seed_from_u64(self.config.seed ^ 0x70C0_11EC);
            // Every inspected market is visited — including the two that
            // turn out to sell nothing (the paper did the same; their
            // emptiness is itself a §4.2 finding).
            for forum in &world.forums {
                let cfg = forum.config();
                let operator = Client::new(&net, "tor-browser/13")
                    .manual(self.config.seed ^ cfg.id as u64)
                    .via_tor(directory.build_circuit(&mut tor_rng));
                let collector =
                    UndergroundCollector::new(&operator, cfg.host.clone(), cfg.name);
                let (records, _stats) = collector.collect();
                dataset.underground.extend(records);
            }
        }

        // -- Module 3: moderation acts during the window; the audit
        //    re-queries at the end.
        {
            let _stage = telemetry::span("moderation");
            net.clock().advance(20 * DAY);
            world.run_moderation(net.clock().now_unix());
        }
        let requery: Vec<ProfileRecord> = {
            let _stage = telemetry::span("efficacy_requery");
            dataset
                .profiles
                .iter()
                .map(|p| {
                    resolver.resolve(
                        Platform::parse(&p.platform).expect("known platform"),
                        &p.handle,
                    )
                })
                .collect()
        };

        // -- Analyses.
        let _stage = telemetry::span("analysis");
        let table1 = anatomy::table1(&dataset.offers);
        let mut visible_and_posts: BTreeMap<String, (usize, usize)> = BTreeMap::new();
        for p in &dataset.profiles {
            visible_and_posts.entry(p.platform.clone()).or_default().0 += 1;
        }
        for p in &dataset.posts {
            visible_and_posts.entry(p.platform.clone()).or_default().1 += 1;
        }
        let table2 = anatomy::table2(&dataset.offers, &visible_and_posts);
        let anatomy_stats = anatomy::anatomy_stats(&dataset.offers);
        let listing_dynamics = dynamics::ListingDynamics::from_snapshots(&snapshots);
        let table4 = setup::table4(&dataset.profiles);
        let creation = setup::creation_cdf(&dataset.profiles);
        let setup_stats = setup::setup_stats(&dataset.profiles);
        let scam = scamposts::analyze(&dataset.posts, self.config.scam);
        let network_analysis = network::analyze(&dataset.profiles);
        let efficacy_analysis = efficacy::analyze(&requery);
        let underground_analysis = underground::analyze(&dataset.underground);
        drop(_stage); // close the analysis span before exporting stages

        let manifest = rec.manifest(
            "study",
            self.config.seed,
            &telemetry::digest64(&format!("{:?}", self.config)),
        );

        StudyReport {
            config: self.config,
            dataset,
            table1,
            table2,
            anatomy: anatomy_stats,
            dynamics: listing_dynamics,
            table4,
            creation,
            setup: setup_stats,
            scam,
            network: network_analysis,
            efficacy: efficacy_analysis,
            underground: underground_analysis,
            requests_issued: net.request_count(),
            campaign_days: (net.clock().now_unix() - t0) as f64 / 86_400.0,
            telemetry: manifest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One shared small-study run (building it is the expensive part).
    fn run_small() -> StudyReport {
        Study::new(StudyConfig::small(1234)).run()
    }

    #[test]
    fn small_study_end_to_end() {
        let report = run_small();

        // Table 1: all marketplaces present, counts at ~2% scale.
        assert_eq!(report.table1.len(), 11);
        let total: usize = report.table1.iter().map(|r| r.accounts).sum();
        assert!((500..1_100).contains(&total), "total offers {total}");
        let hidden = report.table1.iter().filter(|r| r.sellers.is_none()).count();
        assert_eq!(hidden, 5, "five marketplaces hide sellers");

        // Table 2: visible ~29% of all.
        let vis: usize = report.table2.iter().map(|r| r.visible_accounts).sum();
        let all: usize = report.table2.iter().map(|r| r.all_accounts).sum();
        let frac = vis as f64 / all as f64;
        assert!((0.2..0.45).contains(&frac), "visible fraction {frac}");

        // Figure 2 shape.
        assert!(report.dynamics.cumulative_monotone());
        assert!(report.dynamics.final_gap() > 0);

        // Figure 4 anchors.
        assert!((0.15..0.45).contains(&report.creation.pre_2020));

        // Table 5/6: scams found.
        assert!(report.scam.total_scam_posts > 0);
        assert!(report.scam.scam_cluster_count >= 3);

        // Table 7: some clusters, low overall percentage.
        assert!(report.network.all_row.clusters > 0);
        assert!(report.network.all_row.clustered_pct < 25.0);

        // Table 8: overall efficacy in the paper's band.
        let eff = report.efficacy.all_row.blocking_efficacy_pct;
        assert!((10.0..32.0).contains(&eff), "efficacy {eff}");

        // Underground: 65 posts collected minus caps.
        assert!(report.underground.total_posts >= 40);
        assert!(!report.underground.reuse_pairs.is_empty());

        // The report renders every table.
        let text = report.render_all();
        for needle in [
            "Table 1", "Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7",
            "Table 8", "Table 9", "Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5",
            "Section 4.1", "Section 4.2", "Section 5", "Appendix A",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }

        // The campaign consumed virtual time and issued real requests.
        assert!(report.campaign_days > 30.0);
        assert!(report.requests_issued > 1_000);

        // The run manifest is well-formed and carries the provenance the
        // paper's credibility rests on.
        assert!(report.telemetry.validate().is_ok());
        let stage_names: Vec<&str> =
            report.telemetry.stages.iter().map(|s| s.name.as_str()).collect();
        for stage in [
            "deploy",
            "crawl_campaign",
            "resolve_profiles",
            "underground_collection",
            "moderation",
            "efficacy_requery",
            "analysis",
        ] {
            assert!(stage_names.contains(&stage), "missing stage {stage}");
        }
        assert_eq!(report.telemetry.crawl.len(), 11, "one crawl row per marketplace");
        assert!(!report.telemetry.api.is_empty(), "API outcome tallies recorded");
        let manifest_pages: u64 = report.telemetry.crawl.iter().map(|c| c.pages).sum();
        assert!(manifest_pages > 0);
    }

    #[test]
    fn study_is_deterministic() {
        let a = Study::new(StudyConfig::small(77)).run();
        let b = Study::new(StudyConfig::small(77)).run();
        assert_eq!(a.dataset.offers.len(), b.dataset.offers.len());
        assert_eq!(a.scam.total_scam_posts, b.scam.total_scam_posts);
        assert_eq!(
            a.efficacy.all_row.inactive_accounts,
            b.efficacy.all_row.inactive_accounts
        );
        assert_eq!(a.render_all(), b.render_all());
    }
}
