//! §4.1 — Anatomy of public marketplaces.
//!
//! Consumes the crawl dataset (offer records only — everything here is
//! knowable from the marketplace pages alone) and produces Tables 1–3,
//! Figure 3's price outlier, and the section's in-text statistics.

use crate::stats;
use acctrade_crawler::record::OfferRecord;
use acctrade_market::config::{MarketplaceId, ALL_MARKETPLACES};
use acctrade_market::payments::{PaymentCategory, PaymentMethod};
use std::collections::{BTreeMap, BTreeSet};

/// One Table 1 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table1Row {
    /// Marketplace.
    pub marketplace: String,
    /// Distinct sellers observed; `None` when the marketplace hides them.
    pub sellers: Option<usize>,
    /// Accounts.
    pub accounts: usize,
}

/// Compute Table 1 from offer records.
pub fn table1(offers: &[OfferRecord]) -> Vec<Table1Row> {
    ALL_MARKETPLACES
        .iter()
        .map(|m| {
            let name = m.name();
            let market_offers: Vec<&OfferRecord> =
                offers.iter().filter(|o| o.marketplace == name).collect();
            let sellers: BTreeSet<&str> = market_offers
                .iter()
                .filter_map(|o| o.seller.as_deref())
                .collect();
            Table1Row {
                marketplace: name.to_string(),
                sellers: (!sellers.is_empty()).then_some(sellers.len()),
                accounts: market_offers.len(),
            }
        })
        .collect()
}

/// One Table 2 row (computed here for the "all accounts" column; the
/// visible/post columns join the resolver output in [`crate::study`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2Row {
    /// Platform.
    pub platform: String,
    /// Visible accounts.
    pub visible_accounts: usize,
    /// Visible posts.
    pub visible_posts: usize,
    /// All accounts.
    pub all_accounts: usize,
}

/// Compute Table 2 given offers plus per-platform (visible, posts) counts
/// from the resolver.
pub fn table2(
    offers: &[OfferRecord],
    visible_and_posts: &BTreeMap<String, (usize, usize)>,
) -> Vec<Table2Row> {
    // Paper order: Instagram, YouTube, TikTok, Facebook, X.
    ["Instagram", "YouTube", "TikTok", "Facebook", "X"]
        .iter()
        .map(|p| {
            let all = offers.iter().filter(|o| o.platform.as_deref() == Some(*p)).count();
            let (vis, posts) = visible_and_posts.get(*p).copied().unwrap_or((0, 0));
            Table2Row {
                platform: p.to_string(),
                visible_accounts: vis,
                visible_posts: posts,
                all_accounts: all,
            }
        })
        .collect()
}

/// Table 3: the payment-method × marketplace support matrix.
///
/// The paper extracted this manually from checkout pages and FAQs
/// (Appendix A.1); our stand-in reads each simulated marketplace's
/// advertised methods — the same information a manual auditor reads off
/// the site.
pub fn table3() -> Vec<(PaymentCategory, PaymentMethod, Vec<MarketplaceId>)> {
    let mut rows = Vec::new();
    for category in PaymentCategory::all() {
        for method in PaymentMethod::all_known()
            .into_iter()
            .chain(std::iter::once(PaymentMethod::Unknown))
            .filter(|m| m.category() == category)
        {
            let supporters: Vec<MarketplaceId> = ALL_MARKETPLACES
                .iter()
                .copied()
                .filter(|m| m.config().payment_methods.contains(&method))
                .collect();
            if !supporters.is_empty() {
                rows.push((category, method, supporters));
            }
        }
    }
    rows
}

/// The in-text §4.1 statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct AnatomyStats {
    /// Total offers.
    pub total_offers: usize,
    /// Total sellers.
    pub total_sellers: usize,
    /// Median per-marketplace seller count (the paper's "median number
    /// of seller accounts was 77").
    pub seller_count_median: Option<f64>,
    /// Distinct seller countries and the top-5 by seller count.
    pub seller_countries: usize,
    /// Top seller countries.
    pub top_seller_countries: Vec<(String, usize)>,
    /// Category stats.
    pub uncategorized: usize,
    /// Distinct categories.
    pub distinct_categories: usize,
    /// Top categories.
    pub top_categories: Vec<(String, usize)>,
    /// Verified-status claims (the paper: 185, all YouTube, no links).
    pub verified_claims: usize,
    /// Verified claims all youtube.
    pub verified_claims_all_youtube: bool,
    /// Verified claims without links.
    pub verified_claims_without_links: bool,
    /// Monetization.
    pub monetized: usize,
    /// Monetization median usd.
    pub monetization_median_usd: Option<f64>,
    /// Monetization total usd.
    pub monetization_total_usd: f64,
    /// Income source sellers.
    pub income_source_sellers: usize,
    /// Descriptions.
    pub described: usize,
    /// §4.1's keyword-identified description strategies: (label, count).
    pub description_strategies: Vec<(&'static str, usize)>,
    /// Followers shown in ads.
    pub followers_shown: usize,
    /// Follower medians.
    pub follower_medians: BTreeMap<String, f64>,
    /// Prices.
    pub price_medians: BTreeMap<String, f64>,
    /// Price total usd.
    pub price_total_usd: f64,
    /// Overall price median usd.
    pub overall_price_median_usd: Option<f64>,
    /// Premium count.
    pub premium_count: usize,
    /// Premium median usd.
    pub premium_median_usd: Option<f64>,
    /// Premium max usd.
    pub premium_max_usd: f64,
    /// Premium total usd.
    pub premium_total_usd: f64,
}

/// Compute the §4.1 statistics from offer records.
pub fn anatomy_stats(offers: &[OfferRecord]) -> AnatomyStats {
    let mut seller_countries: BTreeMap<String, BTreeSet<&str>> = BTreeMap::new();
    let mut sellers: BTreeSet<(&str, &str)> = BTreeSet::new();
    for o in offers {
        if let Some(s) = o.seller.as_deref() {
            sellers.insert((o.marketplace.as_str(), s));
            if let Some(c) = o.seller_country.as_deref() {
                seller_countries.entry(c.to_string()).or_default().insert(s);
            }
        }
    }
    let mut per_market_sellers: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for &(market, seller) in &sellers {
        per_market_sellers.entry(market).or_default().insert(seller);
    }
    let seller_counts: Vec<f64> =
        per_market_sellers.values().map(|s| s.len() as f64).collect();
    let mut top_seller_countries: Vec<(String, usize)> = seller_countries
        .iter()
        .map(|(c, s)| (c.clone(), s.len()))
        .collect();
    top_seller_countries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    top_seller_countries.truncate(5);

    let mut categories: BTreeMap<&str, usize> = BTreeMap::new();
    for o in offers {
        if let Some(c) = o.category.as_deref() {
            *categories.entry(c).or_insert(0) += 1;
        }
    }
    let mut top_categories: Vec<(String, usize)> =
        categories.iter().map(|(c, n)| (c.to_string(), *n)).collect();
    top_categories.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    top_categories.truncate(5);

    // Keyword analysis of description strategies (§4.1's eight-way
    // manual coding, mechanized).
    type StrategyRule = (&'static str, fn(&str) -> bool);
    let strategy_rules: [StrategyRule; 5] = [
        ("authentic", |d| d.contains("authentic")),
        ("fresh and ready", |d| d.contains("fresh and ready")),
        ("business adaptability", |d| d.contains("business adaptability")),
        ("real users with activity", |d| d.contains("real and active")),
        ("original email included", |d| d.contains("original email included")),
    ];
    let description_strategies: Vec<(&'static str, usize)> = strategy_rules
        .iter()
        .map(|&(label, rule)| {
            let n = offers
                .iter()
                .filter_map(|o| o.description.as_deref())
                .map(|d| d.to_ascii_lowercase())
                .filter(|d| rule(d))
                .count();
            (label, n)
        })
        .collect();

    let verified: Vec<&OfferRecord> = offers.iter().filter(|o| o.claims_verified).collect();
    let monetized: Vec<&OfferRecord> =
        offers.iter().filter(|o| o.monthly_revenue_usd.is_some()).collect();
    let revenues: Vec<f64> = monetized.iter().filter_map(|o| o.monthly_revenue_usd).collect();
    let income_source_sellers: BTreeSet<&str> = offers
        .iter()
        .filter(|o| o.income_source.is_some())
        .filter_map(|o| o.seller.as_deref())
        .collect();

    let mut follower_medians = BTreeMap::new();
    let mut price_medians = BTreeMap::new();
    for platform in ["Facebook", "X", "Instagram", "TikTok", "YouTube"] {
        let f: Vec<f64> = offers
            .iter()
            .filter(|o| o.platform.as_deref() == Some(platform))
            .filter_map(|o| o.claimed_followers)
            .map(|x| x as f64)
            .collect();
        if let Some(m) = stats::median(&f) {
            follower_medians.insert(platform.to_string(), m);
        }
        let p: Vec<f64> = offers
            .iter()
            .filter(|o| o.platform.as_deref() == Some(platform))
            .filter_map(|o| o.price_usd)
            .collect();
        if let Some(m) = stats::median(&p) {
            price_medians.insert(platform.to_string(), m);
        }
    }

    let prices: Vec<f64> = offers.iter().filter_map(|o| o.price_usd).collect();
    let premium: Vec<f64> = prices.iter().copied().filter(|&p| p > 20_000.0).collect();

    AnatomyStats {
        total_offers: offers.len(),
        total_sellers: sellers.len(),
        seller_count_median: stats::median(&seller_counts),
        seller_countries: seller_countries.len(),
        top_seller_countries,
        uncategorized: offers.iter().filter(|o| o.category.is_none()).count(),
        distinct_categories: categories.len(),
        top_categories,
        verified_claims: verified.len(),
        verified_claims_all_youtube: verified
            .iter()
            .all(|o| o.platform.as_deref() == Some("YouTube")),
        verified_claims_without_links: verified.iter().all(|o| !o.is_visible()),
        monetized: monetized.len(),
        monetization_median_usd: stats::median(&revenues),
        monetization_total_usd: revenues.iter().sum(),
        income_source_sellers: income_source_sellers.len(),
        described: offers.iter().filter(|o| o.description.is_some()).count(),
        description_strategies,
        followers_shown: offers.iter().filter(|o| o.claimed_followers.is_some()).count(),
        follower_medians,
        price_medians,
        price_total_usd: prices.iter().sum(),
        overall_price_median_usd: stats::median(&prices),
        premium_count: premium.len(),
        premium_median_usd: stats::median(&premium),
        premium_max_usd: premium.iter().copied().fold(0.0, f64::max),
        premium_total_usd: premium.iter().sum(),
    }
}

/// Figure 3: the most expensive listing observed (the paper shows a
/// FameSwap listing near $50M; our generator caps the premium tail at the
/// paper's verified $5M maximum — see EXPERIMENTS.md).
pub fn figure3_outlier(offers: &[OfferRecord]) -> Option<&OfferRecord> {
    offers
        .iter()
        .filter(|o| o.price_usd.is_some())
        .max_by(|a, b| {
            let (pa, pb) = (a.price_usd, b.price_usd);
            pa.unwrap_or(f64::NEG_INFINITY).total_cmp(&pb.unwrap_or(f64::NEG_INFINITY))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn offer(market: &str, platform: &str, seller: Option<&str>, price: f64) -> OfferRecord {
        OfferRecord {
            marketplace: market.into(),
            offer_url: format!("http://{market}/offer/{price}"),
            title: String::new(),
            seller: seller.map(str::to_string),
            seller_country: seller.map(|_| "United States".to_string()),
            price_usd: Some(price),
            platform: Some(platform.into()),
            category: Some("Humor/Memes".into()),
            claimed_followers: Some(1000),
            claims_verified: false,
            monthly_revenue_usd: None,
            income_source: None,
            description: Some("desc".into()),
            profile_link: None,
            handle: None,
            collected_unix: 0,
            iteration: 0,
        }
    }

    #[test]
    fn table1_counts_sellers_and_accounts() {
        let offers = vec![
            offer("Accsmarket", "Instagram", Some("a"), 10.0),
            offer("Accsmarket", "Instagram", Some("a"), 20.0),
            offer("Accsmarket", "X", Some("b"), 30.0),
            offer("SocialTradia", "Instagram", None, 40.0),
        ];
        let t1 = table1(&offers);
        let accs = t1.iter().find(|r| r.marketplace == "Accsmarket").unwrap();
        assert_eq!(accs.sellers, Some(2));
        assert_eq!(accs.accounts, 3);
        let st = t1.iter().find(|r| r.marketplace == "SocialTradia").unwrap();
        assert_eq!(st.sellers, None);
        assert_eq!(st.accounts, 1);
    }

    #[test]
    fn anatomy_price_stats() {
        let mut offers: Vec<OfferRecord> = (0..9)
            .map(|i| offer("Z2U", "TikTok", Some("s"), 100.0 + f64::from(i)))
            .collect();
        offers.push(offer("Z2U", "TikTok", Some("s"), 45_000.0));
        let a = anatomy_stats(&offers);
        assert_eq!(a.total_offers, 10);
        assert_eq!(a.premium_count, 1);
        assert_eq!(a.premium_max_usd, 45_000.0);
        assert!(a.price_total_usd > 45_000.0);
        assert_eq!(a.price_medians["TikTok"], 104.5);
    }

    #[test]
    fn figure3_finds_max() {
        let offers = vec![
            offer("FameSwap", "Instagram", Some("s"), 100.0),
            offer("FameSwap", "Instagram", Some("s"), 5_000_000.0),
        ];
        let o = figure3_outlier(&offers).unwrap();
        assert_eq!(o.price_usd, Some(5_000_000.0));
    }

    #[test]
    fn table3_has_all_known_methods_supported_somewhere() {
        let rows = table3();
        // Every method supported by at least one marketplace appears.
        assert!(rows.iter().any(|(_, m, _)| *m == PaymentMethod::PayPal));
        assert!(rows.iter().any(|(_, m, _)| *m == PaymentMethod::Unknown));
        // Z2U supports PayPal per Table 3.
        let (_, _, supporters) = rows
            .iter()
            .find(|(_, m, _)| *m == PaymentMethod::PayPal)
            .unwrap();
        assert!(supporters.contains(&MarketplaceId::Z2U));
    }

    #[test]
    fn verified_claim_flags() {
        let mut o = offer("FameSwap", "YouTube", Some("s"), 10.0);
        o.claims_verified = true;
        let a = anatomy_stats(&[o]);
        assert_eq!(a.verified_claims, 1);
        assert!(a.verified_claims_all_youtube);
        assert!(a.verified_claims_without_links);
    }
}
