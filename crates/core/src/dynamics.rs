//! Figure 2 — cumulative vs active listings across crawl iterations.

use acctrade_crawler::schedule::IterationSnapshot;

/// The two Figure 2 series plus derived replenishment evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct ListingDynamics {
    /// `(iteration, cumulative, active)` per pass.
    pub series: Vec<(usize, usize, usize)>,
    /// Total listings that disappeared between consecutive passes.
    pub total_retired: usize,
    /// Total listings first seen after the initial pass (replenishment).
    pub total_replenished: usize,
}

impl ListingDynamics {
    /// Derive the figure's series from campaign snapshots.
    pub fn from_snapshots(snaps: &[IterationSnapshot]) -> ListingDynamics {
        let series: Vec<(usize, usize, usize)> = snaps
            .iter()
            .map(|s| (s.iteration, s.cumulative_offers, s.active_offers))
            .collect();
        let mut total_retired = 0usize;
        for w in snaps.windows(2) {
            // active(i+1) = active(i) + new(i+1) - retired -> retired =
            // active(i) + new(i+1) - active(i+1).
            let retired =
                (w[0].active_offers + w[1].new_offers).saturating_sub(w[1].active_offers);
            total_retired += retired;
        }
        let total_replenished = snaps.iter().skip(1).map(|s| s.new_offers).sum();
        ListingDynamics { series, total_retired, total_replenished }
    }

    /// Does the cumulative curve grow monotonically (the paper's
    /// replenishment observation requires it)?
    pub fn cumulative_monotone(&self) -> bool {
        self.series.windows(2).all(|w| w[1].1 >= w[0].1)
    }

    /// Did active listings ever decline between passes (sales /
    /// take-downs)?
    pub fn active_declined(&self) -> bool {
        self.series.windows(2).any(|w| w[1].2 < w[0].2)
    }

    /// Final gap between cumulative and active listings.
    pub fn final_gap(&self) -> usize {
        self.series
            .last()
            .map(|&(_, cum, act)| cum.saturating_sub(act))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(it: usize, cum: usize, act: usize, new: usize) -> IterationSnapshot {
        IterationSnapshot {
            iteration: it,
            at_unix: it as i64 * 86_400,
            cumulative_offers: cum,
            active_offers: act,
            new_offers: new,
        }
    }

    #[test]
    fn derives_series_and_churn() {
        let snaps = vec![
            snap(0, 100, 100, 100),
            snap(1, 110, 95, 10), // 10 new, so 15 retired
            snap(2, 120, 90, 10), // 10 new, 15 retired
        ];
        let d = ListingDynamics::from_snapshots(&snaps);
        assert_eq!(d.series.len(), 3);
        assert!(d.cumulative_monotone());
        assert!(d.active_declined());
        assert_eq!(d.total_replenished, 20);
        assert_eq!(d.total_retired, 30);
        assert_eq!(d.final_gap(), 30);
    }

    #[test]
    fn empty_snapshots() {
        let d = ListingDynamics::from_snapshots(&[]);
        assert!(d.series.is_empty());
        assert!(d.cumulative_monotone());
        assert!(!d.active_declined());
        assert_eq!(d.final_gap(), 0);
    }
}
