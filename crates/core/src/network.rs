//! §7 — Tracking and network analysis (Table 7, Figure 5).
//!
//! Groups visible accounts by shared profile attributes, per platform,
//! using the paper's attribute choices: TikTok by description, YouTube by
//! name, Instagram by biography, Facebook by email/phone/website, X by
//! name or description. Accounts sharing an attribute with at least one
//! other account form a cluster; everything else is a singleton.

use acctrade_crawler::record::{FetchStatus, ProfileRecord};
use std::collections::BTreeMap;

/// One Table 7 row.
#[derive(Debug, Clone, PartialEq)]
pub struct Table7Row {
    /// Platform.
    pub platform: String,
    /// Attributes.
    pub attributes: &'static str,
    /// Min size.
    pub min_size: usize,
    /// Max size.
    pub max_size: usize,
    /// Median size.
    pub median_size: usize,
    /// Clusters.
    pub clusters: usize,
    /// Cluster accounts.
    pub cluster_accounts: usize,
    /// Singletons.
    pub singletons: usize,
    /// Clustered pct.
    pub clustered_pct: f64,
}

/// A discovered cluster with its member handles (Figure 5 exemplars come
/// from the biggest ones).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccountCluster {
    /// Platform.
    pub platform: String,
    /// Shared value.
    pub shared_value: String,
    /// Handles.
    pub handles: Vec<String>,
}

/// The attribute set used per platform (the paper's Table 7 choices).
pub(crate) fn cluster_attributes(platform: &str) -> &'static str {
    match platform {
        "TikTok" => "Description",
        "YouTube" => "Name",
        "Instagram" => "Biography",
        "Facebook" => "Email/Phone/Website",
        "X" => "Name/Description",
        _ => "-",
    }
}

fn attribute_keys(platform: &str, p: &ProfileRecord) -> Vec<String> {
    let nonempty = |s: &Option<String>| s.clone().filter(|v| !v.trim().is_empty());
    match platform {
        "TikTok" | "Instagram" => nonempty(&p.description)
            .map(|d| vec![format!("d:{d}")])
            .unwrap_or_default(),
        "YouTube" => nonempty(&p.name).map(|n| vec![format!("n:{n}")]).unwrap_or_default(),
        "Facebook" => {
            let mut keys = Vec::new();
            if let Some(e) = nonempty(&p.email) {
                keys.push(format!("e:{e}"));
            }
            if let Some(ph) = nonempty(&p.phone) {
                keys.push(format!("p:{ph}"));
            }
            if let Some(w) = nonempty(&p.website) {
                keys.push(format!("w:{w}"));
            }
            keys
        }
        "X" => {
            let mut keys = Vec::new();
            if let Some(n) = nonempty(&p.name) {
                keys.push(format!("n:{n}"));
            }
            if let Some(d) = nonempty(&p.description) {
                keys.push(format!("d:{d}"));
            }
            keys
        }
        _ => Vec::new(),
    }
}

/// The full §7 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkAnalysis {
    /// Rows.
    pub rows: Vec<Table7Row>,
    /// Clusters.
    pub clusters: Vec<AccountCluster>,
    /// The overall "All" row.
    pub all_row: Table7Row,
}

/// Run the attribute clustering over live profiles.
pub fn analyze(profiles: &[ProfileRecord]) -> NetworkAnalysis {
    let mut rows = Vec::new();
    let mut all_clusters: Vec<AccountCluster> = Vec::new();
    let (mut all_cluster_accounts, mut all_singletons) = (0usize, 0usize);
    let (mut all_min, mut all_max) = (usize::MAX, 0usize);
    let mut all_sizes: Vec<usize> = Vec::new();

    for platform in ["TikTok", "YouTube", "Instagram", "Facebook", "X"] {
        let live: Vec<&ProfileRecord> = profiles
            .iter()
            .filter(|p| p.status == FetchStatus::Ok && p.platform == platform)
            .collect();

        // Union-find over shared attribute keys (an account may share any
        // of several keys — Facebook's email OR phone OR website).
        let n = live.len();
        let mut dsu: Vec<usize> = (0..n).collect();
        fn find(dsu: &mut [usize], mut x: usize) -> usize {
            while dsu[x] != x {
                dsu[x] = dsu[dsu[x]];
                x = dsu[x];
            }
            x
        }
        let mut key_owner: BTreeMap<String, usize> = BTreeMap::new();
        for (i, p) in live.iter().enumerate() {
            for key in attribute_keys(platform, p) {
                match key_owner.get(&key) {
                    Some(&j) => {
                        let (ri, rj) = (find(&mut dsu, i), find(&mut dsu, j));
                        if ri != rj {
                            dsu[ri] = rj;
                        }
                    }
                    None => {
                        key_owner.insert(key, i);
                    }
                }
            }
        }
        let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for i in 0..n {
            let r = find(&mut dsu, i);
            groups.entry(r).or_default().push(i);
        }

        let mut sizes: Vec<usize> = Vec::new();
        let mut cluster_accounts = 0usize;
        let mut singletons = 0usize;
        for members in groups.values() {
            if members.len() >= 2 {
                sizes.push(members.len());
                cluster_accounts += members.len();
                let shared_value = attribute_keys(platform, live[members[0]])
                    .into_iter()
                    .next()
                    .unwrap_or_default();
                all_clusters.push(AccountCluster {
                    platform: platform.to_string(),
                    shared_value,
                    handles: members.iter().map(|&i| live[i].handle.clone()).collect(),
                });
            } else {
                singletons += 1;
            }
        }
        sizes.sort_unstable();
        let clusters = sizes.len();
        let median_size = if sizes.is_empty() { 0 } else { sizes[sizes.len() / 2] };
        let (min_size, max_size) = (
            sizes.first().copied().unwrap_or(0),
            sizes.last().copied().unwrap_or(0),
        );
        let denom = (cluster_accounts + singletons).max(1);
        rows.push(Table7Row {
            platform: platform.to_string(),
            attributes: cluster_attributes(platform),
            min_size,
            max_size,
            median_size,
            clusters,
            cluster_accounts,
            singletons,
            clustered_pct: 100.0 * cluster_accounts as f64 / denom as f64,
        });
        all_cluster_accounts += cluster_accounts;
        all_singletons += singletons;
        if min_size > 0 {
            all_min = all_min.min(min_size);
        }
        all_max = all_max.max(max_size);
        all_sizes.extend(sizes);
    }

    all_sizes.sort_unstable();
    let all_row = Table7Row {
        platform: "All".to_string(),
        attributes: "-",
        min_size: if all_min == usize::MAX { 0 } else { all_min },
        max_size: all_max,
        median_size: if all_sizes.is_empty() { 0 } else { all_sizes[all_sizes.len() / 2] },
        clusters: all_sizes.len(),
        cluster_accounts: all_cluster_accounts,
        singletons: all_singletons,
        clustered_pct: 100.0 * all_cluster_accounts as f64
            / (all_cluster_accounts + all_singletons).max(1) as f64,
    };
    NetworkAnalysis { rows, clusters: all_clusters, all_row }
}

/// Figure 5 exemplars: the descriptions of the largest clusters.
pub fn figure5_exemplars(analysis: &NetworkAnalysis, k: usize) -> Vec<&AccountCluster> {
    let mut sorted: Vec<&AccountCluster> = analysis.clusters.iter().collect();
    sorted.sort_by_key(|c| std::cmp::Reverse(c.handles.len()));
    sorted.into_iter().take(k).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(platform: &str, handle: &str) -> ProfileRecord {
        ProfileRecord {
            platform: platform.into(),
            handle: handle.into(),
            status: FetchStatus::Ok,
            status_detail: None,
            user_id: None,
            name: Some(format!("name-{handle}")),
            description: Some(format!("bio-{handle}")),
            location: None,
            category: None,
            email: None,
            phone: None,
            website: None,
            created_unix: None,
            account_type: None,
            followers: None,
            post_count: None,
        }
    }

    #[test]
    fn shared_bios_cluster_on_instagram() {
        let mut a = profile("Instagram", "a");
        let mut b = profile("Instagram", "b");
        let c = profile("Instagram", "c");
        a.description = Some("free NFT giveaways, join us".into());
        b.description = Some("free NFT giveaways, join us".into());
        let analysis = analyze(&[a, b, c]);
        let ig = analysis.rows.iter().find(|r| r.platform == "Instagram").unwrap();
        assert_eq!(ig.clusters, 1);
        assert_eq!(ig.cluster_accounts, 2);
        assert_eq!(ig.singletons, 1);
        assert!((ig.clustered_pct - 66.66).abs() < 1.0);
    }

    #[test]
    fn facebook_unions_across_attributes() {
        // a shares email with b; b shares phone with c -> one 3-cluster.
        let mut a = profile("Facebook", "a");
        let mut b = profile("Facebook", "b");
        let mut c = profile("Facebook", "c");
        a.email = Some("x@y.z".into());
        b.email = Some("x@y.z".into());
        b.phone = Some("+1555".into());
        c.phone = Some("+1555".into());
        let analysis = analyze(&[a, b, c]);
        let fb = analysis.rows.iter().find(|r| r.platform == "Facebook").unwrap();
        assert_eq!(fb.clusters, 1);
        assert_eq!(fb.max_size, 3);
    }

    #[test]
    fn x_clusters_on_name_or_description() {
        let mut a = profile("X", "a");
        let mut b = profile("X", "b");
        a.name = Some("Growth Agency 7".into());
        b.name = Some("Growth Agency 7".into());
        let analysis = analyze(&[a, b]);
        let x = analysis.rows.iter().find(|r| r.platform == "X").unwrap();
        assert_eq!(x.clusters, 1);
    }

    #[test]
    fn dead_accounts_excluded() {
        let mut a = profile("TikTok", "a");
        let mut b = profile("TikTok", "b");
        a.description = Some("same".into());
        b.description = Some("same".into());
        b.status = FetchStatus::NotFound;
        let analysis = analyze(&[a, b]);
        let tt = analysis.rows.iter().find(|r| r.platform == "TikTok").unwrap();
        assert_eq!(tt.clusters, 0);
        assert_eq!(tt.singletons, 1);
    }

    #[test]
    fn exemplars_are_largest_first() {
        let mut profiles = Vec::new();
        for i in 0..4 {
            let mut p = profile("Instagram", &format!("big{i}"));
            p.description = Some("mega cluster bio".into());
            profiles.push(p);
        }
        for i in 0..2 {
            let mut p = profile("Instagram", &format!("small{i}"));
            p.description = Some("small cluster bio".into());
            profiles.push(p);
        }
        let analysis = analyze(&profiles);
        let ex = figure5_exemplars(&analysis, 2);
        assert_eq!(ex[0].handles.len(), 4);
        assert_eq!(ex[1].handles.len(), 2);
    }

    #[test]
    fn all_row_aggregates() {
        let mut a = profile("Instagram", "a");
        let mut b = profile("Instagram", "b");
        a.description = Some("same bio".into());
        b.description = Some("same bio".into());
        let c = profile("X", "c");
        let analysis = analyze(&[a, b, c]);
        assert_eq!(analysis.all_row.clusters, 1);
        assert_eq!(analysis.all_row.cluster_accounts, 2);
        assert_eq!(analysis.all_row.singletons, 1);
    }
}
