//! Descriptive statistics and table formatting shared by the analyses.

/// Median of a sample (averaging the middle pair for even sizes). Returns
/// `None` for an empty sample.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let mid = v.len() / 2;
    Some(if v.len() % 2 == 1 { v[mid] } else { (v[mid - 1] + v[mid]) / 2.0 })
}

/// Median of integer samples, reported as f64.
pub fn median_u64(values: &[u64]) -> Option<f64> {
    let v: Vec<f64> = values.iter().map(|&x| x as f64).collect();
    median(&v)
}

/// The `q`-quantile (0 ≤ q ≤ 1) via nearest-rank.
// conformance: allow(pub-hygiene) — tested stats toolkit surface kept as public API
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range");
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let rank = ((q * v.len() as f64).ceil() as usize).clamp(1, v.len());
    Some(v[rank - 1])
}

/// An empirical CDF: sorted `(x, F(x))` sample points.
pub fn ecdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut v: Vec<f64> = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len() as f64;
    v.into_iter()
        .enumerate()
        .map(|(i, x)| (x, (i + 1) as f64 / n))
        .collect()
}

/// Fraction of samples at or below `x`.
// conformance: allow(pub-hygiene) — tested stats toolkit surface kept as public API
pub fn cdf_at(values: &[f64], x: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= x).count() as f64 / values.len() as f64
}

/// Format a count with thousands separators (`38,253`).
pub fn fmt_count(n: u64) -> String {
    let digits = n.to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Format a dollar amount (`$64,228,836` / `$157`).
pub fn fmt_usd(x: f64) -> String {
    format!("${}", fmt_count(x.round().max(0.0) as u64))
}

/// Format a percentage with two decimals (`19.71`).
pub fn fmt_pct(x: f64) -> String {
    format!("{x:.2}")
}

/// Render an aligned text table: `header` then `rows`, column widths
/// fitted to content. Used by every report.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: Vec<&str>, widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
            .trim_end()
            .to_string()
    };
    out.push_str(&fmt_row(header.to_vec(), &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row.iter().map(String::as_str).collect(), &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even_empty() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert_eq!(median(&[]), None);
        assert_eq!(median_u64(&[10, 20, 30]), Some(20.0));
    }

    #[test]
    fn quantiles() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(quantile(&v, 0.5), Some(50.0));
        assert_eq!(quantile(&v, 1.0), Some(100.0));
        assert_eq!(quantile(&v, 0.0), Some(1.0));
    }

    #[test]
    fn ecdf_monotone_and_normalized() {
        let points = ecdf(&[5.0, 1.0, 3.0, 3.0]);
        assert_eq!(points.len(), 4);
        assert!((points.last().unwrap().1 - 1.0).abs() < 1e-12);
        assert!(points.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert!((cdf_at(&[1.0, 2.0, 3.0, 4.0], 2.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_count(38_253), "38,253");
        assert_eq!(fmt_count(7), "7");
        assert_eq!(fmt_count(1_000_000), "1,000,000");
        assert_eq!(fmt_usd(64_228_836.4), "$64,228,836");
        assert_eq!(fmt_pct(19.714), "19.71");
    }

    #[test]
    fn table_rendering_aligns() {
        let t = render_table(
            &["Market", "Accounts"],
            &[
                vec!["Accsmarket".into(), "13,665".into()],
                vec!["Z2U".into(), "6,417".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[0].starts_with("Market"));
        assert!(lines[2].starts_with("Accsmarket"));
        // Numbers column starts at the same offset in every row.
        let col = lines[2].find("13,665").unwrap();
        assert_eq!(lines[3].find("6,417").unwrap(), col);
    }

    #[test]
    #[should_panic(expected = "ragged table row")]
    fn ragged_rows_rejected() {
        let _ = render_table(&["a", "b"], &[vec!["only".into()]]);
    }
}
