//! §5 — Account setup and engagement.
//!
//! Consumes resolved profile records (live accounts only) and produces:
//! Table 4 (follower min/median/max per platform), Figure 4 (creation-date
//! CDF), and the section's location / category / account-type statistics.

use crate::stats;
use acctrade_crawler::record::{FetchStatus, ProfileRecord};
use acctrade_net::clock::unix_from_ymd;
use std::collections::BTreeMap;

/// One Table 4 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table4Row {
    /// Platform.
    pub platform: String,
    /// Min.
    pub min: u64,
    /// Median.
    pub median: u64,
    /// Max.
    pub max: u64,
}

/// Compute Table 4 (follower distribution of visible accounts). The "All"
/// row is appended last, as in the paper.
pub fn table4(profiles: &[ProfileRecord]) -> Vec<Table4Row> {
    let mut rows = Vec::new();
    let mut all: Vec<u64> = Vec::new();
    for platform in ["TikTok", "X", "Facebook", "Instagram", "YouTube"] {
        let f: Vec<u64> = profiles
            .iter()
            .filter(|p| p.status == FetchStatus::Ok && p.platform == platform)
            .filter_map(|p| p.followers)
            .collect();
        if f.is_empty() {
            continue;
        }
        all.extend(&f);
        rows.push(Table4Row {
            platform: platform.to_string(),
            min: *f.iter().min().expect("non-empty"), // conformance: allow(panic-policy) — `f` is checked non-empty above
            median: stats::median_u64(&f).expect("non-empty") as u64,
            max: *f.iter().max().expect("non-empty"), // conformance: allow(panic-policy) — `f` is checked non-empty above
        });
    }
    if !all.is_empty() {
        rows.push(Table4Row {
            platform: "All".to_string(),
            min: *all.iter().min().expect("non-empty"), // conformance: allow(panic-policy) — `all` is checked non-empty above
            median: stats::median_u64(&all).expect("non-empty") as u64,
            max: *all.iter().max().expect("non-empty"), // conformance: allow(panic-policy) — `all` is checked non-empty above
        });
    }
    rows
}

/// Figure 4 — creation-date CDF per platform plus headline fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct CreationCdf {
    /// Per-platform sorted creation dates (unix seconds).
    pub per_platform: BTreeMap<String, Vec<i64>>,
    /// Fraction of all accounts created before 2020-01-01.
    pub pre_2020: f64,
    /// Fraction created within 3.5 years of the collection start.
    pub last_3_5_years: f64,
    /// Fraction of YouTube accounts created 2006–2010.
    pub youtube_2006_2010: f64,
}

/// Compute Figure 4 from live profiles.
pub fn creation_cdf(profiles: &[ProfileRecord]) -> CreationCdf {
    let mut per_platform: BTreeMap<String, Vec<i64>> = BTreeMap::new();
    for p in profiles {
        if p.status != FetchStatus::Ok {
            continue;
        }
        if let Some(c) = p.created_unix {
            per_platform.entry(p.platform.clone()).or_default().push(c);
        }
    }
    for v in per_platform.values_mut() {
        v.sort_unstable();
    }
    let all: Vec<i64> = per_platform.values().flatten().copied().collect();
    let total = all.len().max(1) as f64;
    let cut_2020 = unix_from_ymd(2020, 1, 1);
    let cut_3_5y = acctrade_net::clock::COLLECTION_START_UNIX - (3.5 * 365.25 * 86_400.0) as i64;
    let pre_2020 = all.iter().filter(|&&c| c < cut_2020).count() as f64 / total;
    let last_3_5_years = all.iter().filter(|&&c| c >= cut_3_5y).count() as f64 / total;
    let yt = per_platform.get("YouTube").cloned().unwrap_or_default();
    let yt_total = yt.len().max(1) as f64;
    let youtube_2006_2010 = yt
        .iter()
        .filter(|&&c| c >= unix_from_ymd(2006, 1, 1) && c < unix_from_ymd(2011, 1, 1))
        .count() as f64
        / yt_total;
    CreationCdf { per_platform, pre_2020, last_3_5_years, youtube_2006_2010 }
}

/// The §5 profile-setup statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct SetupStats {
    /// Live profiles.
    pub live_profiles: usize,
    /// Location stats.
    pub located: usize,
    /// Distinct locations.
    pub distinct_locations: usize,
    /// Top locations.
    pub top_locations: Vec<(String, usize)>,
    /// Platform-category stats.
    pub categorized: usize,
    /// Distinct categories.
    pub distinct_categories: usize,
    /// Top categories.
    pub top_categories: Vec<(String, usize)>,
    /// Account-type counts.
    pub business: usize,
    /// Verified.
    pub verified: usize,
    /// Private.
    pub private: usize,
    /// Protected.
    pub protected: usize,
}

/// Compute the §5 statistics from live profiles.
pub fn setup_stats(profiles: &[ProfileRecord]) -> SetupStats {
    let live: Vec<&ProfileRecord> =
        profiles.iter().filter(|p| p.status == FetchStatus::Ok).collect();

    let mut locations: BTreeMap<&str, usize> = BTreeMap::new();
    let mut categories: BTreeMap<&str, usize> = BTreeMap::new();
    let mut by_type: BTreeMap<&str, usize> = BTreeMap::new();
    for p in &live {
        if let Some(l) = p.location.as_deref() {
            *locations.entry(l).or_insert(0) += 1;
        }
        if let Some(c) = p.category.as_deref() {
            *categories.entry(c).or_insert(0) += 1;
        }
        if let Some(t) = p.account_type.as_deref() {
            *by_type.entry(t).or_insert(0) += 1;
        }
    }
    let top = |map: &BTreeMap<&str, usize>| {
        let mut v: Vec<(String, usize)> =
            map.iter().map(|(k, n)| (k.to_string(), *n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(5);
        v
    };
    SetupStats {
        live_profiles: live.len(),
        located: locations.values().sum(),
        distinct_locations: locations.len(),
        top_locations: top(&locations),
        categorized: categories.values().sum(),
        distinct_categories: categories.len(),
        top_categories: top(&categories),
        business: by_type.get("business").copied().unwrap_or(0),
        verified: by_type.get("verified").copied().unwrap_or(0),
        private: by_type.get("private").copied().unwrap_or(0),
        protected: by_type.get("protected").copied().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(platform: &str, followers: u64, created: i64) -> ProfileRecord {
        ProfileRecord {
            platform: platform.into(),
            handle: format!("h{followers}"),
            status: FetchStatus::Ok,
            status_detail: None,
            user_id: Some(followers),
            name: Some("n".into()),
            description: Some("d".into()),
            location: Some("United States".into()),
            category: None,
            email: None,
            phone: None,
            website: None,
            created_unix: Some(created),
            account_type: Some("standard".into()),
            followers: Some(followers),
            post_count: Some(0),
        }
    }

    #[test]
    fn table4_min_median_max() {
        let profiles = vec![
            profile("X", 55, 0),
            profile("X", 2_752, 0),
            profile("X", 1_000_000, 0),
        ];
        let t4 = table4(&profiles);
        let x = t4.iter().find(|r| r.platform == "X").unwrap();
        assert_eq!((x.min, x.median, x.max), (55, 2_752, 1_000_000));
        let all = t4.iter().find(|r| r.platform == "All").unwrap();
        assert_eq!(all.max, 1_000_000);
    }

    #[test]
    fn dead_profiles_excluded() {
        let mut dead = profile("X", 9, 0);
        dead.status = FetchStatus::NotFound;
        let t4 = table4(&[dead, profile("X", 100, 0), profile("X", 300, 0)]);
        let x = t4.iter().find(|r| r.platform == "X").unwrap();
        assert_eq!(x.min, 100);
    }

    #[test]
    fn creation_cdf_fractions() {
        let old = unix_from_ymd(2015, 6, 1);
        let recent = unix_from_ymd(2023, 6, 1);
        let ancient = unix_from_ymd(2008, 1, 1);
        let profiles = vec![
            profile("Instagram", 1, old),
            profile("Instagram", 2, recent),
            profile("Instagram", 3, recent),
            profile("YouTube", 4, ancient),
        ];
        let cdf = creation_cdf(&profiles);
        assert!((cdf.pre_2020 - 0.5).abs() < 1e-9);
        assert!((cdf.last_3_5_years - 0.5).abs() < 1e-9);
        assert!((cdf.youtube_2006_2010 - 1.0).abs() < 1e-9);
        assert!(cdf.per_platform["Instagram"].windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn setup_stats_counts() {
        let mut p1 = profile("X", 1, 0);
        p1.account_type = Some("verified".into());
        p1.category = Some("Brand and Business".into());
        let mut p2 = profile("X", 2, 0);
        p2.location = None;
        let s = setup_stats(&[p1, p2]);
        assert_eq!(s.live_profiles, 2);
        assert_eq!(s.located, 1);
        assert_eq!(s.verified, 1);
        assert_eq!(s.categorized, 1);
        assert_eq!(s.top_locations[0].0, "United States");
    }
}
