//! Machine-readable figure exports.
//!
//! The paper's figures are plots; the [`crate::report`] renderers print
//! their series as text. This module additionally exports each figure's
//! underlying data as CSV so external plotting tools can redraw them.

use crate::dynamics::ListingDynamics;
use crate::setup::CreationCdf;
use acctrade_net::clock::format_date;

/// Figure 2 as CSV: `iteration,cumulative,active`.
pub fn figure2_csv(d: &ListingDynamics) -> String {
    let mut out = String::from("iteration,cumulative,active\n");
    for &(it, cum, act) in &d.series {
        out.push_str(&format!("{},{cum},{act}\n", it + 1));
    }
    out
}

/// Figure 4 as CSV: one `(platform, date, cdf)` row per sample point,
/// down-sampled to at most `max_points` per platform so full-scale
/// exports stay plottable.
pub fn figure4_csv(cdf: &CreationCdf, max_points: usize) -> String {
    let mut out = String::from("platform,date,cdf\n");
    for (platform, dates) in &cdf.per_platform {
        if dates.is_empty() {
            continue;
        }
        let n = dates.len();
        let step = (n / max_points.max(1)).max(1);
        for (i, &date) in dates.iter().enumerate() {
            if i % step != 0 && i != n - 1 {
                continue;
            }
            let f = (i + 1) as f64 / n as f64;
            out.push_str(&format!("{platform},{},{f:.4}\n", format_date(date)));
        }
    }
    out
}

/// Generic histogram CSV for price/follower distributions:
/// `bucket_low,bucket_high,count` over log-spaced buckets.
// conformance: allow(pub-hygiene) — tested figure-generation surface kept as public API
pub fn log_histogram_csv(values: &[f64], buckets_per_decade: usize) -> String {
    let mut out = String::from("bucket_low,bucket_high,count\n");
    let positive: Vec<f64> = values.iter().copied().filter(|&v| v > 0.0).collect();
    if positive.is_empty() {
        return out;
    }
    let lo = positive.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = positive.iter().copied().fold(0.0f64, f64::max);
    let lo_exp = lo.log10().floor();
    let hi_exp = hi.log10().ceil();
    let step = 1.0 / buckets_per_decade.max(1) as f64;
    let mut edge = lo_exp;
    while edge < hi_exp {
        let (a, b) = (10f64.powf(edge), 10f64.powf(edge + step));
        let count = positive.iter().filter(|&&v| v >= a && v < b).count();
        if count > 0 {
            out.push_str(&format!("{a:.2},{b:.2},{count}\n"));
        }
        edge += step;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_crawler::schedule::IterationSnapshot;
    use std::collections::BTreeMap;

    #[test]
    fn figure2_csv_rows() {
        let snaps = vec![
            IterationSnapshot { iteration: 0, at_unix: 0, cumulative_offers: 100, active_offers: 100, new_offers: 100 },
            IterationSnapshot { iteration: 1, at_unix: 1, cumulative_offers: 110, active_offers: 95, new_offers: 10 },
        ];
        let d = ListingDynamics::from_snapshots(&snaps);
        let csv = figure2_csv(&d);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "iteration,cumulative,active");
        assert_eq!(lines[1], "1,100,100");
        assert_eq!(lines[2], "2,110,95");
    }

    #[test]
    fn figure4_csv_downsamples_and_ends_at_1() {
        let mut per_platform = BTreeMap::new();
        per_platform.insert("X".to_string(), (0..1000).map(|i| i * 86_400).collect());
        let cdf = CreationCdf {
            per_platform,
            pre_2020: 1.0,
            last_3_5_years: 0.0,
            youtube_2006_2010: 0.0,
        };
        let csv = figure4_csv(&cdf, 50);
        let lines: Vec<&str> = csv.lines().collect();
        assert!(lines.len() <= 53, "too many rows: {}", lines.len());
        assert!(lines.last().unwrap().ends_with("1.0000"));
    }

    #[test]
    fn log_histogram_counts_everything_positive() {
        let values = vec![1.0, 5.0, 14.0, 157.0, 755.0, 45_000.0, 5_000_000.0, 0.0, -3.0];
        let csv = log_histogram_csv(&values, 2);
        let total: usize = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(2).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 7, "all positive values bucketed exactly once");
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(log_histogram_csv(&[], 3).lines().count(), 1);
        let d = ListingDynamics::from_snapshots(&[]);
        assert_eq!(figure2_csv(&d).lines().count(), 1);
    }
}
