//! §4.2 — Anatomy of underground marketplaces.
//!
//! Consumes the manual-collection records and reproduces the section's
//! findings: per-market post counts and platform coverage, listing length
//! statistics, and the similarity analysis that exposed template reuse
//! (88–100% word similarity, case-insensitive, numbers and punctuation
//! removed).

use acctrade_crawler::record::UndergroundRecord;
use acctrade_text::similarity::similar_pairs;
use std::collections::{BTreeMap, BTreeSet};

/// Per-market summary (§4.2 "Characteristics of the Marketplaces").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MarketSummary {
    /// Market.
    pub market: String,
    /// Posts.
    pub posts: usize,
    /// Sellers.
    pub sellers: usize,
    /// Platforms.
    pub platforms: Vec<String>,
    /// Accounts offered (sums bulk quantities).
    pub accounts_offered: u64,
    /// Avg words.
    pub avg_words: usize,
}

/// A reuse finding: a pair of near-duplicate posts.
#[derive(Debug, Clone, PartialEq)]
pub struct ReusePair {
    /// Market a.
    pub market_a: String,
    /// Market b.
    pub market_b: String,
    /// Author a.
    pub author_a: String,
    /// Author b.
    pub author_b: String,
    /// Similarity.
    pub similarity: f64,
    /// Same author on both sides?
    pub same_author: bool,
    /// Same market on both sides?
    pub same_market: bool,
}

/// The §4.2 analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct UndergroundAnalysis {
    /// Total posts.
    pub total_posts: usize,
    /// Markets.
    pub markets: Vec<MarketSummary>,
    /// Near-duplicate pairs at the paper's 88% threshold.
    pub reuse_pairs: Vec<ReusePair>,
    /// Posts involved in at least one near-duplicate pair, per platform.
    pub near_dup_posts_by_platform: BTreeMap<String, usize>,
    /// Distinct authors behind the near-duplicates.
    pub reuse_authors: usize,
    /// Sellers operating under the same username on several markets.
    pub cross_market_sellers: Vec<String>,
}

/// The paper's similarity threshold.
pub(crate) const SIMILARITY_THRESHOLD: f64 = 0.88;

/// Run the underground analysis.
pub fn analyze(records: &[UndergroundRecord]) -> UndergroundAnalysis {
    // Per-market summaries.
    let mut by_market: BTreeMap<&str, Vec<&UndergroundRecord>> = BTreeMap::new();
    for r in records {
        by_market.entry(r.market.as_str()).or_default().push(r);
    }
    let markets: Vec<MarketSummary> = by_market
        .iter()
        .map(|(market, posts)| {
            let sellers: BTreeSet<&str> = posts.iter().map(|p| p.author.as_str()).collect();
            let platforms: BTreeSet<String> =
                posts.iter().filter_map(|p| p.platform.clone()).collect();
            let accounts: u64 = posts.iter().map(|p| u64::from(p.quantity.unwrap_or(1))).sum();
            let words: usize = posts
                .iter()
                .map(|p| p.body.split_whitespace().count())
                .sum::<usize>()
                / posts.len().max(1);
            MarketSummary {
                market: market.to_string(),
                posts: posts.len(),
                sellers: sellers.len(),
                platforms: platforms.into_iter().collect(),
                accounts_offered: accounts,
                avg_words: words,
            }
        })
        .collect();

    // Similarity analysis over all bodies (case-insensitive, numbers and
    // punctuation stripped by the tokenizer inside `word_similarity`).
    let bodies: Vec<String> = records.iter().map(|r| r.body.clone()).collect();
    let pairs = similar_pairs(&bodies, SIMILARITY_THRESHOLD);
    let reuse_pairs: Vec<ReusePair> = pairs
        .iter()
        .map(|&(i, j, sim)| ReusePair {
            market_a: records[i].market.clone(),
            market_b: records[j].market.clone(),
            author_a: records[i].author.clone(),
            author_b: records[j].author.clone(),
            similarity: sim,
            same_author: records[i].author == records[j].author,
            same_market: records[i].market == records[j].market,
        })
        .collect();

    let mut near_dup_posts: BTreeSet<usize> = BTreeSet::new();
    for &(i, j, _) in &pairs {
        near_dup_posts.insert(i);
        near_dup_posts.insert(j);
    }
    let mut near_dup_posts_by_platform: BTreeMap<String, usize> = BTreeMap::new();
    for &i in &near_dup_posts {
        let platform = records[i].platform.clone().unwrap_or_else(|| "unknown".into());
        *near_dup_posts_by_platform.entry(platform).or_insert(0) += 1;
    }
    let reuse_authors: BTreeSet<&str> = near_dup_posts
        .iter()
        .map(|&i| records[i].author.as_str())
        .collect();

    // Cross-market sellers: same username on more than one market.
    let mut seller_markets: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for r in records {
        seller_markets.entry(r.author.as_str()).or_default().insert(r.market.as_str());
    }
    let cross_market_sellers: Vec<String> = seller_markets
        .iter()
        .filter(|(_, m)| m.len() > 1)
        .map(|(s, _)| s.to_string())
        .collect();

    UndergroundAnalysis {
        total_posts: records.len(),
        markets,
        reuse_pairs,
        near_dup_posts_by_platform,
        reuse_authors: reuse_authors.len(),
        cross_market_sellers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(market: &str, author: &str, platform: &str, body: &str) -> UndergroundRecord {
        UndergroundRecord {
            market: market.into(),
            url: format!("http://x.onion/thread/{body:.8}"),
            title: "t".into(),
            body: body.into(),
            author: author.into(),
            platform: Some(platform.into()),
            published_unix: None,
            replies: None,
            price_usd: Some(40.0),
            quantity: Some(1),
            screenshot: true,
        }
    }

    const TEMPLATE: &str =
        "Selling aged TikTok accounts with organic followers full email access instant delivery escrow accepted message on telegram for bulk pricing";

    #[test]
    fn detects_template_reuse() {
        let records = vec![
            record("Nexus", "v1", "TikTok", TEMPLATE),
            record("Nexus", "v2", "TikTok", TEMPLATE),
            record("Nexus", "v1", "TikTok", "completely different premium youtube channel with monetization enabled"),
        ];
        let a = analyze(&records);
        assert_eq!(a.reuse_pairs.len(), 1);
        assert!(!a.reuse_pairs[0].same_author);
        assert!(a.reuse_pairs[0].same_market);
        assert!(a.reuse_pairs[0].similarity >= SIMILARITY_THRESHOLD);
        assert_eq!(a.near_dup_posts_by_platform["TikTok"], 2);
        assert_eq!(a.reuse_authors, 2);
    }

    #[test]
    fn cross_market_seller_detected() {
        let records = vec![
            record("Nexus", "shadowvendor", "X", "selling x account one"),
            record("Kerberos", "shadowvendor", "X", "selling x account two bulk"),
            record("Nexus", "other", "X", "unrelated listing entirely different words"),
        ];
        let a = analyze(&records);
        assert_eq!(a.cross_market_sellers, vec!["shadowvendor".to_string()]);
    }

    #[test]
    fn market_summaries_aggregate() {
        let records = vec![
            record("Kerberos", "v1", "TikTok", "bulk lot one"),
            {
                let mut r = record("Kerberos", "v1", "X", "bulk lot two");
                r.quantity = Some(50);
                r
            },
        ];
        let a = analyze(&records);
        assert_eq!(a.markets.len(), 1);
        let k = &a.markets[0];
        assert_eq!(k.posts, 2);
        assert_eq!(k.sellers, 1);
        assert_eq!(k.accounts_offered, 51);
        assert_eq!(k.platforms, vec!["TikTok".to_string(), "X".to_string()]);
    }

    #[test]
    fn empty_records() {
        let a = analyze(&[]);
        assert_eq!(a.total_posts, 0);
        assert!(a.markets.is_empty());
        assert!(a.reuse_pairs.is_empty());
    }
}
