#![warn(missing_docs)]

//! # acctrade-core
//!
//! The paper's measurement pipeline: everything between "the crawler
//! collected records" and "the tables in the paper".
//!
//! * [`stats`] — medians, quantiles, CDFs, and table formatting;
//! * [`anatomy`] — §4.1: marketplace anatomy (Tables 1–3, Figure 3, and
//!   the in-text §4.1 statistics);
//! * [`dynamics`] — Figure 2: cumulative vs active listings per
//!   iteration;
//! * [`setup`] — §5: account setup & engagement (Table 4, Figure 4,
//!   locations, categories, account types);
//! * [`scamposts`] — §6: the NLP pipeline (language filter → dedup →
//!   embed → reduce → density-cluster → keywords → vetting) and Tables
//!   5–6;
//! * [`network`] — §7: attribute clustering (Table 7, Figure 5);
//! * [`efficacy`] — §8: detection efficacy (Table 8);
//! * [`underground`] — §4.2: underground-market characteristics and the
//!   listing-similarity analysis;
//! * [`economy`] — the transaction-side tables (E1–E3): escrow order
//!   funnel with exit-scam rates, price-trajectory statistics, and bot
//!   vs human posting cadence, all replayed from the persisted economy
//!   event stream;
//! * [`indicators`] — §9: the paper's *proposed* detection indicators
//!   (referral monitoring, rapid-growth detection), deployed and scored
//!   against ground truth — the experiment the paper recommends but
//!   could not run;
//! * [`report`] — plain-text renderers for every table and figure;
//! * [`study`] — [`study::Study`]: the end-to-end orchestration
//!   (generate world → deploy → crawl campaign → resolve profiles →
//!   moderation → efficacy audit → analyze).

pub mod anatomy;
pub mod dynamics;
pub mod economy;
pub mod efficacy;
pub mod figures;
pub mod indicators;
pub mod network;
pub mod payments_security;
pub mod report;
pub mod scamposts;
pub mod setup;
pub mod stats;
pub mod study;
pub mod underground;

pub use study::{Study, StudyConfig, StudyReport};
