//! Economy analysis: the three transaction-side tables (E1–E3).
//!
//! Everything here is computed from a **replayed** event stream
//! ([`economy::Ledger::replay`]) — never from live engine state — so the
//! persisted WAL stream is the analysis' provenance: equal streams
//! produce byte-identical tables, and a corrupted stream fails loudly
//! instead of skewing a table.
//!
//! * **E1** — the escrow order funnel per marketplace: opened → funded →
//!   delivered → released, with the dispute/refund branch and the
//!   exit-scam rate (the paper can only warn about exit scams; the
//!   simulation books them);
//! * **E2** — price-trajectory statistics per platform: tick counts by
//!   cause (drift / staleness discount / demand shock) and the average
//!   move size;
//! * **E3** — posting cadence, bot-operated inventory accounts versus
//!   human sellers;
//! * plus the payment reconciliation: every settled order's method must
//!   be one its marketplace actually lists (Table 3's matrix).

use crate::stats::{fmt_pct, render_table};
use acctrade_market::config::ALL_MARKETPLACES;
use acctrade_workload::world::World;
use economy::{stream_digest, EconomyEvent, Ledger};
use foundation::json_codec_struct;
use std::collections::BTreeMap;

/// One marketplace's escrow order funnel (E1).
#[derive(Debug, Clone, PartialEq)]
pub struct FunnelRow {
    /// Marketplace display name (`ALL` for the totals row).
    pub marketplace: String,
    /// Orders opened (quotes issued).
    pub opened: usize,
    /// Orders whose escrow was ever funded.
    pub funded: usize,
    /// Orders whose credentials were delivered.
    pub delivered: usize,
    /// Orders released to the seller (happy path).
    pub released: usize,
    /// Orders refunded after a dispute.
    pub refunded: usize,
    /// Orders still mid-lifecycle at campaign end.
    pub in_flight: usize,
    /// Funded orders the seller never delivered (deadline lapsed).
    pub exit_scams: usize,
    /// Quotes never funded (abandoned carts).
    pub abandoned: usize,
    /// `exit_scams / funded`, percent.
    pub exit_scam_rate_pct: f64,
}

/// One platform's price-trajectory statistics (E2).
#[derive(Debug, Clone, PartialEq)]
pub struct PriceRow {
    /// Platform name.
    pub platform: String,
    /// Repricing ticks observed.
    pub ticks: usize,
    /// Ticks caused by random drift.
    pub drift: usize,
    /// Ticks caused by staleness discounts.
    pub stale_discounts: usize,
    /// Ticks caused by demand shocks (sales, disputes, exit scams).
    pub demand_shocks: usize,
    /// Mean absolute move per tick, percent of the previous price.
    pub mean_abs_move_pct: f64,
    /// Mean signed move per tick, percent (the net pressure direction).
    pub net_move_pct: f64,
}

/// One marketplace's posting cadence, bot vs human (E3).
#[derive(Debug, Clone, PartialEq)]
pub struct CadenceRow {
    /// Marketplace display name.
    pub marketplace: String,
    /// Listings posted by registered bot accounts.
    pub bot_posts: usize,
    /// Bot postings per virtual day.
    pub bot_posts_per_day: f64,
    /// Listings posted by human sellers inside the window.
    pub human_posts: usize,
    /// Human postings per virtual day.
    pub human_posts_per_day: f64,
}

/// Settled-order share of one payment category (the reconciliation
/// cross-check against Table 3's marketplace payment matrix).
#[derive(Debug, Clone, PartialEq)]
pub struct PaymentMixRow {
    /// Payment category label (Table 3's row groups).
    pub category: String,
    /// Settled orders paid through this category.
    pub settled_orders: usize,
    /// Share of all settled orders, percent.
    pub share_pct: f64,
}

/// The full economy analysis: E1–E3 plus provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EconomyAnalysis {
    /// Scenario pack the economy ran.
    pub scenario: String,
    /// Events replayed into this analysis.
    pub events: usize,
    /// Deterministic digest of the replayed event stream.
    pub stream_digest: String,
    /// Per-marketplace funnel rows (marketplaces with ≥ 1 order).
    pub funnel: Vec<FunnelRow>,
    /// Funnel totals across all marketplaces.
    pub funnel_all: FunnelRow,
    /// Per-platform price-trajectory rows.
    pub prices: Vec<PriceRow>,
    /// Per-marketplace cadence rows (marketplaces with ≥ 1 bot post).
    pub cadence: Vec<CadenceRow>,
    /// Settled-order payment mix by category.
    pub payment_mix: Vec<PaymentMixRow>,
    /// True iff every settled order's payment method is one its
    /// marketplace lists in the Table 3 matrix.
    pub reconciliation_ok: bool,
}

json_codec_struct! {
    FunnelRow {
        marketplace, opened, funded, delivered, released, refunded,
        in_flight, exit_scams, abandoned, exit_scam_rate_pct,
    }
    PriceRow {
        platform, ticks, drift, stale_discounts, demand_shocks,
        mean_abs_move_pct, net_move_pct,
    }
    CadenceRow {
        marketplace, bot_posts, bot_posts_per_day, human_posts,
        human_posts_per_day,
    }
    PaymentMixRow { category, settled_orders, share_pct }
    EconomyAnalysis {
        scenario, events, stream_digest, funnel, funnel_all, prices,
        cadence, payment_mix, reconciliation_ok,
    }
}

/// Replay `events` and compute every economy table.
///
/// `world` supplies the human-posting side of E3 (listings posted after
/// `t0_unix` by non-bot sellers); `campaign_days` normalises cadences.
pub fn analyze(
    scenario: &str,
    events: &[EconomyEvent],
    world: &World,
    t0_unix: i64,
    campaign_days: f64,
) -> Result<EconomyAnalysis, String> {
    let ledger = Ledger::replay(events).map_err(|e| e.to_string())?;
    let days = campaign_days.max(f64::MIN_POSITIVE);

    // -- E1: the order funnel. Path position is implied by final state
    // (the machine has no shortcuts: Released implies Funded etc.).
    let mut per_market: BTreeMap<&str, FunnelRow> = BTreeMap::new();
    for order in ledger.orders.values() {
        let row = per_market
            .entry(order.marketplace.as_str())
            .or_insert_with(|| blank_funnel(&order.marketplace));
        use economy::OrderState::*;
        row.opened += 1;
        match order.state {
            Quoted => row.abandoned += 1,
            Funded => {
                row.funded += 1;
                row.in_flight += 1;
            }
            CredentialsDelivered | Disputed => {
                row.funded += 1;
                row.delivered += 1;
                row.in_flight += 1;
            }
            Released => {
                row.funded += 1;
                row.delivered += 1;
                row.released += 1;
            }
            Refunded => {
                row.funded += 1;
                row.delivered += 1;
                row.refunded += 1;
            }
            ExitScam => {
                row.funded += 1;
                row.exit_scams += 1;
            }
        }
    }
    let mut funnel: Vec<FunnelRow> = per_market.into_values().collect();
    let mut funnel_all = blank_funnel("ALL");
    for row in &mut funnel {
        funnel_all.opened += row.opened;
        funnel_all.funded += row.funded;
        funnel_all.delivered += row.delivered;
        funnel_all.released += row.released;
        funnel_all.refunded += row.refunded;
        funnel_all.in_flight += row.in_flight;
        funnel_all.exit_scams += row.exit_scams;
        funnel_all.abandoned += row.abandoned;
        row.exit_scam_rate_pct = rate_pct(row.exit_scams, row.funded);
    }
    funnel_all.exit_scam_rate_pct = rate_pct(funnel_all.exit_scams, funnel_all.funded);

    // -- E2: price trajectories per platform.
    let mut price_rows: BTreeMap<&str, (PriceRow, f64, f64)> = BTreeMap::new();
    for tick in &ledger.ticks {
        let entry = price_rows.entry(tick.platform.as_str()).or_insert_with(|| {
            (
                PriceRow {
                    platform: tick.platform.clone(),
                    ticks: 0,
                    drift: 0,
                    stale_discounts: 0,
                    demand_shocks: 0,
                    mean_abs_move_pct: 0.0,
                    net_move_pct: 0.0,
                },
                0.0,
                0.0,
            )
        });
        let (row, abs_sum, signed_sum) = entry;
        row.ticks += 1;
        match tick.cause.as_str() {
            economy::event::CAUSE_DRIFT => row.drift += 1,
            economy::event::CAUSE_STALE_DISCOUNT => row.stale_discounts += 1,
            _ => row.demand_shocks += 1,
        }
        if tick.prev_usd > 0.0 {
            let move_pct = (tick.new_usd - tick.prev_usd) / tick.prev_usd * 100.0;
            *abs_sum += move_pct.abs();
            *signed_sum += move_pct;
        }
    }
    let prices: Vec<PriceRow> = price_rows
        .into_values()
        .map(|(mut row, abs_sum, signed_sum)| {
            let n = row.ticks.max(1) as f64;
            row.mean_abs_move_pct = abs_sum / n;
            row.net_move_pct = signed_sum / n;
            row
        })
        .collect();

    // -- E3: bot vs human posting cadence. Bots are identified by the
    // ledger's registration events; human posts are window listings by
    // anyone else.
    let mut cadence: Vec<CadenceRow> = Vec::new();
    if !ledger.bot_posts.is_empty() {
        let mut bot_posts: BTreeMap<&str, usize> = BTreeMap::new();
        for post in &ledger.bot_posts {
            *bot_posts.entry(post.marketplace.as_str()).or_default() += 1;
        }
        for (market_name, bots) in bot_posts {
            let market = ALL_MARKETPLACES.iter().find(|m| m.name() == market_name);
            let humans = match market {
                Some(&m) => {
                    let bot_ids = ledger.bot_listings.get(market_name);
                    let state = world.markets[&m].read();
                    state
                        .listings_sorted()
                        .iter()
                        .filter(|l| l.listed_unix > t0_unix)
                        .filter(|l| !bot_ids.is_some_and(|ids| ids.contains(&l.id.0)))
                        .count()
                }
                None => 0,
            };
            cadence.push(CadenceRow {
                marketplace: market_name.to_string(),
                bot_posts: bots,
                bot_posts_per_day: bots as f64 / days,
                human_posts: humans,
                human_posts_per_day: humans as f64 / days,
            });
        }
    }

    // -- Payment reconciliation: settled orders against the Table 3
    // matrix the listings advertise.
    let mut by_category: BTreeMap<String, usize> = BTreeMap::new();
    let mut settled_total = 0usize;
    let mut reconciliation_ok = true;
    for (_, order) in ledger.settled() {
        settled_total += 1;
        *by_category
            .entry(format!("{:?}", order.method.category()))
            .or_default() += 1;
        let listed = ALL_MARKETPLACES
            .iter()
            .find(|m| m.name() == order.marketplace)
            .is_some_and(|m| m.config().payment_methods.contains(&order.method));
        if !listed {
            reconciliation_ok = false;
        }
    }
    let payment_mix: Vec<PaymentMixRow> = by_category
        .into_iter()
        .map(|(category, settled_orders)| PaymentMixRow {
            category,
            settled_orders,
            share_pct: rate_pct(settled_orders, settled_total),
        })
        .collect();

    Ok(EconomyAnalysis {
        scenario: scenario.to_string(),
        events: events.len(),
        stream_digest: stream_digest(events),
        funnel,
        funnel_all,
        prices,
        cadence,
        payment_mix,
        reconciliation_ok,
    })
}

impl EconomyAnalysis {
    /// Serialize to pretty JSON (the `ECONOMY_report.json` artifact).
    pub fn to_json_pretty(&self) -> String {
        foundation::json::to_string_pretty(self)
    }

    /// Render E1–E3 and the reconciliation as one text section.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Economy: scenario {} ({} events, stream digest {})\n\n",
            self.scenario, self.events, self.stream_digest
        ));

        let funnel_body: Vec<Vec<String>> = self
            .funnel
            .iter()
            .chain(std::iter::once(&self.funnel_all))
            .map(|r| {
                vec![
                    r.marketplace.clone(),
                    r.opened.to_string(),
                    r.abandoned.to_string(),
                    r.funded.to_string(),
                    r.delivered.to_string(),
                    r.released.to_string(),
                    r.refunded.to_string(),
                    r.in_flight.to_string(),
                    r.exit_scams.to_string(),
                    format!("{}%", fmt_pct(r.exit_scam_rate_pct)),
                ]
            })
            .collect();
        out.push_str("Economy E1: Escrow order funnel\n");
        out.push_str(&render_table(
            &[
                "Marketplace",
                "Opened",
                "Abandoned",
                "Funded",
                "Delivered",
                "Released",
                "Refunded",
                "In flight",
                "Exit scams",
                "Exit-scam rate",
            ],
            &funnel_body,
        ));
        out.push('\n');

        let price_body: Vec<Vec<String>> = self
            .prices
            .iter()
            .map(|r| {
                vec![
                    r.platform.clone(),
                    r.ticks.to_string(),
                    r.drift.to_string(),
                    r.stale_discounts.to_string(),
                    r.demand_shocks.to_string(),
                    format!("{}%", fmt_pct(r.mean_abs_move_pct)),
                    format!("{}%", fmt_pct(r.net_move_pct)),
                ]
            })
            .collect();
        out.push_str("Economy E2: Price trajectories per platform\n");
        out.push_str(&render_table(
            &["Platform", "Ticks", "Drift", "Stale disc.", "Shocks", "Mean |move|", "Net move"],
            &price_body,
        ));
        out.push('\n');

        let cadence_body: Vec<Vec<String>> = self
            .cadence
            .iter()
            .map(|r| {
                vec![
                    r.marketplace.clone(),
                    r.bot_posts.to_string(),
                    format!("{:.2}", r.bot_posts_per_day),
                    r.human_posts.to_string(),
                    format!("{:.2}", r.human_posts_per_day),
                ]
            })
            .collect();
        out.push_str("Economy E3: Posting cadence, bot vs human\n");
        out.push_str(&render_table(
            &["Marketplace", "Bot posts", "Bot/day", "Human posts", "Human/day"],
            &cadence_body,
        ));
        out.push('\n');

        let mix_body: Vec<Vec<String>> = self
            .payment_mix
            .iter()
            .map(|r| {
                vec![
                    r.category.clone(),
                    r.settled_orders.to_string(),
                    format!("{}%", fmt_pct(r.share_pct)),
                ]
            })
            .collect();
        out.push_str("Economy: settled-order payment mix\n");
        out.push_str(&render_table(&["Category", "Settled orders", "Share"], &mix_body));
        out.push_str(&format!(
            "Payment reconciliation: {}\n",
            if self.reconciliation_ok {
                "OK — every settled order used a method its marketplace lists (Table 3)"
            } else {
                "MISMATCH — a settled order used a method its marketplace does not list"
            }
        ));
        out
    }
}

fn blank_funnel(marketplace: &str) -> FunnelRow {
    FunnelRow {
        marketplace: marketplace.to_string(),
        opened: 0,
        funded: 0,
        delivered: 0,
        released: 0,
        refunded: 0,
        in_flight: 0,
        exit_scams: 0,
        abandoned: 0,
        exit_scam_rate_pct: 0.0,
    }
}

fn rate_pct(part: usize, whole: usize) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_workload::world::WorldParams;
    use economy::{EconomyConfig, EconomySim};

    #[test]
    fn analysis_of_a_simulated_economy() {
        let seed = 2024;
        let mut world = World::generate(WorldParams { seed, scale: 0.01 });
        let cfg = EconomyConfig::scenario("all").unwrap();
        let mut sim = EconomySim::new(seed, 0.01, cfg);
        let t0 = 1_706_745_600;
        sim.prime(&mut world, t0);
        for step in 1..=4i64 {
            let at = t0 + step * 15 * 86_400;
            world.step_iteration(at);
            sim.advance_to(&mut world, at);
        }

        let analysis = analyze("all", sim.events(), &world, t0, 60.0).unwrap();
        assert_eq!(analysis.events, sim.events().len());
        assert!(analysis.funnel_all.opened > 0);
        assert!(analysis.funnel_all.released > 0, "some order settles");
        assert!(analysis.funnel_all.funded <= analysis.funnel_all.opened);
        assert!(!analysis.prices.is_empty(), "pricing engine ticked");
        assert!(!analysis.cadence.is_empty(), "bots posted");
        assert!(analysis.reconciliation_ok, "methods must come from the Table 3 matrix");

        // The analysis is a pure function of the stream: same events,
        // same tables, byte for byte (JSON compares whole trees).
        let again = analyze("all", sim.events(), &world, t0, 60.0).unwrap();
        assert_eq!(
            foundation::json::to_string(&analysis),
            foundation::json::to_string(&again)
        );

        // And it renders.
        let text = analysis.render();
        for needle in ["Economy E1", "Economy E2", "Economy E3", "Payment reconciliation: OK"] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn empty_stream_analyzes_to_empty_tables() {
        let world = World::generate(WorldParams { seed: 3, scale: 0.005 });
        let analysis = analyze("escrow-basic", &[], &world, 0, 60.0).unwrap();
        assert_eq!(analysis.funnel_all.opened, 0);
        assert!(analysis.prices.is_empty());
        assert!(analysis.cadence.is_empty());
        assert!(analysis.reconciliation_ok);
    }

    #[test]
    fn corrupted_stream_is_rejected() {
        use economy::event::{EconomyEvent, EventKind};
        let world = World::generate(WorldParams { seed: 3, scale: 0.005 });
        // A transition for an order that was never opened.
        let mut e = EconomyEvent::blank(0, 10, 2_000_001, EventKind::OrderTransition);
        e.order = Some(1);
        e.cause = Some("Fund".into());
        assert!(analyze("all", &[e], &world, 0, 60.0).is_err());
    }
}
