//! Plain-text renderers: one function per table/figure, printing the same
//! rows the paper reports.

use crate::anatomy::{AnatomyStats, Table1Row, Table2Row};
use crate::dynamics::ListingDynamics;
use crate::efficacy::EfficacyAnalysis;
use crate::network::NetworkAnalysis;
use crate::scamposts::ScamAnalysis;
use crate::setup::{CreationCdf, SetupStats, Table4Row};
use crate::stats::{fmt_count, fmt_pct, fmt_usd, render_table};
use crate::underground::UndergroundAnalysis;
use acctrade_crawler::record::OfferRecord;
use acctrade_market::config::{channel_inventory, ChannelCategory};

/// Table 1 — marketplaces, sellers, accounts.
pub fn render_table1(rows: &[Table1Row]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.marketplace.clone(),
                r.sellers.map(|s| fmt_count(s as u64)).unwrap_or_else(|| "-".into()),
                fmt_count(r.accounts as u64),
            ]
        })
        .collect();
    let total_sellers: usize = rows.iter().filter_map(|r| r.sellers).sum();
    let total_accounts: usize = rows.iter().map(|r| r.accounts).sum();
    body.push(vec![
        "Total".into(),
        fmt_count(total_sellers as u64),
        fmt_count(total_accounts as u64),
    ]);
    format!(
        "Table 1: Public marketplace sellers and advertised accounts\n{}",
        render_table(&["Public Marketplace", "Sellers", "Accounts"], &body)
    )
}

/// Table 2 — per-platform collection overview.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                fmt_count(r.visible_accounts as u64),
                fmt_count(r.visible_posts as u64),
                fmt_count(r.all_accounts as u64),
            ]
        })
        .collect();
    body.push(vec![
        "Total".into(),
        fmt_count(rows.iter().map(|r| r.visible_accounts as u64).sum()),
        fmt_count(rows.iter().map(|r| r.visible_posts as u64).sum()),
        fmt_count(rows.iter().map(|r| r.all_accounts as u64).sum()),
    ]);
    format!(
        "Table 2: Social media data collection\n{}",
        render_table(
            &["Social Media", "Visible Accounts", "Visible Accts. Posts", "All Accounts"],
            &body
        )
    )
}

/// Table 3 — payment-method support matrix.
pub fn render_table3() -> String {
    let rows = crate::anatomy::table3();
    let mut body = Vec::new();
    let mut last_cat = None;
    for (cat, method, supporters) in rows {
        if last_cat != Some(cat) {
            body.push(vec![format!("[{}]", cat.label()), String::new()]);
            last_cat = Some(cat);
        }
        let names: Vec<&str> = supporters.iter().map(|m| m.name()).collect();
        body.push(vec![format!("  {}", method.label()), names.join(", ")]);
    }
    format!(
        "Table 3: Payment methods supported by marketplaces\n{}",
        render_table(&["Payment Method", "Marketplaces"], &body)
    )
}

/// Table 4 — follower min/median/max of visible accounts.
pub fn render_table4(rows: &[Table4Row]) -> String {
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                fmt_count(r.min),
                fmt_count(r.median),
                fmt_count(r.max),
            ]
        })
        .collect();
    format!(
        "Table 4: Followers of visible advertised accounts\n{}",
        render_table(&["Social Media", "Min", "Median", "Max"], &body)
    )
}

/// Table 5 — scam accounts/posts per platform.
pub fn render_table5(analysis: &ScamAnalysis) -> String {
    let mut body: Vec<Vec<String>> = analysis
        .table5
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                fmt_count(r.scam_accounts as u64),
                fmt_count(r.scam_posts as u64),
            ]
        })
        .collect();
    body.push(vec![
        "Total".into(),
        fmt_count(analysis.total_scam_accounts as u64),
        fmt_count(analysis.total_scam_posts as u64),
    ]);
    format!(
        "Table 5: Scam accounts and posts per platform\n{}",
        render_table(&["Social Media", "Scam Accounts", "Scam Posts"], &body)
    )
}

/// Table 6 — scam taxonomy.
pub fn render_table6(analysis: &ScamAnalysis) -> String {
    let mut body = Vec::new();
    for row in &analysis.table6 {
        body.push(vec![
            row.category.label().to_string(),
            fmt_count(row.accounts as u64),
            fmt_count(row.posts as u64),
        ]);
        for (sub, accounts, posts) in &row.subrows {
            body.push(vec![
                format!("- {}", sub.label()),
                fmt_count(*accounts as u64),
                fmt_count(*posts as u64),
            ]);
        }
    }
    format!(
        "Table 6: Fraudulent offer types across scammer posts\n{}",
        render_table(&["Category", "Accounts", "Posts"], &body)
    )
}

/// Table 7 — network clusters.
pub fn render_table7(analysis: &NetworkAnalysis) -> String {
    let body: Vec<Vec<String>> = analysis
        .rows
        .iter()
        .chain(std::iter::once(&analysis.all_row))
        .map(|r| {
            vec![
                r.platform.clone(),
                r.attributes.to_string(),
                r.min_size.to_string(),
                r.max_size.to_string(),
                r.median_size.to_string(),
                fmt_count(r.clusters as u64),
                fmt_count(r.cluster_accounts as u64),
                fmt_count(r.singletons as u64),
                format!("{}%", fmt_pct(r.clustered_pct)),
            ]
        })
        .collect::<Vec<_>>();
    format!(
        "Table 7: Network cluster detail\n{}",
        render_table(
            &[
                "Social Media",
                "Cluster Attributes",
                "Min",
                "Max",
                "Median",
                "Clusters",
                "Cluster Accts.",
                "Singleton",
                "Overall Cluster Accts.",
            ],
            &body
        )
    )
}

/// Table 8 — detection efficacy.
pub fn render_table8(analysis: &EfficacyAnalysis) -> String {
    let body: Vec<Vec<String>> = analysis
        .rows
        .iter()
        .chain(std::iter::once(&analysis.all_row))
        .map(|r| {
            vec![
                r.platform.clone(),
                fmt_count(r.visible_accounts as u64),
                fmt_count(r.inactive_accounts as u64),
                fmt_pct(r.blocking_efficacy_pct),
            ]
        })
        .collect();
    format!(
        "Table 8: Detection efficacy\n{}",
        render_table(
            &["Social Media", "Visible Accounts", "Inactive Accounts", "Blocking Efficacy"],
            &body
        )
    )
}

/// Table 9 — the trading-channel inventory.
pub fn render_table9() -> String {
    let inv = channel_inventory();
    let body: Vec<Vec<String>> = inv
        .iter()
        .map(|c| {
            let mark = |b: bool| if b { "●" } else { "○" }.to_string();
            vec![
                match c.category {
                    ChannelCategory::Public => "Public",
                    ChannelCategory::Underground => "Underground",
                    ChannelCategory::Contact => "Contact",
                }
                .to_string(),
                c.channel.to_string(),
                format!("{:?}", c.channel_type),
                c.source.to_string(),
                mark(c.selling),
                mark(c.handles_public),
                mark(c.monitored),
            ]
        })
        .collect();
    format!(
        "Table 9: Trading channels identified\n{}",
        render_table(
            &["Category", "Channel", "Type", "Source", "Selling", "Handles", "Monitored"],
            &body
        )
    )
}

/// Figure 1 — the evaluation setup (the paper's pipeline diagram, as
/// text). Static: it describes the architecture, not data.
pub fn render_figure1() -> String {
    "\
Figure 1: Evaluation setup
  (1) Collect marketplaces   manual search -> 58 websites + 9 contacts;
                             11 public markets with visible handles kept,
                             8 underground Tor markets inspected
  (2) Data collection        crawler: storefront -> listing pages -> every
                             offer (DFS, polite, robots-respecting);
                             platform APIs: profile metadata + timelines
                             for every visible account; manual Tor
                             collection for underground forums
  (3) Tracking & analysis    marketplace anatomy (4), account setup (5),
                             scam-post clustering (6), network analysis (7),
                             detection efficacy (8)
"
    .to_string()
}

/// Figure 2 — cumulative vs active listings (text series).
pub fn render_figure2(d: &ListingDynamics) -> String {
    let body: Vec<Vec<String>> = d
        .series
        .iter()
        .map(|&(it, cum, act)| {
            vec![
                format!("{}", it + 1),
                fmt_count(cum as u64),
                fmt_count(act as u64),
            ]
        })
        .collect();
    format!(
        "Figure 2: Cumulative and active listings per crawl iteration\n{}\nretired={} replenished={}\n",
        render_table(&["Iteration", "Cumulative", "Active"], &body),
        fmt_count(d.total_retired as u64),
        fmt_count(d.total_replenished as u64),
    )
}

/// Figure 3 — the extreme-price listing.
pub fn render_figure3(outlier: Option<&OfferRecord>) -> String {
    match outlier {
        Some(o) => format!(
            "Figure 3: Highest-priced listing observed\n  marketplace: {}\n  title:       {}\n  price:       {}\n  followers:   {}\n",
            o.marketplace,
            o.title,
            o.price_usd.map(fmt_usd).unwrap_or_else(|| "-".into()),
            o.claimed_followers.map(fmt_count).unwrap_or_else(|| "-".into()),
        ),
        None => "Figure 3: no priced listings collected\n".to_string(),
    }
}

/// Figure 4 — creation-date CDF anchors.
pub fn render_figure4(cdf: &CreationCdf) -> String {
    let mut out = String::from("Figure 4: Account creation dates (CDF anchors)\n");
    out.push_str(&format!(
        "  created before 2020:            {:.1}%\n",
        cdf.pre_2020 * 100.0
    ));
    out.push_str(&format!(
        "  created within last 3.5 years:  {:.1}%\n",
        cdf.last_3_5_years * 100.0
    ));
    out.push_str(&format!(
        "  YouTube created 2006-2010:      {:.2}%\n",
        cdf.youtube_2006_2010 * 100.0
    ));
    for (platform, dates) in &cdf.per_platform {
        if let (Some(&first), Some(&last)) = (dates.first(), dates.last()) {
            out.push_str(&format!(
                "  {platform}: {} accounts, {} .. {}\n",
                fmt_count(dates.len() as u64),
                acctrade_net::clock::format_date(first),
                acctrade_net::clock::format_date(last),
            ));
        }
    }
    out
}

/// Figure 5 — cluster exemplars.
pub fn render_figure5(analysis: &NetworkAnalysis) -> String {
    let mut out = String::from("Figure 5: Example clustered profile descriptions\n");
    for c in crate::network::figure5_exemplars(analysis, 3) {
        // Cluster keys are "<kind>:<value>"; show only the value.
        let value = c.shared_value.split_once(':').map(|(_, v)| v).unwrap_or(&c.shared_value);
        out.push_str(&format!("  [{} x{}] {value}\n", c.platform, c.handles.len()));
    }
    out
}

/// §4.1 in-text statistics.
pub fn render_anatomy(a: &AnatomyStats) -> String {
    let mut out = String::from("Section 4.1: Anatomy of public marketplaces\n");
    out.push_str(&format!("  advertised accounts:    {}\n", fmt_count(a.total_offers as u64)));
    out.push_str(&format!("  distinct sellers:       {}\n", fmt_count(a.total_sellers as u64)));
    if let Some(m) = a.seller_count_median {
        out.push_str(&format!("  median sellers/market:  {}\n", fmt_count(m as u64)));
    }
    out.push_str(&format!("  seller countries:       {}\n", a.seller_countries));
    out.push_str(&format!(
        "  uncategorized listings: {} ({:.0}%)\n",
        fmt_count(a.uncategorized as u64),
        100.0 * a.uncategorized as f64 / a.total_offers.max(1) as f64
    ));
    out.push_str(&format!("  distinct categories:    {}\n", a.distinct_categories));
    for (c, n) in &a.top_categories {
        out.push_str(&format!("    top category: {c} ({})\n", fmt_count(*n as u64)));
    }
    out.push_str(&format!(
        "  verified claims:        {} (all YouTube: {}, no links: {})\n",
        a.verified_claims, a.verified_claims_all_youtube, a.verified_claims_without_links
    ));
    out.push_str(&format!(
        "  monetized listings:     {} (median {}, total {}/month)\n",
        a.monetized,
        a.monetization_median_usd.map(fmt_usd).unwrap_or_else(|| "-".into()),
        fmt_usd(a.monetization_total_usd)
    ));
    out.push_str(&format!("  with description:       {}\n", fmt_count(a.described as u64)));
    for (label, n) in &a.description_strategies {
        out.push_str(&format!("    strategy \"{label}\": {}\n", fmt_count(*n as u64)));
    }
    out.push_str(&format!("  followers shown:        {}\n", fmt_count(a.followers_shown as u64)));
    out.push_str("  median price per platform:\n");
    for (p, m) in &a.price_medians {
        out.push_str(&format!("    {p}: {}\n", fmt_usd(*m)));
    }
    out.push_str(&format!(
        "  total advertised value: {} (median {})\n",
        fmt_usd(a.price_total_usd),
        a.overall_price_median_usd.map(fmt_usd).unwrap_or_else(|| "-".into())
    ));
    out.push_str(&format!(
        "  premium (> $20k):       {} listings, median {}, max {}, sum {}\n",
        a.premium_count,
        a.premium_median_usd.map(fmt_usd).unwrap_or_else(|| "-".into()),
        fmt_usd(a.premium_max_usd),
        fmt_usd(a.premium_total_usd)
    ));
    out
}

/// §5 in-text statistics.
pub fn render_setup(s: &SetupStats) -> String {
    let mut out = String::from("Section 5: Account setup\n");
    out.push_str(&format!("  live profiles:       {}\n", fmt_count(s.live_profiles as u64)));
    out.push_str(&format!(
        "  with location:       {} across {} distinct locations\n",
        fmt_count(s.located as u64),
        s.distinct_locations
    ));
    for (l, n) in &s.top_locations {
        out.push_str(&format!("    top location: {l} ({n})\n"));
    }
    out.push_str(&format!(
        "  with category:       {} across {} categories\n",
        fmt_count(s.categorized as u64),
        s.distinct_categories
    ));
    out.push_str(&format!(
        "  account types: business={} verified={} private={} protected={}\n",
        s.business, s.verified, s.private, s.protected
    ));
    out
}

/// §4.2 underground findings.
pub fn render_underground(u: &UndergroundAnalysis) -> String {
    let mut out = String::from("Section 4.2: Underground marketplaces\n");
    out.push_str(&format!("  posts collected: {}\n", u.total_posts));
    for m in &u.markets {
        out.push_str(&format!(
            "  {}: {} posts, {} sellers, {} accounts offered, avg {} words, platforms: {}\n",
            m.market,
            m.posts,
            m.sellers,
            m.accounts_offered,
            m.avg_words,
            m.platforms.join("/")
        ));
    }
    out.push_str(&format!(
        "  near-duplicate pairs (>= 88% similarity): {}\n",
        u.reuse_pairs.len()
    ));
    for (platform, n) in &u.near_dup_posts_by_platform {
        out.push_str(&format!("    {platform}: {n} near-duplicate posts\n"));
    }
    out.push_str(&format!("  authors behind duplicates: {}\n", u.reuse_authors));
    out.push_str(&format!(
        "  cross-market sellers: {}\n",
        if u.cross_market_sellers.is_empty() {
            "none".to_string()
        } else {
            u.cross_market_sellers.join(", ")
        }
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_renders_totals() {
        let rows = vec![
            Table1Row { marketplace: "Accsmarket".into(), sellers: Some(10), accounts: 100 },
            Table1Row { marketplace: "SocialTradia".into(), sellers: None, accounts: 50 },
        ];
        let t = render_table1(&rows);
        assert!(t.contains("Accsmarket"));
        assert!(t.contains("Total"));
        assert!(t.contains("150"));
        assert!(t.contains('-'), "hidden sellers render as dash");
    }

    #[test]
    fn table9_covers_inventory() {
        let t = render_table9();
        assert!(t.contains("accsmarket.com"));
        assert!(t.contains("Nexus Market"));
        assert!(t.contains("t.me/BusinessAts"));
        assert!(t.lines().count() > 60);
    }

    #[test]
    fn table3_groups_by_category() {
        let t = render_table3();
        assert!(t.contains("[Crypto]"));
        assert!(t.contains("PayPal"));
        assert!(t.contains("Z2U"));
    }

    #[test]
    fn figure3_handles_missing() {
        assert!(render_figure3(None).contains("no priced listings"));
    }
}
