//! §6 — Scam post analysis.
//!
//! The paper's pipeline, reimplemented end to end:
//!
//! 1. keep English posts (CLD2 → our trigram language filter);
//! 2. deduplicate posts to distinct documents (the template-generated
//!    corpus collapses heavily; the real one did too, which is why topic
//!    modeling worked at 205K posts);
//! 3. embed documents (all-mpnet-base-v2 → hashed n-gram embeddings),
//!    reduce (UMAP → PCA), and density-cluster (HDBSCAN → our
//!    HDBSCAN-lite, with a DBSCAN backend for the ablation bench);
//! 4. extract per-cluster keywords (KeyBERT → c-TF-IDF);
//! 5. *vet* each cluster by sampling up to 25 posts and matching them
//!    against analyst keyword lists — the stand-in for the authors'
//!    manual qualitative analysis;
//! 6. roll vetted clusters up into the six scam categories and sixteen
//!    subcategories of Table 6, and count scam accounts/posts per
//!    platform for Table 5.

use acctrade_crawler::record::PostRecord;
use acctrade_text::cluster::{dbscan, hdbscan, members_by_cluster, ClusterParams};
use acctrade_text::embed::Embedder;
use acctrade_text::keywords::class_tfidf_keywords;
use acctrade_text::langdetect::is_english;
use acctrade_text::reduce::pca_reduce;
use acctrade_text::tokenize::tokenize_content;
use acctrade_workload::textgen::{ScamCategory, ScamSubcategory, ALL_SUBCATEGORIES};
use foundation::rng::{IndexedRandom, RngExt, SeedableRng};
use foundation::rng::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};

/// Clustering backend (ablation switch).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterBackend {
    /// HDBSCAN-lite (the paper-faithful default).
    /// Hdbscan.
    Hdbscan {
        /// Minimum condensed-cluster size (and density parameter).
        min_cluster_size: usize,
    },
    /// Plain DBSCAN at a fixed radius.
    /// Dbscan.
    Dbscan {
        /// Neighborhood radius in the reduced embedding space.
        eps: f64,
        /// Minimum neighbors (incl. self) for a core point.
        min_pts: usize,
    },
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct ScamPipelineConfig {
    /// Embed dim.
    pub embed_dim: usize,
    /// Reduce dim.
    pub reduce_dim: usize,
    /// Backend.
    pub backend: ClusterBackend,
    /// Posts sampled per cluster for vetting (the paper used 25).
    pub vetting_sample: usize,
    /// Fraction of vetted samples that must match one category.
    pub vetting_threshold: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for ScamPipelineConfig {
    fn default() -> Self {
        ScamPipelineConfig {
            embed_dim: 192,
            reduce_dim: 48,
            backend: ClusterBackend::Hdbscan { min_cluster_size: 3 },
            vetting_sample: 25,
            vetting_threshold: 0.4,
            seed: 0x5CA4,
        }
    }
}

/// One discovered cluster after vetting.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterInfo {
    /// Id.
    pub id: usize,
    /// Distinct documents in the cluster.
    pub documents: usize,
    /// Posts (with multiplicity) the cluster covers.
    pub posts: usize,
    /// c-TF-IDF keywords.
    pub keywords: Vec<String>,
    /// Vetting outcome: scam category, when the cluster is scam-related.
    pub category: Option<ScamCategory>,
    /// Subcategory.
    pub subcategory: Option<ScamSubcategory>,
}

/// One Table 5 row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table5Row {
    /// Platform.
    pub platform: String,
    /// Scam accounts.
    pub scam_accounts: usize,
    /// Scam posts.
    pub scam_posts: usize,
}

/// One Table 6 row (category with subcategory breakdown).
#[derive(Debug, Clone, PartialEq)]
pub struct Table6Row {
    /// Category.
    pub category: ScamCategory,
    /// Accounts.
    pub accounts: usize,
    /// Posts.
    pub posts: usize,
    /// Subrows.
    pub subrows: Vec<(ScamSubcategory, usize, usize)>,
}

/// The full §6 analysis output.
#[derive(Debug, Clone, PartialEq)]
pub struct ScamAnalysis {
    /// Total posts.
    pub total_posts: usize,
    /// English posts.
    pub english_posts: usize,
    /// Unique documents.
    pub unique_documents: usize,
    /// Clusters.
    pub clusters: Vec<ClusterInfo>,
    /// Scam cluster count.
    pub scam_cluster_count: usize,
    /// Table5.
    pub table5: Vec<Table5Row>,
    /// Table6.
    pub table6: Vec<Table6Row>,
    /// Total scam accounts.
    pub total_scam_accounts: usize,
    /// Total scam posts.
    pub total_scam_posts: usize,
}

/// Analyst keyword lists per subcategory — the qualitative-coding
/// codebook an analyst builds while reading sampled posts.
pub(crate) fn subcategory_keywords(sub: ScamSubcategory) -> &'static [&'static str] {
    use ScamSubcategory::*;
    match sub {
        CryptoScams => &["signals", "trading", "investment", "deposit", "wallet", "profit", "pool", "returns"],
        NftGiveaway => &["nft", "mint", "whitelist", "drops"],
        FinancialConsulting => &["consultant", "consulting", "portfolio", "savings", "offshore", "wealth"],
        CharityExploitation => &["donate", "donation", "shelter", "surgery", "orphans", "flood", "victims"],
        PhishingTrends => &["challenge", "viral", "badge", "trend", "qualify", "viewed"],
        PhishingChat => &["security", "code", "notice", "draw", "unusual", "expires"],
        ProductPromotion => &["serum", "smartwatch", "designer", "warehouse", "clearance", "skincare", "units"],
        FakeTravel => &["vacation", "flights", "hotel", "resort", "honeymoon", "travelers", "inclusive"],
        VehicleFraud => &["rent", "rental", "deployment", "abroad", "reserves", "holds"],
        SportsBetting => &["betting", "odds", "jersey", "picks", "kickoff", "merch", "fixed"],
        FakeEducation => &["diploma", "scholarship", "enroll", "academy", "exams", "students"],
        Catphishing => &["lonely", "babe", "date", "photos", "private"],
        PublicFigureImpersonation => &["fans", "announcement", "celebrities", "founder", "billionaire", "influencer"],
        FakeTechSupport => &["helpdesk", "microsoft", "license", "infection", "remotely", "restores"],
        LikeFollowRequests => &["follow", "subscribe", "train", "winners", "exclusive"],
        GreetingsMotivation => &["morning", "blessed", "motivation", "humble", "grinding", "positive", "vibes"],
    }
}

/// Run the full pipeline on collected posts.
///
/// ```
/// use acctrade_core::scamposts::{analyze, synthetic_posts, ScamPipelineConfig};
///
/// let posts = synthetic_posts(8, 3, 1); // labeled mini-corpus
/// let analysis = analyze(&posts, ScamPipelineConfig::default());
/// assert_eq!(analysis.total_posts, posts.len());
/// assert!(analysis.unique_documents <= posts.len());
/// ```
pub fn analyze(posts: &[PostRecord], cfg: ScamPipelineConfig) -> ScamAnalysis {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x6CA3_0000_0000_0001);

    // 1+2: normalize, deduplicate, and language-filter distinct documents.
    let mut doc_index: BTreeMap<String, usize> = BTreeMap::new();
    let mut documents: Vec<String> = Vec::new();
    let mut doc_posts: Vec<Vec<usize>> = Vec::new(); // doc -> post indices
    let mut english_posts = 0usize;

    for (pi, post) in posts.iter().enumerate() {
        let key = tokenize_content(&post.text).join(" ");
        let di = *doc_index.entry(key).or_insert_with(|| {
            documents.push(post.text.clone());
            doc_posts.push(Vec::new());
            documents.len() - 1
        });
        doc_posts[di].push(pi);
    }
    let doc_is_english: Vec<bool> = documents.iter().map(|d| is_english(d)).collect();
    for (di, posts_of) in doc_posts.iter().enumerate() {
        if doc_is_english[di] {
            english_posts += posts_of.len();
        }
    }

    // English-only document view.
    let eng_docs: Vec<usize> = (0..documents.len()).filter(|&d| doc_is_english[d]).collect();
    let eng_texts: Vec<String> = eng_docs.iter().map(|&d| documents[d].clone()).collect();

    // 3: embed -> reduce -> cluster.
    let clusters_of_eng: Vec<Option<usize>> = if eng_texts.len() >= 8 {
        let embedder = Embedder::new(cfg.embed_dim, cfg.seed);
        let embedded = embedder.embed_all(&eng_texts);
        let reduced = pca_reduce(&embedded, cfg.reduce_dim, cfg.seed);
        let labels = match cfg.backend {
            ClusterBackend::Hdbscan { min_cluster_size } => hdbscan(&reduced, min_cluster_size),
            ClusterBackend::Dbscan { eps, min_pts } => {
                dbscan(&reduced, ClusterParams { eps, min_pts })
            }
        };
        labels.iter().map(|l| l.id()).collect()
    } else {
        vec![None; eng_texts.len()]
    };

    // 4: keywords per cluster.
    let keywords = class_tfidf_keywords(&eng_texts, &clusters_of_eng, 6);

    // 5: vetting — sample posts per cluster, match the analyst codebook.
    let groups = members_by_cluster(
        &clusters_of_eng
            .iter()
            .map(|c| match c {
                Some(i) => acctrade_text::cluster::ClusterLabel::Cluster(*i),
                None => acctrade_text::cluster::ClusterLabel::Noise,
            })
            .collect::<Vec<_>>(),
    );
    let mut clusters = Vec::new();
    for (cid, members) in groups.iter().enumerate() {
        // All post texts the cluster covers (with multiplicity).
        let post_indices: Vec<usize> = members
            .iter()
            .flat_map(|&ei| doc_posts[eng_docs[ei]].iter().copied())
            .collect();
        let sample: Vec<&str> = {
            let mut pool = post_indices.clone();
            // Deterministic partial shuffle for the vetting sample.
            for i in (1..pool.len()).rev() {
                let j = rng.random_range(0..=i);
                pool.swap(i, j);
            }
            pool.into_iter()
                .take(cfg.vetting_sample)
                .map(|pi| posts[pi].text.as_str())
                .collect()
        };
        let (category, subcategory) = vet_cluster(&sample, cfg.vetting_threshold);
        clusters.push(ClusterInfo {
            id: cid,
            documents: members.len(),
            posts: post_indices.len(),
            keywords: keywords.get(cid).cloned().unwrap_or_default(),
            category,
            subcategory,
        });
    }

    // 6: Tables 5 and 6.
    // Map each post to its cluster's vetted subcategory.
    let mut doc_cluster: BTreeMap<usize, usize> = BTreeMap::new();
    for (ei, c) in clusters_of_eng.iter().enumerate() {
        if let Some(c) = c {
            doc_cluster.insert(eng_docs[ei], *c);
        }
    }
    let mut per_platform: BTreeMap<String, (BTreeSet<u64>, usize)> = BTreeMap::new();
    let mut per_sub: BTreeMap<ScamSubcategory, (BTreeSet<(String, u64)>, usize)> = BTreeMap::new();
    for (di, post_list) in doc_posts.iter().enumerate() {
        let Some(&cid) = doc_cluster.get(&di) else { continue };
        let info = &clusters[cid];
        let (Some(_cat), Some(sub)) = (info.category, info.subcategory) else {
            continue;
        };
        for &pi in post_list {
            let post = &posts[pi];
            let entry = per_platform.entry(post.platform.clone()).or_default();
            entry.0.insert(post.author_id);
            entry.1 += 1;
            let sentry = per_sub.entry(sub).or_default();
            sentry.0.insert((post.platform.clone(), post.author_id));
            sentry.1 += 1;
        }
    }

    let table5: Vec<Table5Row> = ["Facebook", "Instagram", "TikTok", "X", "YouTube"]
        .iter()
        .map(|p| {
            let (accounts, posts) = per_platform
                .get(*p)
                .map(|(a, n)| (a.len(), *n))
                .unwrap_or((0, 0));
            Table5Row { platform: p.to_string(), scam_accounts: accounts, scam_posts: posts }
        })
        .collect();

    let table6: Vec<Table6Row> = ScamCategory::all()
        .into_iter()
        .map(|cat| {
            let subrows: Vec<(ScamSubcategory, usize, usize)> = ALL_SUBCATEGORIES
                .iter()
                .filter(|s| s.category() == cat)
                .map(|&s| {
                    let (accounts, posts) = per_sub
                        .get(&s)
                        .map(|(a, n)| (a.len(), *n))
                        .unwrap_or((0, 0));
                    (s, accounts, posts)
                })
                .collect();
            // Category accounts: union of subcategory account sets.
            let mut cat_accounts: BTreeSet<(String, u64)> = BTreeSet::new();
            for (s, _, _) in &subrows {
                if let Some((set, _)) = per_sub.get(s) {
                    cat_accounts.extend(set.iter().cloned());
                }
            }
            Table6Row {
                category: cat,
                accounts: cat_accounts.len(),
                posts: subrows.iter().map(|&(_, _, p)| p).sum(),
                subrows,
            }
        })
        .collect();

    let total_scam_posts: usize = table5.iter().map(|r| r.scam_posts).sum();
    let total_scam_accounts: usize = table5.iter().map(|r| r.scam_accounts).sum();
    let scam_cluster_count = clusters.iter().filter(|c| c.category.is_some()).count();

    ScamAnalysis {
        total_posts: posts.len(),
        english_posts,
        unique_documents: documents.len(),
        clusters,
        scam_cluster_count,
        table5,
        table6,
        total_scam_accounts,
        total_scam_posts,
    }
}

/// Vet one cluster from sampled posts: majority keyword category, then the
/// best-scoring subcategory within it.
fn vet_cluster(sample: &[&str], threshold: f64) -> (Option<ScamCategory>, Option<ScamSubcategory>) {
    if sample.is_empty() {
        return (None, None);
    }
    let mut votes: BTreeMap<ScamCategory, usize> = BTreeMap::new();
    let mut total_hits = 0usize;
    for text in sample {
        let lower = text.to_ascii_lowercase();
        // First-max tie-break: ties go to the earlier (more specific)
        // Table 6 category, not the later one.
        let mut best: Option<(ScamCategory, usize)> = None;
        for c in ScamCategory::all() {
            let hits = c
                .vetting_keywords()
                .iter()
                .filter(|k| lower.contains(**k))
                .count();
            if hits > 0 && best.map(|(_, h)| hits > h).unwrap_or(true) {
                best = Some((c, hits));
            }
        }
        if let Some((c, h)) = best {
            *votes.entry(c).or_insert(0) += 1;
            total_hits += h;
        }
    }
    let Some((&category, &top_votes)) = votes.iter().max_by_key(|&(_, &v)| v) else {
        return (None, None);
    };
    if (top_votes as f64) < threshold * sample.len() as f64 {
        return (None, None);
    }
    // Evidence gate: one incidental keyword across a whole sample is not
    // a scam signal — require hits on the order of the sample size.
    if total_hits < sample.len().max(2) {
        return (None, None);
    }
    // Subcategory: best codebook score over the whole sample.
    let subcategory = ALL_SUBCATEGORIES
        .iter()
        .filter(|s| s.category() == category)
        .map(|&s| {
            let score: usize = sample
                .iter()
                .map(|t| {
                    let lower = t.to_ascii_lowercase();
                    subcategory_keywords(s)
                        .iter()
                        .filter(|k| lower.contains(**k))
                        .count()
                })
                .sum();
            (s, score)
        })
        .max_by_key(|&(_, score)| score)
        .map(|(s, _)| s);
    (Some(category), subcategory)
}

/// Build post records directly from generated text (test/bench helper).
pub fn synthetic_posts(
    count_per_sub: usize,
    benign_per_topic: usize,
    seed: u64,
) -> Vec<PostRecord> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut posts = Vec::new();
    let mut author = 0u64;
    let platforms = ["X", "Instagram", "TikTok", "Facebook", "YouTube"];
    for sub in ALL_SUBCATEGORIES {
        for i in 0..count_per_sub {
            if i % 3 == 0 {
                author += 1;
            }
            posts.push(PostRecord {
                platform: (*platforms.choose(&mut rng).expect("non-empty")).to_string(), // conformance: allow(panic-policy) — static platform table is non-empty
                handle: format!("scam{author}"),
                author_id: author,
                post_id: posts.len() as u64,
                text: acctrade_workload::textgen::scam_post_text(sub, &mut rng),
                created_unix: 0,
                likes: 0,
                views: 0,
            });
        }
    }
    for topic in 0..acctrade_workload::textgen::BENIGN_TOPIC_COUNT {
        for i in 0..benign_per_topic {
            if i % 4 == 0 {
                author += 1;
            }
            posts.push(PostRecord {
                platform: (*platforms.choose(&mut rng).expect("non-empty")).to_string(), // conformance: allow(panic-policy) — static platform table is non-empty
                handle: format!("benign{author}"),
                author_id: author,
                post_id: posts.len() as u64,
                text: acctrade_workload::textgen::benign_post_text(topic, &mut rng),
                created_unix: 0,
                likes: 0,
                views: 0,
            });
        }
    }
    posts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_recovers_scam_clusters_from_synthetic_corpus() {
        let posts = synthetic_posts(40, 20, 9);
        let analysis = analyze(&posts, ScamPipelineConfig::default());
        assert_eq!(analysis.total_posts, posts.len());
        assert!(analysis.english_posts > posts.len() * 8 / 10);
        assert!(analysis.unique_documents < posts.len());
        assert!(
            analysis.scam_cluster_count >= 6,
            "expected several scam clusters, got {}",
            analysis.scam_cluster_count
        );
        // Most scam posts recovered.
        let truth_scam = 16 * 40;
        assert!(
            analysis.total_scam_posts as f64 > truth_scam as f64 * 0.6,
            "recovered {} of {truth_scam} scam posts",
            analysis.total_scam_posts
        );
    }

    #[test]
    fn benign_topics_not_marked_scam() {
        let posts = synthetic_posts(0, 25, 10);
        let analysis = analyze(&posts, ScamPipelineConfig::default());
        // A benign-only corpus must yield (almost) no scam posts.
        assert!(
            analysis.total_scam_posts < posts.len() / 10,
            "false-positive scam posts: {}",
            analysis.total_scam_posts
        );
    }

    #[test]
    fn table6_rolls_up_categories() {
        let posts = synthetic_posts(30, 10, 11);
        let analysis = analyze(&posts, ScamPipelineConfig::default());
        let financial = analysis
            .table6
            .iter()
            .find(|r| r.category == ScamCategory::Financial)
            .unwrap();
        assert!(financial.posts > 0, "financial scams must be found");
        // Category posts equal the sum of sub-rows.
        assert_eq!(
            financial.posts,
            financial.subrows.iter().map(|&(_, _, p)| p).sum::<usize>()
        );
    }

    #[test]
    fn vetting_requires_majority() {
        let benign = ["lovely sunset photos from the beach today", "my cat sleeps all day"];
        assert_eq!(vet_cluster(&benign, 0.4), (None, None));
        let crypto = [
            "huge bitcoin giveaway send wallet deposit profit",
            "crypto trading signals guaranteed profit wallet",
            "join the investment pool deposit bitcoin profit",
        ];
        let (cat, sub) = vet_cluster(&crypto, 0.4);
        assert_eq!(cat, Some(ScamCategory::Financial));
        assert_eq!(sub, Some(ScamSubcategory::CryptoScams));
    }

    #[test]
    fn dbscan_backend_also_works() {
        let posts = synthetic_posts(30, 10, 12);
        let cfg = ScamPipelineConfig {
            backend: ClusterBackend::Dbscan { eps: 0.35, min_pts: 3 },
            ..Default::default()
        };
        let analysis = analyze(&posts, cfg);
        assert!(analysis.scam_cluster_count >= 4);
    }

    #[test]
    fn empty_corpus() {
        let analysis = analyze(&[], ScamPipelineConfig::default());
        assert_eq!(analysis.total_posts, 0);
        assert_eq!(analysis.total_scam_posts, 0);
        assert!(analysis.clusters.is_empty());
    }
}
