//! Appendix A — security implications of the supported payment methods.
//!
//! The paper's appendix classifies each marketplace by the buyer's
//! exposure: protected (chargeback-capable wallets / escrow), irreversible
//! (crypto or vouchers only), or undisclosed. This module derives that
//! classification from the Table 3 matrix.

use acctrade_market::config::{MarketplaceId, ALL_MARKETPLACES};
use acctrade_market::payments::PaymentMethod;

/// Buyer-exposure classification of one marketplace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuyerExposure {
    /// At least one method offers refunds/chargebacks or escrow.
    Protected,
    /// Every disclosed method is irreversible (crypto, vouchers).
    IrreversibleOnly,
    /// Methods partially disclosed, none protective, not all
    /// irreversible.
    Mixed,
    /// The marketplace discloses nothing ("unknown" in Table 3).
    Undisclosed,
}

impl BuyerExposure {
    /// Label as the appendix discusses it.
    pub fn label(self) -> &'static str {
        match self {
            BuyerExposure::Protected => "buyer protection available",
            BuyerExposure::IrreversibleOnly => "irreversible payments only",
            BuyerExposure::Mixed => "no protection, partially reversible",
            BuyerExposure::Undisclosed => "payment methods undisclosed",
        }
    }
}

/// One appendix row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaymentSecurityRow {
    /// Marketplace.
    pub marketplace: MarketplaceId,
    /// Derived exposure class.
    pub exposure: BuyerExposure,
    /// Methods with buyer protection.
    pub protective: Vec<PaymentMethod>,
    /// Irreversible methods.
    pub irreversible: Vec<PaymentMethod>,
}

/// Classify every marketplace (Appendix A.2).
pub(crate) fn payment_security() -> Vec<PaymentSecurityRow> {
    ALL_MARKETPLACES
        .iter()
        .map(|&marketplace| {
            let methods = marketplace.config().payment_methods;
            let disclosed: Vec<PaymentMethod> = methods
                .iter()
                .copied()
                .filter(|m| *m != PaymentMethod::Unknown)
                .collect();
            let protective: Vec<PaymentMethod> = disclosed
                .iter()
                .copied()
                .filter(|m| m.has_buyer_protection())
                .collect();
            let irreversible: Vec<PaymentMethod> = disclosed
                .iter()
                .copied()
                .filter(|m| m.is_irreversible())
                .collect();
            let exposure = if disclosed.is_empty() {
                BuyerExposure::Undisclosed
            } else if !protective.is_empty() {
                BuyerExposure::Protected
            } else if irreversible.len() == disclosed.len() {
                BuyerExposure::IrreversibleOnly
            } else {
                BuyerExposure::Mixed
            };
            PaymentSecurityRow { marketplace, exposure, protective, irreversible }
        })
        .collect()
}

/// Render the appendix summary.
pub fn render_appendix_a() -> String {
    let rows = payment_security();
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.marketplace.name().to_string(),
                r.exposure.label().to_string(),
                r.protective
                    .iter()
                    .map(|m| m.label())
                    .collect::<Vec<_>>()
                    .join(", "),
                r.irreversible
                    .iter()
                    .map(|m| m.label())
                    .collect::<Vec<_>>()
                    .join(", "),
            ]
        })
        .collect();
    format!(
        "Appendix A: Payment-method security implications\n{}",
        crate::stats::render_table(
            &["Marketplace", "Buyer exposure", "Protective", "Irreversible"],
            &body
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(m: MarketplaceId) -> PaymentSecurityRow {
        payment_security()
            .into_iter()
            .find(|r| r.marketplace == m)
            .expect("all marketplaces classified")
    }

    #[test]
    fn z2u_and_fameseller_are_protected() {
        // Appendix A: PayPal/Skrill "adopted only by two marketplaces (Z2U
        // and FameSeller)".
        assert_eq!(row(MarketplaceId::Z2U).exposure, BuyerExposure::Protected);
        assert_eq!(row(MarketplaceId::FameSeller).exposure, BuyerExposure::Protected);
    }

    #[test]
    fn crypto_only_markets_are_irreversible() {
        assert_eq!(
            row(MarketplaceId::BuySocia).exposure,
            BuyerExposure::IrreversibleOnly
        );
        assert_eq!(
            row(MarketplaceId::SocialTradia).exposure,
            BuyerExposure::IrreversibleOnly
        );
    }

    #[test]
    fn escrow_counts_as_protection() {
        // MidMan and SwapSocials carry Trustap escrow.
        assert_eq!(row(MarketplaceId::MidMan).exposure, BuyerExposure::Protected);
        assert_eq!(row(MarketplaceId::SwapSocials).exposure, BuyerExposure::Protected);
    }

    #[test]
    fn undisclosed_markets_flagged() {
        for m in [MarketplaceId::Accsmarket, MarketplaceId::FameSwap, MarketplaceId::TooFame] {
            assert_eq!(row(m).exposure, BuyerExposure::Undisclosed, "{}", m.name());
        }
    }

    #[test]
    fn appendix_renders_all_rows() {
        let text = render_appendix_a();
        for m in ALL_MARKETPLACES {
            assert!(text.contains(m.name()), "missing {}", m.name());
        }
        assert!(text.contains("irreversible payments only"));
    }
}
