//! Property tests on the NLP substrate's invariants.

use acctrade_text::cluster::{dbscan, hdbscan, n_clusters, ClusterLabel, ClusterParams};
use acctrade_text::embed::Embedder;
use acctrade_text::langdetect::detect_language;
use acctrade_text::reduce::pca_reduce;
use acctrade_text::tokenize::{tokenize, tokenize_content};
use foundation::check::{self, pattern, VecStrategy};
use foundation::prop_check;
use std::ops::Range;

/// 3-d points, 1–59 of them.
fn points_strategy() -> VecStrategy<VecStrategy<Range<f32>>> {
    check::vec(check::vec(-100.0f32..100.0, 3..4), 1..60)
}

prop_check! {
    /// Cluster labels are dense: ids form `0..k` with no gaps, and every
    /// non-noise label is in range.
    fn cluster_labels_are_dense(points in points_strategy(), min_pts in 2usize..6) {
        for labels in [hdbscan(&points, min_pts), dbscan(&points, ClusterParams { eps: 5.0, min_pts })] {
            assert_eq!(labels.len(), points.len());
            let k = n_clusters(&labels);
            let mut seen = vec![false; k];
            for l in &labels {
                if let ClusterLabel::Cluster(c) = l {
                    assert!(*c < k);
                    seen[*c] = true;
                }
            }
            assert!(seen.into_iter().all(|s| s), "gapped cluster ids");
        }
    }

    /// Clustering is deterministic.
    fn clustering_deterministic(points in points_strategy()) {
        assert_eq!(hdbscan(&points, 3), hdbscan(&points, 3));
        let p = ClusterParams { eps: 2.0, min_pts: 3 };
        assert_eq!(dbscan(&points, p), dbscan(&points, p));
    }

    /// Embeddings are unit-norm or exactly zero.
    fn embeddings_unit_or_zero(text in pattern("\\PC{0,120}"), dim in 8usize..128) {
        let e = Embedder::new(dim, 7);
        let v = e.embed(&text);
        assert_eq!(v.len(), dim);
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm == 0.0 || (norm - 1.0).abs() < 1e-4, "norm {norm}");
    }

    /// PCA output preserves point count and requested dimensionality.
    fn pca_shape(points in points_strategy(), k in 1usize..4) {
        let reduced = pca_reduce(&points, k, 3);
        assert_eq!(reduced.len(), points.len());
        let expect = k.min(points[0].len());
        assert!(reduced.iter().all(|r| r.len() == expect));
    }

    /// Content tokens are a subset of raw tokens (stop-word removal only
    /// ever removes).
    fn content_tokens_subset(text in pattern("\\PC{0,200}")) {
        let all = tokenize(&text);
        let content = tokenize_content(&text);
        assert!(content.len() <= all.len());
        for t in &content {
            assert!(all.contains(t));
        }
    }

    /// Language detection is total and deterministic.
    fn langdetect_total(text in pattern("\\PC{0,200}")) {
        assert_eq!(detect_language(&text), detect_language(&text));
    }
}
