//! TF-IDF vectorization — the sparse half of the embedding stand-in.

use crate::tokenize::tokenize_content;
use std::collections::HashMap;

/// A sparse vector: sorted `(term_id, weight)` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec {
    entries: Vec<(u32, f64)>,
}

impl SparseVec {
    /// Build from unsorted pairs; ids are sorted and duplicates summed.
    pub fn from_pairs(mut pairs: Vec<(u32, f64)>) -> SparseVec {
        pairs.sort_by_key(|&(id, _)| id);
        let mut entries: Vec<(u32, f64)> = Vec::with_capacity(pairs.len());
        for (id, w) in pairs {
            match entries.last_mut() {
                Some((last_id, last_w)) if *last_id == id => *last_w += w,
                _ => entries.push((id, w)),
            }
        }
        SparseVec { entries }
    }

    /// Sorted entries.
    pub fn entries(&self) -> &[(u32, f64)] {
        &self.entries
    }

    /// Number of non-zeros.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Euclidean norm.
    pub fn norm(&self) -> f64 {
        self.entries.iter().map(|(_, w)| w * w).sum::<f64>().sqrt()
    }

    /// Dot product with another sparse vector (merge join).
    pub fn dot(&self, other: &SparseVec) -> f64 {
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.entries.len() && j < other.entries.len() {
            let (a_id, a_w) = self.entries[i];
            let (b_id, b_w) = other.entries[j];
            match a_id.cmp(&b_id) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += a_w * b_w;
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }
}

/// Cosine similarity between two sparse vectors; 0 when either is empty.
pub fn cosine(a: &SparseVec, b: &SparseVec) -> f64 {
    let denom = a.norm() * b.norm();
    if denom == 0.0 {
        0.0
    } else {
        (a.dot(b) / denom).clamp(-1.0, 1.0)
    }
}

/// A fitted TF-IDF model: vocabulary and per-term IDF weights.
#[derive(Debug, Clone)]
pub struct TfIdfModel {
    vocab: HashMap<String, u32>,
    idf: Vec<f64>,
    n_docs: usize,
}

impl TfIdfModel {
    /// Fit a model on a corpus. Terms appearing in fewer than `min_df`
    /// documents are dropped (noise control on big corpora).
    pub fn fit(corpus: &[String], min_df: usize) -> TfIdfModel {
        let mut doc_freq: HashMap<String, usize> = HashMap::new();
        for doc in corpus {
            let mut seen: Vec<String> = tokenize_content(doc);
            seen.sort();
            seen.dedup();
            for t in seen {
                *doc_freq.entry(t).or_insert(0) += 1;
            }
        }
        let mut terms: Vec<(String, usize)> = doc_freq
            .into_iter()
            .filter(|&(_, df)| df >= min_df.max(1))
            .collect();
        terms.sort(); // deterministic vocabulary order
        let n_docs = corpus.len();
        let mut vocab = HashMap::with_capacity(terms.len());
        let mut idf = Vec::with_capacity(terms.len());
        for (i, (term, df)) in terms.into_iter().enumerate() {
            vocab.insert(term, i as u32);
            // Smoothed IDF, scikit-learn style: ln((1+n)/(1+df)) + 1.
            idf.push(((1.0 + n_docs as f64) / (1.0 + df as f64)).ln() + 1.0);
        }
        TfIdfModel { vocab, idf, n_docs }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.vocab.len()
    }

    /// Number of documents the model was fitted on.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Term id for a token, if in vocabulary.
    pub fn term_id(&self, term: &str) -> Option<u32> {
        self.vocab.get(term).copied()
    }

    /// IDF weight of a term id.
    pub fn idf(&self, id: u32) -> f64 {
        self.idf[id as usize]
    }

    /// Transform one document into an L2-normalized TF-IDF vector.
    pub fn transform(&self, doc: &str) -> SparseVec {
        let tokens = tokenize_content(doc);
        let mut tf: HashMap<u32, f64> = HashMap::new();
        for t in tokens {
            if let Some(&id) = self.vocab.get(&t) {
                *tf.entry(id).or_insert(0.0) += 1.0;
            }
        }
        let pairs: Vec<(u32, f64)> = tf
            .into_iter()
            .map(|(id, f)| (id, f * self.idf[id as usize]))
            .collect();
        let v = SparseVec::from_pairs(pairs);
        let n = v.norm();
        if n == 0.0 {
            return v;
        }
        SparseVec {
            entries: v.entries.into_iter().map(|(id, w)| (id, w / n)).collect(),
        }
    }

    /// Transform a whole corpus.
    pub fn transform_all(&self, corpus: &[String]) -> Vec<SparseVec> {
        corpus.iter().map(|d| self.transform(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<String> {
        vec![
            "free crypto giveaway send bitcoin now".to_string(),
            "crypto trading signals daily profit guaranteed".to_string(),
            "cute cat pictures every morning".to_string(),
            "cat and dog pictures daily".to_string(),
        ]
    }

    #[test]
    fn sparse_dot_merge_join() {
        let a = SparseVec::from_pairs(vec![(1, 2.0), (3, 1.0), (5, 4.0)]);
        let b = SparseVec::from_pairs(vec![(3, 3.0), (5, 0.5), (9, 7.0)]);
        assert!((a.dot(&b) - (3.0 + 2.0)).abs() < 1e-12);
    }

    #[test]
    fn duplicate_ids_summed() {
        let v = SparseVec::from_pairs(vec![(2, 1.0), (2, 2.0), (1, 1.0)]);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.entries()[1], (2, 3.0));
    }

    #[test]
    fn transform_is_normalized() {
        let m = TfIdfModel::fit(&corpus(), 1);
        let v = m.transform("crypto giveaway bitcoin");
        assert!((v.norm() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similar_docs_have_higher_cosine() {
        let c = corpus();
        let m = TfIdfModel::fit(&c, 1);
        let vs = m.transform_all(&c);
        let crypto_pair = cosine(&vs[0], &vs[1]);
        let cross = cosine(&vs[0], &vs[2]);
        let cat_pair = cosine(&vs[2], &vs[3]);
        assert!(crypto_pair > cross, "crypto={crypto_pair} cross={cross}");
        assert!(cat_pair > cross, "cat={cat_pair} cross={cross}");
    }

    #[test]
    fn min_df_prunes_rare_terms() {
        let c = corpus();
        let all = TfIdfModel::fit(&c, 1);
        let pruned = TfIdfModel::fit(&c, 2);
        assert!(pruned.vocab_size() < all.vocab_size());
        assert!(pruned.term_id("crypto").is_some()); // df = 2
        assert!(pruned.term_id("giveaway").is_none()); // df = 1
    }

    #[test]
    fn out_of_vocab_doc_is_empty() {
        let m = TfIdfModel::fit(&corpus(), 1);
        let v = m.transform("zzz qqq www");
        assert_eq!(v.nnz(), 0);
        assert_eq!(cosine(&v, &v), 0.0);
    }

    #[test]
    fn idf_orders_rarity() {
        let c = corpus();
        let m = TfIdfModel::fit(&c, 1);
        let common = m.idf(m.term_id("crypto").unwrap()); // df 2
        let rare = m.idf(m.term_id("bitcoin").unwrap()); // df 1
        assert!(rare > common);
    }

    #[test]
    fn cosine_bounds() {
        let c = corpus();
        let m = TfIdfModel::fit(&c, 1);
        let vs = m.transform_all(&c);
        for a in &vs {
            for b in &vs {
                let s = cosine(a, b);
                assert!((-1.0..=1.0).contains(&s));
            }
            assert!((cosine(a, a) - 1.0).abs() < 1e-9);
        }
    }
}
