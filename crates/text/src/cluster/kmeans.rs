//! k-means — the baseline clusterer for the ablation bench.

use super::kdtree::dist;
use super::ClusterLabel;
use foundation::rng::{RngExt, SeedableRng};
use foundation::rng::ChaCha8Rng;

/// Run Lloyd's k-means with k-means++ initialization.
///
/// Returns `(labels, inertia)` where inertia is the sum of squared
/// distances to assigned centroids. Every point gets a cluster (k-means has
/// no noise concept), which is exactly why density methods win on scam
/// corpora — see the ablation bench.
pub fn kmeans(points: &[Vec<f32>], k: usize, seed: u64, max_iter: usize) -> (Vec<ClusterLabel>, f64) {
    assert!(k > 0, "k must be positive");
    let n = points.len();
    if n == 0 {
        return (Vec::new(), 0.0);
    }
    let k = k.min(n);
    let dim = points[0].len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x06EA_7000_0000_0001);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f32>> = Vec::with_capacity(k);
    centroids.push(points[rng.random_range(0..n)].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = points
            .iter()
            .map(|p| {
                centroids
                    .iter()
                    .map(|c| dist(p, c))
                    .fold(f64::INFINITY, f64::min)
                    .powi(2)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All remaining points coincide with centroids.
            centroids.push(points[rng.random_range(0..n)].clone());
            continue;
        }
        let mut target = rng.random_range(0.0..total);
        let mut chosen = n - 1;
        for (i, &w) in d2.iter().enumerate() {
            if target < w {
                chosen = i;
                break;
            }
            target -= w;
        }
        centroids.push(points[chosen].clone());
    }

    let mut assignment = vec![0usize; n];
    for _ in 0..max_iter {
        // Assign.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let best = (0..k)
                .min_by(|&a, &b| {
                    dist(p, &centroids[a]).total_cmp(&dist(p, &centroids[b]))
                })
                .expect("k > 0"); // conformance: allow(panic-policy) — k > 0 is asserted at entry
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            counts[assignment[i]] += 1;
            for (s, &x) in sums[assignment[i]].iter_mut().zip(p) {
                *s += f64::from(x);
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                centroids[c] = sums[c].iter().map(|&s| (s / counts[c] as f64) as f32).collect();
            }
        }
        if !changed {
            break;
        }
    }

    let inertia: f64 = points
        .iter()
        .zip(&assignment)
        .map(|(p, &a)| dist(p, &centroids[a]).powi(2))
        .sum();
    (
        assignment.into_iter().map(ClusterLabel::Cluster).collect(),
        inertia,
    )
}

#[cfg(test)]
mod tests {
    use super::super::{members_by_cluster, n_clusters};
    use super::*;

    fn two_blobs() -> Vec<Vec<f32>> {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f32 * 0.05;
            pts.push(vec![0.0 + j, 0.0 + j]);
            pts.push(vec![10.0 + j, 10.0 + j]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let (labels, inertia) = kmeans(&pts, 2, 1, 100);
        assert_eq!(n_clusters(&labels), 2);
        let groups = members_by_cluster(&labels);
        assert_eq!(groups[0].len(), 20);
        assert_eq!(groups[1].len(), 20);
        // Members of one group are all even or all odd indices.
        let parity = groups[0][0] % 2;
        assert!(groups[0].iter().all(|&i| i % 2 == parity));
        assert!(inertia < 2.0);
    }

    #[test]
    fn no_noise_ever() {
        let pts = two_blobs();
        let (labels, _) = kmeans(&pts, 5, 2, 50);
        assert!(labels.iter().all(|l| !l.is_noise()));
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![0.0f32], vec![1.0]];
        let (labels, _) = kmeans(&pts, 10, 3, 10);
        assert_eq!(labels.len(), 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let pts = two_blobs();
        assert_eq!(kmeans(&pts, 2, 9, 50), kmeans(&pts, 2, 9, 50));
    }

    #[test]
    fn more_clusters_lower_inertia() {
        let pts = two_blobs();
        let (_, i2) = kmeans(&pts, 2, 1, 100);
        let (_, i4) = kmeans(&pts, 4, 1, 100);
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    fn empty_input() {
        let (labels, inertia) = kmeans(&[], 3, 1, 10);
        assert!(labels.is_empty());
        assert_eq!(inertia, 0.0);
    }
}
