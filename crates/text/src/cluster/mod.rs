//! Density clustering — the HDBSCAN stand-in, plus baselines.
//!
//! * [`mod@dbscan`] — classic DBSCAN over a KD-tree index;
//! * [`mod@hdbscan`] — full HDBSCAN: core distances → mutual
//!   reachability → MST → condensed tree → excess-of-mass selection;
//! * [`mod@kmeans`] — a k-means baseline used by the ablation bench;
//! * [`kdtree`] — the spatial index both density algorithms share.
//!
//! All algorithms are deterministic given their inputs (k-means takes a
//! seed for initialization).

pub mod dbscan;
pub mod hdbscan;
pub mod kdtree;
pub mod kmeans;

pub use dbscan::dbscan;
pub use hdbscan::hdbscan;
pub use kmeans::kmeans;

/// Label assigned to each input point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterLabel {
    /// Point belongs to cluster `id` (ids are dense, starting at 0).
    Cluster(usize),
    /// Point is noise / an outlier.
    Noise,
}

impl ClusterLabel {
    /// Cluster id, if not noise.
    pub fn id(self) -> Option<usize> {
        match self {
            ClusterLabel::Cluster(i) => Some(i),
            ClusterLabel::Noise => None,
        }
    }

    /// `true` when the point is noise.
    pub fn is_noise(self) -> bool {
        matches!(self, ClusterLabel::Noise)
    }
}

/// Parameters shared by the density clusterers.
#[derive(Debug, Clone, Copy)]
pub struct ClusterParams {
    /// DBSCAN neighborhood radius (ignored by HDBSCAN, which picks its own
    /// cut).
    pub eps: f64,
    /// Minimum points to form a dense region (DBSCAN `minPts`, HDBSCAN
    /// `min_cluster_size`).
    pub min_pts: usize,
}

impl Default for ClusterParams {
    fn default() -> Self {
        ClusterParams { eps: 0.5, min_pts: 5 }
    }
}

/// Count clusters in a labeling.
pub fn n_clusters(labels: &[ClusterLabel]) -> usize {
    labels
        .iter()
        .filter_map(|l| l.id())
        .max()
        .map(|m| m + 1)
        .unwrap_or(0)
}

/// Fraction of points labeled noise.
pub fn noise_fraction(labels: &[ClusterLabel]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    labels.iter().filter(|l| l.is_noise()).count() as f64 / labels.len() as f64
}

/// Group point indices by cluster id; noise is excluded.
pub fn members_by_cluster(labels: &[ClusterLabel]) -> Vec<Vec<usize>> {
    let k = n_clusters(labels);
    let mut groups = vec![Vec::new(); k];
    for (i, l) in labels.iter().enumerate() {
        if let Some(c) = l.id() {
            groups[c].push(i);
        }
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_helpers() {
        let labels = vec![
            ClusterLabel::Cluster(0),
            ClusterLabel::Noise,
            ClusterLabel::Cluster(1),
            ClusterLabel::Cluster(0),
        ];
        assert_eq!(n_clusters(&labels), 2);
        assert!((noise_fraction(&labels) - 0.25).abs() < 1e-12);
        let groups = members_by_cluster(&labels);
        assert_eq!(groups[0], vec![0, 3]);
        assert_eq!(groups[1], vec![2]);
    }

    #[test]
    fn empty_labels() {
        assert_eq!(n_clusters(&[]), 0);
        assert_eq!(noise_fraction(&[]), 0.0);
    }
}
