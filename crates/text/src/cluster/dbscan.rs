//! DBSCAN over the KD-tree index.

use super::kdtree::KdTree;
use super::{ClusterLabel, ClusterParams};
use std::collections::VecDeque;

/// Run DBSCAN. Returns one label per input point.
///
/// Classic semantics: a point with at least `min_pts` neighbors within
/// `eps` (counting itself) is a core point; clusters are the transitive
/// closure of core points plus their border points; everything else is
/// noise.
pub fn dbscan(points: &[Vec<f32>], params: ClusterParams) -> Vec<ClusterLabel> {
    if points.is_empty() {
        return Vec::new();
    }
    let tree = KdTree::build(points);
    let n = points.len();
    let mut labels = vec![None::<ClusterLabel>; n];
    let mut next_cluster = 0usize;

    for start in 0..n {
        if labels[start].is_some() {
            continue;
        }
        let neighbors = tree.within_radius(&points[start], params.eps);
        if neighbors.len() < params.min_pts {
            labels[start] = Some(ClusterLabel::Noise);
            continue;
        }
        // Expand a new cluster from this core point (BFS).
        let cid = next_cluster;
        next_cluster += 1;
        labels[start] = Some(ClusterLabel::Cluster(cid));
        let mut queue: VecDeque<usize> = neighbors.into_iter().collect();
        while let Some(p) = queue.pop_front() {
            match labels[p] {
                Some(ClusterLabel::Noise) => {
                    // Noise reachable from a core point becomes a border
                    // point of the cluster.
                    labels[p] = Some(ClusterLabel::Cluster(cid));
                }
                Some(_) => continue,
                None => {
                    labels[p] = Some(ClusterLabel::Cluster(cid));
                    let nbrs = tree.within_radius(&points[p], params.eps);
                    if nbrs.len() >= params.min_pts {
                        queue.extend(nbrs);
                    }
                }
            }
        }
    }
    labels.into_iter().map(|l| l.expect("all points labeled")).collect() // conformance: allow(panic-policy) — the sweep labels every point
}

#[cfg(test)]
mod tests {
    use super::super::{members_by_cluster, n_clusters, noise_fraction};
    use super::*;
    use foundation::rng::{RngExt, SeedableRng};
    use foundation::rng::ChaCha8Rng;

    /// Three well-separated Gaussian-ish blobs plus scattered outliers.
    fn blobs_with_noise(seed: u64) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let centers = [(0.0f32, 0.0f32), (10.0, 0.0), (0.0, 10.0)];
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..30 {
                pts.push(vec![
                    cx + rng.random_range(-0.5..0.5),
                    cy + rng.random_range(-0.5..0.5),
                ]);
                truth.push(ci);
            }
        }
        for _ in 0..5 {
            pts.push(vec![rng.random_range(3.0..7.0), rng.random_range(3.0..7.0)]);
            truth.push(usize::MAX);
        }
        (pts, truth)
    }

    #[test]
    fn recovers_three_blobs() {
        let (pts, truth) = blobs_with_noise(1);
        let labels = dbscan(&pts, ClusterParams { eps: 1.0, min_pts: 4 });
        assert_eq!(n_clusters(&labels), 3);
        // Every blob is pure: all members share a ground-truth id.
        for group in members_by_cluster(&labels) {
            let t0 = truth[group[0]];
            assert!(group.iter().all(|&i| truth[i] == t0));
            assert!(group.len() >= 28);
        }
    }

    #[test]
    fn outliers_are_noise() {
        let (pts, truth) = blobs_with_noise(2);
        let labels = dbscan(&pts, ClusterParams { eps: 1.0, min_pts: 4 });
        for (i, t) in truth.iter().enumerate() {
            if *t == usize::MAX {
                assert!(labels[i].is_noise(), "outlier {i} not noise");
            }
        }
    }

    #[test]
    fn eps_too_small_makes_everything_noise() {
        let (pts, _) = blobs_with_noise(3);
        let labels = dbscan(&pts, ClusterParams { eps: 1e-6, min_pts: 4 });
        assert!(noise_fraction(&labels) > 0.99);
    }

    #[test]
    fn eps_huge_makes_one_cluster() {
        let (pts, _) = blobs_with_noise(4);
        let labels = dbscan(&pts, ClusterParams { eps: 100.0, min_pts: 4 });
        assert_eq!(n_clusters(&labels), 1);
        assert_eq!(noise_fraction(&labels), 0.0);
    }

    #[test]
    fn empty_input() {
        assert!(dbscan(&[], ClusterParams::default()).is_empty());
    }

    #[test]
    fn deterministic() {
        let (pts, _) = blobs_with_noise(5);
        let p = ClusterParams { eps: 1.0, min_pts: 4 };
        assert_eq!(dbscan(&pts, p), dbscan(&pts, p));
    }

    #[test]
    fn border_points_join_a_cluster() {
        // A dense core with one point at the rim: rim point is within eps
        // of a core point but itself has too few neighbors.
        let mut pts: Vec<Vec<f32>> = (0..6).map(|i| vec![i as f32 * 0.1, 0.0]).collect();
        pts.push(vec![1.4, 0.0]); // within eps=1.0 of the last core point
        let labels = dbscan(&pts, ClusterParams { eps: 1.0, min_pts: 5 });
        assert_eq!(n_clusters(&labels), 1);
        assert!(!labels[6].is_noise());
    }
}
