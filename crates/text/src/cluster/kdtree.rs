//! A KD-tree for radius and k-nearest-neighbor queries over dense points.
//!
//! Both density clusterers need neighborhood queries; the KD-tree keeps
//! them sub-quadratic on the deduplicated post corpus (thousands of points
//! in 8–16 dimensions).

/// A KD-tree built over borrowed points (rows of equal length).
pub struct KdTree<'a> {
    points: &'a [Vec<f32>],
    /// Flattened tree: `nodes[i]` is the point index at node `i`; layout is
    /// a balanced binary tree stored by recursive median splits.
    order: Vec<usize>,
    dim: usize,
}

impl<'a> KdTree<'a> {
    /// Build a tree over `points`.
    ///
    /// # Panics
    /// Panics if points are ragged or the set is empty.
    pub fn build(points: &'a [Vec<f32>]) -> KdTree<'a> {
        assert!(!points.is_empty(), "empty point set");
        let dim = points[0].len();
        assert!(dim > 0, "zero-dimensional points");
        assert!(points.iter().all(|p| p.len() == dim), "ragged points");
        let mut order: Vec<usize> = (0..points.len()).collect();
        build_recursive(points, &mut order, 0, dim);
        KdTree { points, order, dim }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// `true` if the tree is empty (cannot happen via [`KdTree::build`]).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Indices of all points within `radius` of `query` (inclusive),
    /// including the query point itself if indexed.
    pub fn within_radius(&self, query: &[f32], radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        self.radius_rec(query, radius, 0, self.order.len(), 0, &mut out);
        out.sort_unstable();
        out
    }

    fn radius_rec(
        &self,
        query: &[f32],
        radius: f64,
        lo: usize,
        hi: usize,
        depth: usize,
        out: &mut Vec<usize>,
    ) {
        if lo >= hi {
            return;
        }
        let mid = lo + (hi - lo) / 2;
        let idx = self.order[mid];
        let p = &self.points[idx];
        if dist(p, query) <= radius {
            out.push(idx);
        }
        let axis = depth % self.dim;
        let delta = f64::from(query[axis]) - f64::from(p[axis]);
        // Search the near side always; the far side only if the splitting
        // plane is within radius.
        if delta <= 0.0 {
            self.radius_rec(query, radius, lo, mid, depth + 1, out);
            if -delta <= radius {
                self.radius_rec(query, radius, mid + 1, hi, depth + 1, out);
            }
        } else {
            self.radius_rec(query, radius, mid + 1, hi, depth + 1, out);
            if delta <= radius {
                self.radius_rec(query, radius, lo, mid, depth + 1, out);
            }
        }
    }

    /// Distance to the k-th nearest neighbor of point `i` (excluding
    /// itself). Returns `f64::INFINITY` when fewer than `k` other points
    /// exist.
    pub fn kth_neighbor_distance(&self, i: usize, k: usize) -> f64 {
        let query = &self.points[i];
        // Expanding-radius search: start from a guess and double until we
        // have k neighbors. Correct (the final radius bounds all misses)
        // and simple; fast in clustered data.
        if self.len() <= k {
            return f64::INFINITY;
        }
        let mut radius = self.initial_radius_guess(i);
        loop {
            let mut hits = self.within_radius(query, radius);
            hits.retain(|&j| j != i);
            if hits.len() >= k {
                let mut ds: Vec<f64> = hits.iter().map(|&j| dist(&self.points[j], query)).collect();
                ds.sort_by(|a, b| a.total_cmp(b));
                return ds[k - 1];
            }
            radius = (radius * 2.0).max(1e-6);
        }
    }

    fn initial_radius_guess(&self, i: usize) -> f64 {
        // Distance to the root point is a cheap nonzero scale estimate.
        let root = self.order[self.order.len() / 2];
        let d = dist(&self.points[i], &self.points[root]);
        if d > 0.0 {
            d / 4.0
        } else {
            1e-3
        }
    }
}

fn build_recursive(points: &[Vec<f32>], order: &mut [usize], depth: usize, dim: usize) {
    if order.len() <= 1 {
        return;
    }
    let axis = depth % dim;
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        points[a][axis].total_cmp(&points[b][axis])
    });
    let (left, rest) = order.split_at_mut(mid);
    build_recursive(points, left, depth + 1, dim);
    build_recursive(points, &mut rest[1..], depth + 1, dim);
}

/// Euclidean distance.
pub fn dist(a: &[f32], b: &[f32]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(*x) - f64::from(*y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::{RngExt, SeedableRng};
    use foundation::rng::ChaCha8Rng;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
            .collect()
    }

    fn brute_radius(points: &[Vec<f32>], q: &[f32], r: f64) -> Vec<usize> {
        (0..points.len()).filter(|&i| dist(&points[i], q) <= r).collect()
    }

    #[test]
    fn radius_query_matches_brute_force() {
        let pts = random_points(300, 4, 1);
        let tree = KdTree::build(&pts);
        for qi in [0, 7, 100, 299] {
            for r in [0.1, 0.5, 1.0] {
                let got = tree.within_radius(&pts[qi], r);
                let want = brute_radius(&pts, &pts[qi], r);
                assert_eq!(got, want, "qi={qi} r={r}");
            }
        }
    }

    #[test]
    fn kth_distance_matches_brute_force() {
        let pts = random_points(120, 3, 2);
        let tree = KdTree::build(&pts);
        for qi in [0, 50, 119] {
            for k in [1, 5, 10] {
                let got = tree.kth_neighbor_distance(qi, k);
                let mut ds: Vec<f64> = (0..pts.len())
                    .filter(|&j| j != qi)
                    .map(|j| dist(&pts[j], &pts[qi]))
                    .collect();
                ds.sort_by(|a, b| a.partial_cmp(b).unwrap());
                assert!((got - ds[k - 1]).abs() < 1e-9, "qi={qi} k={k}");
            }
        }
    }

    #[test]
    fn kth_distance_with_too_few_points() {
        let pts = random_points(3, 2, 3);
        let tree = KdTree::build(&pts);
        assert_eq!(tree.kth_neighbor_distance(0, 5), f64::INFINITY);
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0f32, 1.0]; 10];
        let tree = KdTree::build(&pts);
        assert_eq!(tree.within_radius(&pts[0], 0.0).len(), 10);
        assert_eq!(tree.kth_neighbor_distance(0, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty point set")]
    fn empty_build_panics() {
        let _ = KdTree::build(&[]);
    }
}
