//! HDBSCAN — the paper-pipeline clusterer, implemented from the original
//! algorithm (Campello, Moulavi & Sander), not a heuristic approximation:
//!
//! 1. **core distances** — distance to the `min_pts`-th nearest neighbor;
//! 2. **mutual reachability** — `max(core(a), core(b), d(a, b))`;
//! 3. **minimum spanning tree** over the mutual-reachability graph
//!    (Prim's algorithm, O(n²) — the pipeline deduplicates posts first, so
//!    n is the number of *distinct* documents);
//! 4. **single-linkage dendrogram** from the sorted MST edges;
//! 5. **condensed tree** — splits that shed fewer than `min_cluster_size`
//!    points are "fall-outs", not new clusters;
//! 6. **excess-of-mass selection** — keep the set of condensed clusters
//!    maximizing total stability `Σ (λ_exit − λ_birth)`.
//!
//! This multi-scale extraction is what lets the scam-post pipeline find 80+
//! topic families of wildly different sizes and densities without a global
//! radius parameter — exactly why the paper used HDBSCAN over DBSCAN (see
//! the ablation bench).

use super::kdtree::{dist, KdTree};
use super::ClusterLabel;

/// Run HDBSCAN with `min_pts` as both the density parameter (core
/// distances) and the minimum cluster size.
pub fn hdbscan(points: &[Vec<f32>], min_pts: usize) -> Vec<ClusterLabel> {
    let n = points.len();
    let min_size = min_pts.max(2);
    if n == 0 {
        return Vec::new();
    }
    if n <= min_size {
        return vec![ClusterLabel::Noise; n];
    }
    let tree = KdTree::build(points);
    let core: Vec<f64> = (0..n).map(|i| tree.kth_neighbor_distance(i, min_pts)).collect();
    let edges = mst_edges(points, &core);
    extract(&edges, n, min_size)
}

/// Prim's MST over the implicit complete mutual-reachability graph.
fn mst_edges(points: &[Vec<f32>], core: &[f64]) -> Vec<(f64, usize, usize)> {
    let n = points.len();
    let mreach = |a: usize, b: usize| dist(&points[a], &points[b]).max(core[a]).max(core[b]);
    let mut in_tree = vec![false; n];
    let mut best = vec![f64::INFINITY; n];
    let mut best_from = vec![0usize; n];
    let mut edges = Vec::with_capacity(n - 1);
    in_tree[0] = true;
    for (j, slot) in best.iter_mut().enumerate().skip(1) {
        *slot = mreach(0, j);
    }
    for _ in 1..n {
        let mut u = usize::MAX;
        let mut ud = f64::INFINITY;
        for j in 0..n {
            if !in_tree[j] && best[j] < ud {
                ud = best[j];
                u = j;
            }
        }
        debug_assert!(u != usize::MAX, "graph is complete");
        in_tree[u] = true;
        edges.push((ud, best_from[u], u));
        for j in 0..n {
            if !in_tree[j] {
                let d = mreach(u, j);
                if d < best[j] {
                    best[j] = d;
                    best_from[j] = u;
                }
            }
        }
    }
    edges
}

/// A node of the single-linkage dendrogram.
#[derive(Debug, Clone, Copy)]
struct DendroNode {
    /// Children (leaf ids are `< n`, internal ids `>= n`).
    left: usize,
    right: usize,
    /// Merge distance.
    weight: f64,
    /// Leaves under this node.
    size: usize,
}

/// A condensed-tree cluster.
#[derive(Debug, Clone)]
struct CondCluster {
    parent: Option<usize>,
    birth_lambda: f64,
    children: Vec<usize>,
    /// `(point, λ_exit)` events for points that left this cluster.
    exits: Vec<(usize, f64)>,
}

/// λ = 1/d, saturating on zero distances (duplicate points).
fn lambda_of(weight: f64) -> f64 {
    if weight <= 1e-12 {
        1e12
    } else {
        1.0 / weight
    }
}

fn extract(edges: &[(f64, usize, usize)], n: usize, min_size: usize) -> Vec<ClusterLabel> {
    // ---- single-linkage dendrogram ---------------------------------------
    let mut sorted: Vec<(f64, usize, usize)> = edges.to_vec();
    sorted.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Union-find mapping points to their current dendrogram node.
    let mut uf_parent: Vec<usize> = (0..n).collect();
    let mut node_of_root: Vec<usize> = (0..n).collect();
    let mut nodes: Vec<DendroNode> = Vec::with_capacity(n - 1);
    fn find(p: &mut [usize], mut x: usize) -> usize {
        while p[x] != x {
            p[x] = p[p[x]];
            x = p[x];
        }
        x
    }
    let leaf_size = |id: usize, nodes: &Vec<DendroNode>| -> usize {
        if id < n {
            1
        } else {
            nodes[id - n].size
        }
    };
    for &(w, a, b) in &sorted {
        let (ra, rb) = (find(&mut uf_parent, a), find(&mut uf_parent, b));
        debug_assert_ne!(ra, rb, "MST edges never form cycles");
        let (na, nb) = (node_of_root[ra], node_of_root[rb]);
        let size = leaf_size(na, &nodes) + leaf_size(nb, &nodes);
        nodes.push(DendroNode { left: na, right: nb, weight: w, size });
        let new_node = n + nodes.len() - 1;
        uf_parent[ra] = rb;
        let r = find(&mut uf_parent, rb);
        node_of_root[r] = new_node;
    }
    let root = n + nodes.len() - 1;

    // ---- condensed tree ----------------------------------------------------
    // Iterative descent: (dendrogram node, condensed cluster it belongs to).
    let mut cond: Vec<CondCluster> = vec![CondCluster {
        parent: None,
        birth_lambda: 0.0,
        children: Vec::new(),
        exits: Vec::new(),
    }];
    // Collect all leaves under a dendrogram node.
    let collect_leaves = |start: usize, nodes: &Vec<DendroNode>| -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![start];
        while let Some(id) = stack.pop() {
            if id < n {
                out.push(id);
            } else {
                let d = nodes[id - n];
                stack.push(d.left);
                stack.push(d.right);
            }
        }
        out
    };

    let mut death_lambda: Vec<f64> = vec![f64::INFINITY];
    let mut work: Vec<(usize, usize)> = vec![(root, 0)];
    while let Some((mut cur, cid)) = work.pop() {
        loop {
            if cur < n {
                // Single point left inside the cluster: it exits when the
                // cluster dissolves; approximate with its parent's λ scale.
                let lam = cond[cid].birth_lambda.max(1e-12);
                cond[cid].exits.push((cur, lam));
                death_lambda[cid] = lam;
                break;
            }
            let d = nodes[cur - n];
            let lam = lambda_of(d.weight);
            let (sl, sr) = (leaf_size(d.left, &nodes), leaf_size(d.right, &nodes));
            if sl >= min_size && sr >= min_size {
                // True split: two new condensed clusters are born; every
                // current member exits `cid` at λ.
                for p in collect_leaves(cur, &nodes) {
                    cond[cid].exits.push((p, lam));
                }
                death_lambda[cid] = lam;
                let cl = cond.len();
                cond.push(CondCluster {
                    parent: Some(cid),
                    birth_lambda: lam,
                    children: Vec::new(),
                    exits: Vec::new(),
                });
                death_lambda.push(f64::INFINITY);
                let cr = cond.len();
                cond.push(CondCluster {
                    parent: Some(cid),
                    birth_lambda: lam,
                    children: Vec::new(),
                    exits: Vec::new(),
                });
                death_lambda.push(f64::INFINITY);
                cond[cid].children.push(cl);
                cond[cid].children.push(cr);
                work.push((d.left, cl));
                work.push((d.right, cr));
                break;
            }
            if sl < min_size && sr < min_size {
                // Cluster dissolves: everything exits at λ.
                for p in collect_leaves(cur, &nodes) {
                    cond[cid].exits.push((p, lam));
                }
                death_lambda[cid] = lam;
                break;
            }
            // One small side falls out; keep descending the big side.
            let (small, big) = if sl < min_size { (d.left, d.right) } else { (d.right, d.left) };
            for p in collect_leaves(small, &nodes) {
                cond[cid].exits.push((p, lam));
            }
            cur = big;
        }
    }

    // ---- stability + excess-of-mass selection -----------------------------
    let stability: Vec<f64> = cond
        .iter()
        .map(|c| {
            c.exits
                .iter()
                .map(|&(_, lam)| (lam - c.birth_lambda).max(0.0))
                .sum()
        })
        .collect();
    // Children always have larger indices; process bottom-up.
    let mut selected = vec![false; cond.len()];
    let mut subtree_stability = stability.clone();
    for i in (0..cond.len()).rev() {
        if cond[i].children.is_empty() {
            selected[i] = true;
            continue;
        }
        let child_sum: f64 = cond[i].children.iter().map(|&c| subtree_stability[c]).sum();
        let is_root = cond[i].parent.is_none();
        if !is_root && stability[i] > child_sum {
            selected[i] = true;
            // Deselect the whole subtree below.
            let mut stack: Vec<usize> = cond[i].children.clone();
            while let Some(c) = stack.pop() {
                selected[c] = false;
                stack.extend(cond[c].children.iter().copied());
            }
        } else {
            subtree_stability[i] = child_sum.max(stability[i]);
        }
    }
    // The root is never a cluster unless it has no children at all
    // (a dataset with no internal structure is one cluster).
    selected[0] = cond.len() == 1;

    // ---- assignment --------------------------------------------------------
    // A point belongs to the deepest *selected* cluster on its membership
    // chain (the cluster it exited, then its ancestors). Low-density
    // fall-outs are noise: a point that left the selected cluster itself
    // long before the cluster died (λ_exit ≪ λ_death) was never really
    // part of its dense core — this is the membership-probability cut of
    // standard HDBSCAN implementations.
    const MEMBERSHIP_CUT: f64 = 0.1;
    let mut labels = vec![ClusterLabel::Noise; n];
    let mut cluster_id_of: Vec<Option<usize>> = vec![None; cond.len()];
    let mut next_id = 0usize;
    for (ci, c) in cond.iter().enumerate() {
        for &(p, lam) in &c.exits {
            let mut cur = Some(ci);
            while let Some(x) = cur {
                if selected[x] {
                    let direct_exit = x == ci;
                    let weak = direct_exit
                        && death_lambda[x].is_finite()
                        && lam < MEMBERSHIP_CUT * death_lambda[x];
                    if !weak {
                        let id = *cluster_id_of[x].get_or_insert_with(|| {
                            let id = next_id;
                            next_id += 1;
                            id
                        });
                        labels[p] = ClusterLabel::Cluster(id);
                    }
                    break;
                }
                cur = cond[x].parent;
            }
        }
    }
    // Renumber deterministically by first member.
    let mut remap: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    let mut next = 0usize;
    for label in labels.iter_mut() {
        if let ClusterLabel::Cluster(c) = *label {
            let id = *remap.entry(c).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *label = ClusterLabel::Cluster(id);
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::super::{members_by_cluster, n_clusters};
    use super::*;
    use foundation::rng::{RngExt, SeedableRng};
    use foundation::rng::ChaCha8Rng;

    fn blobs(seed: u64, centers: &[(f32, f32)], per: usize, spread: f32) -> (Vec<Vec<f32>>, Vec<usize>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut pts = Vec::new();
        let mut truth = Vec::new();
        for (ci, &(cx, cy)) in centers.iter().enumerate() {
            for _ in 0..per {
                pts.push(vec![
                    cx + rng.random_range(-spread..spread),
                    cy + rng.random_range(-spread..spread),
                ]);
                truth.push(ci);
            }
        }
        (pts, truth)
    }

    #[test]
    fn separates_well_spaced_blobs_without_eps() {
        let (pts, truth) = blobs(1, &[(0.0, 0.0), (20.0, 0.0), (0.0, 20.0), (20.0, 20.0)], 25, 0.6);
        let labels = hdbscan(&pts, 5);
        assert_eq!(n_clusters(&labels), 4);
        for group in members_by_cluster(&labels) {
            let t0 = truth[group[0]];
            assert!(group.iter().all(|&i| truth[i] == t0), "impure cluster");
        }
    }

    #[test]
    fn varying_density_blobs() {
        // One tight and one loose blob — the case fixed-eps DBSCAN handles
        // badly but mutual reachability handles well.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut pts: Vec<Vec<f32>> = Vec::new();
        for _ in 0..30 {
            pts.push(vec![rng.random_range(-0.1f32..0.1), rng.random_range(-0.1f32..0.1)]);
        }
        for _ in 0..30 {
            pts.push(vec![
                30.0 + rng.random_range(-3.0f32..3.0),
                rng.random_range(-3.0f32..3.0),
            ]);
        }
        let labels = hdbscan(&pts, 5);
        assert_eq!(n_clusters(&labels), 2);
    }

    #[test]
    fn single_blob_stays_mostly_clustered() {
        // Standard HDBSCAN (allow_single_cluster = false) may split a
        // unimodal blob into a couple of clusters; the invariant that
        // matters is that nearly everything is clustered, not scattered
        // to noise.
        let (pts, _) = blobs(3, &[(0.0, 0.0)], 40, 0.5);
        let labels = hdbscan(&pts, 5);
        let k = n_clusters(&labels);
        assert!((1..=3).contains(&k), "unexpected cluster count {k}");
        let noise = labels.iter().filter(|l| l.is_noise()).count();
        assert!(noise <= 12, "too much noise: {noise}");
    }

    #[test]
    fn tiny_inputs_are_noise() {
        let pts = vec![vec![0.0f32, 0.0], vec![1.0, 1.0]];
        let labels = hdbscan(&pts, 5);
        assert!(labels.iter().all(|l| l.is_noise()));
        assert!(hdbscan(&[], 5).is_empty());
    }

    #[test]
    fn stragglers_become_noise() {
        let (mut pts, _) = blobs(4, &[(0.0, 0.0), (25.0, 25.0)], 25, 0.5);
        pts.push(vec![12.0, 12.0]); // lone point between blobs
        let labels = hdbscan(&pts, 5);
        assert_eq!(n_clusters(&labels), 2);
        assert!(labels.last().unwrap().is_noise());
    }

    #[test]
    fn deterministic() {
        let (pts, _) = blobs(5, &[(0.0, 0.0), (15.0, 15.0)], 20, 0.5);
        assert_eq!(hdbscan(&pts, 5), hdbscan(&pts, 5));
    }

    #[test]
    fn many_small_clusters_multi_scale() {
        // 12 tight blobs at different pairwise distances — the condensed
        // tree must find all of them without a global radius.
        let mut centers = Vec::new();
        for i in 0..4 {
            for j in 0..3 {
                centers.push((i as f32 * 8.0, j as f32 * 13.0));
            }
        }
        let (pts, truth) = blobs(6, &centers, 12, 0.3);
        let labels = hdbscan(&pts, 4);
        assert_eq!(n_clusters(&labels), 12, "expected all 12 blobs");
        for group in members_by_cluster(&labels) {
            let t0 = truth[group[0]];
            assert!(group.iter().all(|&i| truth[i] == t0));
        }
    }

    #[test]
    fn duplicate_points_cluster() {
        let mut pts = vec![vec![0.0f32, 0.0]; 10];
        pts.extend(vec![vec![5.0f32, 5.0]; 10]);
        let labels = hdbscan(&pts, 3);
        assert_eq!(n_clusters(&labels), 2);
        assert!(labels.iter().all(|l| !l.is_noise()));
    }
}
