//! Listing-text similarity — the paper's underground reuse analysis (§4.2).
//!
//! The paper reports "word similarity ranging from 88% to 100%" across
//! underground listings, computed case-insensitively after removing numbers
//! and punctuation. We implement that measure exactly: normalized word-level
//! overlap via a token-sequence LCS ratio, plus a bag-of-words Jaccard and a
//! Dice coefficient for robustness checks.

use crate::tokenize::tokenize_alpha;

/// Word-level similarity in `[0, 1]`: LCS length over max sequence length,
/// computed case-insensitively on alphabetic tokens (numbers and
/// punctuation removed, matching the paper's preprocessing).
///
/// Returns 1.0 for two empty texts (identical by convention).
pub fn word_similarity(a: &str, b: &str) -> f64 {
    let ta = tokenize_alpha(a);
    let tb = tokenize_alpha(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let lcs = lcs_len(&ta, &tb);
    lcs as f64 / ta.len().max(tb.len()) as f64
}

/// Bag-of-words Jaccard similarity on alphabetic tokens.
pub fn jaccard_similarity(a: &str, b: &str) -> f64 {
    let sa: std::collections::HashSet<String> = tokenize_alpha(a).into_iter().collect();
    let sb: std::collections::HashSet<String> = tokenize_alpha(b).into_iter().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Dice coefficient on alphabetic token multisets.
pub fn dice_similarity(a: &str, b: &str) -> f64 {
    let ta = tokenize_alpha(a);
    let tb = tokenize_alpha(b);
    if ta.is_empty() && tb.is_empty() {
        return 1.0;
    }
    if ta.is_empty() || tb.is_empty() {
        return 0.0;
    }
    let mut counts: std::collections::HashMap<&str, (usize, usize)> = std::collections::HashMap::new();
    for t in &ta {
        counts.entry(t.as_str()).or_default().0 += 1;
    }
    for t in &tb {
        counts.entry(t.as_str()).or_default().1 += 1;
    }
    let inter: usize = counts.values().map(|&(x, y)| x.min(y)).sum();
    2.0 * inter as f64 / (ta.len() + tb.len()) as f64
}

/// Longest common subsequence length between token sequences.
/// O(|a|·|b|) with a rolling row — listing posts are 14–123 words.
fn lcs_len(a: &[String], b: &[String]) -> usize {
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for ai in a {
        for (j, bj) in b.iter().enumerate() {
            curr[j + 1] = if ai == bj {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Pairwise similarity matrix (upper triangle, `(i, j, sim)` with `i < j`)
/// over a set of posts, reporting only pairs at or above `threshold`.
pub fn similar_pairs(posts: &[String], threshold: f64) -> Vec<(usize, usize, f64)> {
    let mut out = Vec::new();
    for i in 0..posts.len() {
        for j in (i + 1)..posts.len() {
            let s = word_similarity(&posts[i], &posts[j]);
            if s >= threshold {
                out.push((i, j, s));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts_are_1() {
        let t = "Selling aged TikTok account, organic followers, full access";
        assert!((word_similarity(t, t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn case_numbers_punctuation_ignored() {
        // The paper's preprocessing: case-insensitive, numbers and
        // punctuation removed.
        let a = "Selling TikTok account with 50000 followers!!!";
        let b = "selling tiktok account with 99999 followers";
        assert!((word_similarity(a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_edits_keep_high_similarity() {
        let a = "selling aged tiktok account organic followers full email access guaranteed delivery fast";
        let b = "selling aged tiktok account real followers full email access guaranteed delivery fast";
        let s = word_similarity(a, b);
        assert!((0.88..1.0).contains(&s), "s={s}");
    }

    #[test]
    fn unrelated_texts_are_low() {
        let a = "selling tiktok account organic followers";
        let b = "weather forecast rain tomorrow cold wind";
        assert!(word_similarity(a, b) < 0.2);
    }

    #[test]
    fn symmetry() {
        let a = "one two three four five";
        let b = "one two four five six seven";
        assert!((word_similarity(a, b) - word_similarity(b, a)).abs() < 1e-12);
        assert!((jaccard_similarity(a, b) - jaccard_similarity(b, a)).abs() < 1e-12);
        assert!((dice_similarity(a, b) - dice_similarity(b, a)).abs() < 1e-12);
    }

    #[test]
    fn bounds() {
        let pairs = [
            ("a b c", "a b c"),
            ("a b c", "d e f"),
            ("", ""),
            ("a", ""),
            ("x y z w", "x z"),
        ];
        for (a, b) in pairs {
            for f in [word_similarity, jaccard_similarity, dice_similarity] {
                let s = f(a, b);
                assert!((0.0..=1.0).contains(&s), "{a:?} vs {b:?} -> {s}");
            }
        }
    }

    #[test]
    fn word_order_matters_for_lcs_not_jaccard() {
        let a = "buy this account now cheap";
        let b = "cheap now account this buy";
        assert!((jaccard_similarity(a, b) - 1.0).abs() < 1e-12);
        assert!(word_similarity(a, b) < 0.5);
    }

    #[test]
    fn similar_pairs_thresholding() {
        let posts = vec![
            "selling tiktok account aged organic followers".to_string(),
            "selling tiktok account aged organic followers".to_string(),
            "fresh instagram page fashion niche for sale".to_string(),
        ];
        let pairs = similar_pairs(&posts, 0.88);
        assert_eq!(pairs.len(), 1);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 1));
        assert!((pairs[0].2 - 1.0).abs() < 1e-12);
    }
}
