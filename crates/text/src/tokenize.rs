//! Word tokenization and normalization.

/// Tokenize text into lowercase word tokens. A token is a maximal run of
/// alphanumeric characters (Unicode), with apostrophes allowed inside words
/// (`don't` stays one token). Emoji, punctuation, and symbols are dropped.
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            for lc in c.to_lowercase() {
                current.push(lc);
            }
        } else if c == '\'' && !current.is_empty() {
            current.push(c);
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    // Trim trailing apostrophes left by closing quotes.
    for t in &mut tokens {
        while t.ends_with('\'') {
            t.pop();
        }
    }
    tokens.retain(|t| !t.is_empty());
    tokens
}

/// Tokenize and drop tokens that are pure numbers — the paper's underground
/// similarity analysis removes numbers and punctuation before comparing.
pub fn tokenize_alpha(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !t.chars().all(|c| c.is_ascii_digit()))
        .collect()
}

/// Tokenize, lowercase, and drop stop words — the standard pre-embedding
/// pipeline.
pub fn tokenize_content(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| !crate::stopwords::is_stopword(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokenization() {
        assert_eq!(
            tokenize("Buy NOW: 2.1M followers!"),
            vec!["buy", "now", "2", "1m", "followers"]
        );
    }

    #[test]
    fn apostrophes_inside_words() {
        assert_eq!(tokenize("don't miss it"), vec!["don't", "miss", "it"]);
    }

    #[test]
    fn closing_quotes_trimmed() {
        assert_eq!(tokenize("the sellers' offer"), vec!["the", "sellers", "offer"]);
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("CRÈME Brûlée"), vec!["crème", "brûlée"]);
    }

    #[test]
    fn emoji_and_punct_dropped() {
        assert_eq!(tokenize("win 🎉 $$$ now!!!"), vec!["win", "now"]);
    }

    #[test]
    fn alpha_filter_drops_numbers() {
        assert_eq!(
            tokenize_alpha("account 12345 with 99 likes"),
            vec!["account", "with", "likes"]
        );
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!!! ...").is_empty());
    }

    #[test]
    fn content_tokens_exclude_stopwords() {
        let toks = tokenize_content("this is the best crypto investment of the year");
        assert!(!toks.contains(&"the".to_string()));
        assert!(!toks.contains(&"is".to_string()));
        assert!(toks.contains(&"crypto".to_string()));
    }
}
