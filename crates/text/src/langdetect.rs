//! Character-trigram language identification — the CLD2 stand-in.
//!
//! The paper keeps only English posts for the scam-clustering pipeline,
//! using CLD2. We train a tiny Naive-Bayes classifier over character
//! trigrams from embedded sample text in eight languages. On the synthetic
//! corpus (template-generated posts plus generated non-English decoys) the
//! classifier plays the exact role CLD2 played: a cheap, high-precision
//! English filter.

use crate::ngram::char_trigrams;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Languages the detector distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Lang {
    /// English.
    English,
    /// Spanish.
    Spanish,
    /// French.
    French,
    /// German.
    German,
    /// Portuguese.
    Portuguese,
    /// Italian.
    Italian,
    /// Turkish.
    Turkish,
    /// Russian.
    Russian,
    /// Text too short or too ambiguous to classify.
    Unknown,
}

impl Lang {
    /// ISO-639-1 code.
    pub fn code(self) -> &'static str {
        match self {
            Lang::English => "en",
            Lang::Spanish => "es",
            Lang::French => "fr",
            Lang::German => "de",
            Lang::Portuguese => "pt",
            Lang::Italian => "it",
            Lang::Turkish => "tr",
            Lang::Russian => "ru",
            Lang::Unknown => "und",
        }
    }
}

/// Embedded training text. A few hundred characters per language of
/// generic prose is plenty for trigram NB at post length.
const SAMPLES: &[(Lang, &str)] = &[
    (
        Lang::English,
        "the quick brown fox jumps over the lazy dog and everyone who has ever tried to \
         sell anything online knows that trust is the most important thing you can offer \
         your followers this account comes with real active users and strong engagement \
         we are happy to answer any questions about the business and how it makes money \
         please send a message before buying and check the reviews from other happy \
         customers this is a great opportunity for anyone who wants to grow quickly \
         limited investment pool closes in hours double your wallet deposit with zero \
         risk guaranteed profit click the link and verify your login to claim the \
         prize follow like share and subscribe for daily giveaways the account comes \
         with original email included fresh and ready for promotion deals and \
         discounts book the cheap travel package today join the premium picks group",
    ),
    (
        Lang::Spanish,
        "el rápido zorro marrón salta sobre el perro perezoso y todos los que alguna vez \
         han intentado vender algo en línea saben que la confianza es lo más importante \
         esta cuenta viene con usuarios reales y activos y un gran compromiso estamos \
         encantados de responder cualquier pregunta sobre el negocio y cómo genera dinero \
         por favor envíe un mensaje antes de comprar y revise las opiniones de otros \
         clientes satisfechos una gran oportunidad para quien quiera crecer rápido",
    ),
    (
        Lang::French,
        "le rapide renard brun saute par dessus le chien paresseux et tous ceux qui ont \
         déjà essayé de vendre quelque chose en ligne savent que la confiance est la \
         chose la plus importante ce compte est livré avec de vrais utilisateurs actifs \
         et un fort engagement nous serons heureux de répondre à toutes vos questions \
         sur l'activité et la manière dont elle génère des revenus veuillez envoyer un \
         message avant d'acheter et consulter les avis des autres clients satisfaits",
    ),
    (
        Lang::German,
        "der schnelle braune fuchs springt über den faulen hund und jeder der schon \
         einmal versucht hat etwas online zu verkaufen weiß dass vertrauen das \
         wichtigste ist dieses konto kommt mit echten aktiven nutzern und starkem \
         engagement wir beantworten gerne alle fragen zum geschäft und dazu wie es geld \
         verdient bitte senden sie vor dem kauf eine nachricht und lesen sie die \
         bewertungen anderer zufriedener kunden eine großartige gelegenheit zu wachsen",
    ),
    (
        Lang::Portuguese,
        "a rápida raposa marrom pula sobre o cão preguiçoso e todos que já tentaram \
         vender algo online sabem que a confiança é a coisa mais importante esta conta \
         vem com usuários reais e ativos e forte engajamento ficamos felizes em \
         responder qualquer pergunta sobre o negócio e como ele gera dinheiro por favor \
         envie uma mensagem antes de comprar e confira as avaliações de outros clientes \
         satisfeitos uma ótima oportunidade para quem quer crescer rapidamente",
    ),
    (
        Lang::Italian,
        "la veloce volpe marrone salta sopra il cane pigro e chiunque abbia mai provato \
         a vendere qualcosa online sa che la fiducia è la cosa più importante questo \
         account viene fornito con utenti reali e attivi e un forte coinvolgimento \
         saremo felici di rispondere a qualsiasi domanda sul business e su come genera \
         denaro si prega di inviare un messaggio prima di acquistare e controllare le \
         recensioni di altri clienti soddisfatti una grande opportunità per crescere",
    ),
    (
        Lang::Turkish,
        "hızlı kahverengi tilki tembel köpeğin üzerinden atlar ve internette bir şey \
         satmayı deneyen herkes güvenin sunabileceğiniz en önemli şey olduğunu bilir bu \
         hesap gerçek aktif kullanıcılar ve güçlü etkileşim ile birlikte gelir işin \
         nasıl para kazandığı hakkında her türlü soruyu yanıtlamaktan mutluluk duyarız \
         lütfen satın almadan önce mesaj gönderin ve diğer memnun müşterilerin \
         yorumlarını kontrol edin hızla büyümek isteyen herkes için harika bir fırsat",
    ),
    (
        Lang::Russian,
        "быстрая коричневая лиса перепрыгивает через ленивую собаку и каждый кто \
         когда либо пытался что то продать в интернете знает что доверие это самое \
         важное этот аккаунт поставляется с реальными активными пользователями и \
         сильной вовлеченностью мы с радостью ответим на любые вопросы о бизнесе и о \
         том как он приносит деньги пожалуйста отправьте сообщение перед покупкой и \
         проверьте отзывы других довольных клиентов отличная возможность быстро расти",
    ),
];

const ALL_LANGS: [Lang; 8] = [
    Lang::English,
    Lang::Spanish,
    Lang::French,
    Lang::German,
    Lang::Portuguese,
    Lang::Italian,
    Lang::Turkish,
    Lang::Russian,
];

struct Profile {
    lang: Lang,
    log_probs: HashMap<String, f64>,
    log_default: f64,
}

fn profiles() -> &'static Vec<Profile> {
    static PROFILES: OnceLock<Vec<Profile>> = OnceLock::new();
    PROFILES.get_or_init(|| {
        SAMPLES
            .iter()
            .map(|(lang, sample)| {
                let grams = char_trigrams(sample);
                let total = grams.len() as f64;
                let mut counts: HashMap<String, f64> = HashMap::new();
                for g in grams {
                    *counts.entry(g).or_insert(0.0) += 1.0;
                }
                // Frequency-based scores with a floor that is IDENTICAL
                // across languages — otherwise profile size biases the
                // unmatched-trigram penalty and short texts drift toward
                // whichever language has the smallest sample.
                const FLOOR: f64 = 1e-6;
                let log_probs = counts
                    .into_iter()
                    .map(|(g, c)| (g, (c / total + FLOOR).ln()))
                    .collect();
                let log_default = FLOOR.ln();
                Profile { lang: *lang, log_probs, log_default }
            })
            .collect()
    })
}

/// Minimum trigram count below which we return [`Lang::Unknown`].
pub(crate) const MIN_TRIGRAMS: usize = 6;

/// Detect the language of `text`.
///
/// Returns [`Lang::Unknown`] for texts shorter than [`MIN_TRIGRAMS`]
/// trigrams or when the best and second-best scores are indistinguishable
/// (< 2% margin per trigram).
pub fn detect_language(text: &str) -> Lang {
    let grams = char_trigrams(text);
    if grams.len() < MIN_TRIGRAMS {
        return Lang::Unknown;
    }
    let mut scores: Vec<(Lang, f64)> = profiles()
        .iter()
        .map(|p| {
            let score: f64 = grams
                .iter()
                .map(|g| p.log_probs.get(g).copied().unwrap_or(p.log_default))
                .sum();
            (p.lang, score)
        })
        .collect();
    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    let (best, best_score) = scores[0];
    let (_, second_score) = scores[1];
    // Per-trigram margin gate against ambiguous text.
    let margin = (best_score - second_score) / grams.len() as f64;
    if margin < 0.02 {
        return Lang::Unknown;
    }
    best
}

/// `true` when the text is confidently English — the pipeline's filter.
pub fn is_english(text: &str) -> bool {
    detect_language(text) == Lang::English
}

/// All supported (non-Unknown) languages.
// conformance: allow(pub-hygiene) — tested enumeration surface kept as public API
pub fn supported_languages() -> &'static [Lang] {
    &ALL_LANGS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn english_detected() {
        let t = "Selling this amazing Instagram account with real followers and great \
                 engagement, message me before buying please";
        assert_eq!(detect_language(t), Lang::English);
    }

    #[test]
    fn spanish_detected() {
        let t = "Vendo esta cuenta increíble con seguidores reales y un gran compromiso, \
                 envíame un mensaje antes de comprar por favor";
        assert_eq!(detect_language(t), Lang::Spanish);
    }

    #[test]
    fn german_detected() {
        let t = "Verkaufe dieses Konto mit echten Followern und starkem Engagement, \
                 bitte schreiben Sie mir vor dem Kauf eine Nachricht";
        assert_eq!(detect_language(t), Lang::German);
    }

    #[test]
    fn russian_detected() {
        let t = "Продаю этот аккаунт с реальными подписчиками, напишите мне сообщение перед покупкой";
        assert_eq!(detect_language(t), Lang::Russian);
    }

    #[test]
    fn french_detected() {
        let t = "Je vends ce compte avec de vrais abonnés et un fort engagement, \
                 envoyez moi un message avant d'acheter s'il vous plaît";
        assert_eq!(detect_language(t), Lang::French);
    }

    #[test]
    fn short_text_is_unknown() {
        assert_eq!(detect_language("ok"), Lang::Unknown);
        assert_eq!(detect_language(""), Lang::Unknown);
    }

    #[test]
    fn english_filter() {
        assert!(is_english("follow this account for daily crypto trading signals and tips"));
        assert!(!is_english("sígueme para señales diarias de comercio de criptomonedas y consejos"));
    }

    #[test]
    fn codes_are_iso() {
        assert_eq!(Lang::English.code(), "en");
        assert_eq!(Lang::Unknown.code(), "und");
        assert_eq!(supported_languages().len(), 8);
    }
}
