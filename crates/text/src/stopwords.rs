//! English stop-word list (the BERTopic/scikit-learn set, abridged to the
//! words that actually occur in social-media post text).

/// Sorted stop-word table; looked up via binary search.
static STOPWORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "against", "all", "am", "an", "and", "any", "are",
    "aren't", "as", "at", "be", "because", "been", "before", "being", "below", "between", "both",
    "but", "by", "can", "can't", "cannot", "could", "couldn't", "did", "didn't", "do", "does",
    "doesn't", "doing", "don't", "down", "during", "each", "few", "for", "from", "further", "get",
    "got", "had", "hadn't", "has", "hasn't", "have", "haven't", "having", "he", "he'd", "he'll",
    "he's", "her", "here", "here's", "hers", "herself", "him", "himself", "his", "how", "how's",
    "i", "i'd", "i'll", "i'm", "i've", "if", "in", "into", "is", "isn't", "it", "it's", "its",
    "itself", "just", "let's", "me", "more", "most", "mustn't", "my", "myself", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "ought", "our", "ours",
    "ourselves", "out", "over", "own", "same", "shan't", "she", "she'd", "she'll", "she's",
    "should", "shouldn't", "so", "some", "such", "than", "that", "that's", "the", "their",
    "theirs", "them", "themselves", "then", "there", "there's", "these", "they", "they'd",
    "they'll", "they're", "they've", "this", "those", "through", "to", "too", "under", "until",
    "up", "very", "was", "wasn't", "we", "we'd", "we'll", "we're", "we've", "were", "weren't",
    "what", "what's", "when", "when's", "where", "where's", "which", "while", "who", "who's",
    "whom", "why", "why's", "will", "with", "won't", "would", "wouldn't", "you", "you'd",
    "you'll", "you're", "you've", "your", "yours", "yourself", "yourselves",
];

/// Is `word` (already lowercased) an English stop word?
pub fn is_stopword(word: &str) -> bool {
    STOPWORDS.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_sorted_and_deduped() {
        for w in STOPWORDS.windows(2) {
            assert!(w[0] < w[1], "{} >= {}", w[0], w[1]);
        }
    }

    #[test]
    fn common_words_are_stopwords() {
        for w in ["the", "and", "you're", "won't", "is"] {
            assert!(is_stopword(w), "{w} should be a stop word");
        }
    }

    #[test]
    fn content_words_are_not() {
        for w in ["crypto", "followers", "giveaway", "account", "bitcoin"] {
            assert!(!is_stopword(w), "{w} must not be a stop word");
        }
    }
}
