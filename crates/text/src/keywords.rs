//! Class-based TF-IDF keyword extraction — the KeyBERT stand-in.
//!
//! BERTopic labels clusters by c-TF-IDF: treat each cluster as one
//! super-document, compute term frequencies per class, and weight by how
//! exclusive a term is to the class. The top-weighted terms are the
//! cluster's keywords, which the paper's analysts used to decide whether a
//! cluster is scam-related.

use crate::tokenize::tokenize_content;
use std::collections::HashMap;

/// Extract the top `k` keywords for each cluster.
///
/// `docs` is the corpus; `cluster_of[i]` is the cluster id of `docs[i]` or
/// `None` for noise. Returns a vector indexed by cluster id.
pub fn class_tfidf_keywords(
    docs: &[String],
    cluster_of: &[Option<usize>],
    k: usize,
) -> Vec<Vec<String>> {
    assert_eq!(docs.len(), cluster_of.len(), "corpus/label length mismatch");
    let n_clusters = cluster_of.iter().flatten().max().map(|m| m + 1).unwrap_or(0);
    if n_clusters == 0 {
        return Vec::new();
    }

    // Per-class term frequencies and global term class-frequency.
    let mut class_tf: Vec<HashMap<String, f64>> = vec![HashMap::new(); n_clusters];
    let mut class_len = vec![0.0f64; n_clusters];
    for (doc, label) in docs.iter().zip(cluster_of) {
        let Some(c) = *label else { continue };
        for t in tokenize_content(doc) {
            *class_tf[c].entry(t).or_insert(0.0) += 1.0;
            class_len[c] += 1.0;
        }
    }
    let mut term_class_count: HashMap<&str, f64> = HashMap::new();
    for tf in &class_tf {
        for term in tf.keys() {
            *term_class_count.entry(term.as_str()).or_insert(0.0) += 1.0;
        }
    }

    let nc = n_clusters as f64;
    (0..n_clusters)
        .map(|c| {
            let mut scored: Vec<(String, f64)> = class_tf[c]
                .iter()
                .map(|(term, &tf)| {
                    let norm_tf = if class_len[c] > 0.0 { tf / class_len[c] } else { 0.0 };
                    // BERTopic's c-TF-IDF: tf * ln(1 + C / cf).
                    let cf = term_class_count[term.as_str()];
                    (term.clone(), norm_tf * (1.0 + nc / cf).ln())
                })
                .collect();
            scored.sort_by(|a, b| {
                b.1.total_cmp(&a.1)
                    .then_with(|| a.0.cmp(&b.0))
            });
            scored.into_iter().take(k).map(|(t, _)| t).collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (Vec<String>, Vec<Option<usize>>) {
        let docs = vec![
            "huge crypto giveaway send bitcoin wallet double rewards".to_string(),
            "crypto bitcoin giveaway event send wallet win big".to_string(),
            "bitcoin wallet giveaway crypto promo today".to_string(),
            "cheap travel deals book flights hotel vacation".to_string(),
            "travel vacation deals flights discount book today".to_string(),
            "random unrelated noise post".to_string(),
        ];
        let labels = vec![Some(0), Some(0), Some(0), Some(1), Some(1), None];
        (docs, labels)
    }

    #[test]
    fn keywords_characterize_clusters() {
        let (docs, labels) = corpus();
        let kws = class_tfidf_keywords(&docs, &labels, 4);
        assert_eq!(kws.len(), 2);
        assert!(kws[0].iter().any(|w| w == "crypto" || w == "bitcoin" || w == "giveaway"));
        assert!(kws[1].iter().any(|w| w == "travel" || w == "flights" || w == "vacation"));
        // Cross-contamination check.
        assert!(!kws[1].contains(&"crypto".to_string()));
        assert!(!kws[0].contains(&"travel".to_string()));
    }

    #[test]
    fn exclusive_terms_outrank_shared_terms() {
        let docs = vec![
            "alpha alpha shared".to_string(),
            "beta beta shared".to_string(),
        ];
        let labels = vec![Some(0), Some(1)];
        let kws = class_tfidf_keywords(&docs, &labels, 2);
        assert_eq!(kws[0][0], "alpha");
        assert_eq!(kws[1][0], "beta");
    }

    #[test]
    fn noise_docs_are_ignored() {
        let (docs, mut labels) = corpus();
        // Turn the noise doc into would-be-dominant content.
        let mut docs = docs;
        docs[5] = "zebra zebra zebra zebra zebra".to_string();
        labels[5] = None;
        let kws = class_tfidf_keywords(&docs, &labels, 10);
        assert!(kws.iter().all(|cluster| !cluster.contains(&"zebra".to_string())));
    }

    #[test]
    fn empty_cluster_set() {
        let docs = vec!["a b c".to_string()];
        let labels = vec![None];
        assert!(class_tfidf_keywords(&docs, &labels, 3).is_empty());
    }

    #[test]
    fn k_larger_than_vocab() {
        let docs = vec!["one two".to_string()];
        let labels = vec![Some(0)];
        let kws = class_tfidf_keywords(&docs, &labels, 50);
        assert_eq!(kws[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_inputs_panic() {
        let _ = class_tfidf_keywords(&["a".to_string()], &[], 1);
    }
}
