#![warn(missing_docs)]

//! # acctrade-text
//!
//! A from-scratch text-analysis toolkit replacing the Python NLP stack the
//! paper used for its scam-post analysis (§6):
//!
//! | Paper stack | This crate |
//! |---|---|
//! | CLD2 language detection | [`langdetect`] — char-trigram Naive Bayes |
//! | BERTopic stop-word removal | [`stopwords`] + [`mod@tokenize`] |
//! | all-mpnet-base-v2 embeddings | [`vectorize`] (TF-IDF) + [`embed`] (seeded random projection) |
//! | UMAP | [`reduce`] — power-iteration PCA |
//! | HDBSCAN | [`cluster`] — DBSCAN and an HDBSCAN-style variant |
//! | KeyBERT | [`keywords`] — class-based TF-IDF (c-TF-IDF) |
//! | manual similarity analysis | [`similarity`] — normalized word-level similarity |
//!
//! The substitutions are honest algorithmic stand-ins: the synthetic corpus
//! is template-generated, so lexical clustering recovers the same scam
//! families the neural stack recovers on the real corpus. See DESIGN.md for
//! the substitution rationale.

pub mod cluster;
pub mod embed;
pub mod keywords;
pub mod langdetect;
pub mod ngram;
pub mod reduce;
pub mod similarity;
pub mod stopwords;
pub mod tokenize;
pub mod vectorize;

pub use cluster::{dbscan, hdbscan, ClusterLabel, ClusterParams};
pub use embed::Embedder;
pub use keywords::class_tfidf_keywords;
pub use langdetect::{detect_language, Lang};
pub use similarity::word_similarity;
pub use tokenize::tokenize;
pub use vectorize::{cosine, TfIdfModel};
