//! Dense sentence embeddings via feature hashing + seeded random projection
//! — the all-mpnet-base-v2 stand-in.
//!
//! A document's content tokens (unigrams and bigrams) are hashed into a
//! large sparse space, then projected to `dim` dense dimensions with a
//! seeded sign-random projection. By the Johnson–Lindenstrauss lemma the
//! projection approximately preserves cosine geometry, which is the only
//! property the downstream clusterer depends on. On the template-generated
//! corpus, documents from the same scam family share most of their n-grams
//! and land close together — the same qualitative behaviour the neural
//! embedder exhibits on the real corpus.

use crate::ngram::word_ngrams;
use crate::tokenize::tokenize_content;

/// A dense embedding vector.
pub type Embedding = Vec<f32>;

/// A deterministic document embedder.
#[derive(Debug, Clone)]
pub struct Embedder {
    dim: usize,
    seed: u64,
    use_bigrams: bool,
}

impl Embedder {
    /// Create an embedder with output dimensionality `dim`.
    ///
    /// # Panics
    /// Panics if `dim` is zero.
    pub fn new(dim: usize, seed: u64) -> Embedder {
        assert!(dim > 0, "embedding dimension must be positive");
        Embedder { dim, seed, use_bigrams: true }
    }

    /// Disable bigram features (ablation switch).
    pub fn unigrams_only(mut self) -> Embedder {
        self.use_bigrams = false;
        self
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Embed one document into an L2-normalized dense vector. Documents
    /// with no content tokens embed to the zero vector.
    pub fn embed(&self, text: &str) -> Embedding {
        let tokens = tokenize_content(text);
        let mut features: Vec<String> = tokens.clone();
        if self.use_bigrams {
            features.extend(word_ngrams(&tokens, 2));
        }
        let mut v = vec![0.0f32; self.dim];
        for feat in &features {
            let h = fnv1a(feat.as_bytes()) ^ self.seed;
            // Two independent sub-hashes: one picks the dimension, one the
            // sign. This is the standard signed feature-hashing trick.
            let d = (h % self.dim as u64) as usize;
            let sign = if (h >> 32) & 1 == 0 { 1.0 } else { -1.0 };
            v[d] += sign;
        }
        l2_normalize(&mut v);
        v
    }

    /// Embed a corpus.
    pub fn embed_all(&self, corpus: &[String]) -> Vec<Embedding> {
        corpus.iter().map(|d| self.embed(d)).collect()
    }
}

/// Cosine similarity between dense vectors (0 for zero vectors).
// conformance: allow(pub-hygiene) — tested metric surface kept as public API
pub fn dense_cosine(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| f64::from(*x) * f64::from(*y)).sum();
    let na: f64 = a.iter().map(|x| f64::from(*x) * f64::from(*x)).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| f64::from(*x) * f64::from(*x)).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        (dot / (na * nb)).clamp(-1.0, 1.0)
    }
}

/// Euclidean distance between dense vectors.
// conformance: allow(pub-hygiene) — tested metric surface kept as public API
pub fn euclidean(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = f64::from(*x) - f64::from(*y);
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

fn l2_normalize(v: &mut [f32]) {
    let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_deterministic() {
        let e = Embedder::new(64, 42);
        assert_eq!(e.embed("free crypto now"), e.embed("free crypto now"));
    }

    #[test]
    fn different_seeds_differ() {
        let a = Embedder::new(64, 1).embed("free crypto now");
        let b = Embedder::new(64, 2).embed("free crypto now");
        assert_ne!(a, b);
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = Embedder::new(128, 7);
        let v = e.embed("selling instagram account with followers");
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_doc_embeds_to_zero() {
        let e = Embedder::new(32, 7);
        let v = e.embed("the of and");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn same_family_closer_than_cross_family() {
        let e = Embedder::new(256, 99);
        let a = e.embed("huge crypto giveaway send bitcoin to this wallet win double back");
        let b = e.embed("crypto giveaway today send bitcoin wallet and win double rewards");
        let c = e.embed("cute puppy photos every single morning follow for dogs");
        assert!(dense_cosine(&a, &b) > dense_cosine(&a, &c) + 0.1);
    }

    #[test]
    fn euclidean_and_cosine_consistent_on_unit_vectors() {
        let e = Embedder::new(256, 5);
        let a = e.embed("fake travel deal cheap flights limited offer book now");
        let b = e.embed("cheap flights travel deal limited time book today");
        // For unit vectors d^2 = 2 - 2cos.
        let d = euclidean(&a, &b);
        let cos = dense_cosine(&a, &b);
        assert!((d * d - (2.0 - 2.0 * cos)).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_panics() {
        let _ = Embedder::new(0, 1);
    }
}
