//! Character n-gram extraction — the feature space of the language
//! identifier and the hashing vectorizer.

/// Extract character trigrams from text, after lowercasing and collapsing
/// whitespace runs to single spaces. Text is padded with leading/trailing
/// spaces so word boundaries contribute features.
pub fn char_trigrams(text: &str) -> Vec<String> {
    let normalized = normalize(text);
    if normalized.trim().is_empty() {
        return Vec::new();
    }
    let chars: Vec<char> = normalized.chars().collect();
    if chars.len() < 3 {
        return if chars.is_empty() {
            Vec::new()
        } else {
            vec![chars.iter().collect()]
        };
    }
    chars.windows(3).map(|w| w.iter().collect()).collect()
}

/// Lowercase, strip digits/punctuation to spaces, collapse whitespace, and
/// pad with a leading/trailing space.
fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    out.push(' ');
    let mut prev_space = true;
    for c in text.chars() {
        if c.is_alphabetic() {
            for lc in c.to_lowercase() {
                out.push(lc);
            }
            prev_space = false;
        } else if !prev_space {
            out.push(' ');
            prev_space = true;
        }
    }
    if !out.ends_with(' ') {
        out.push(' ');
    }
    out
}

/// Word n-grams (n >= 1) over a token sequence; used by the similarity
/// analysis to catch near-duplicate listings with small word edits.
pub fn word_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram order must be at least 1");
    if tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigram_counts() {
        // " abc " -> 3 windows over 5 chars.
        let t = char_trigrams("abc");
        assert_eq!(t.len(), 3);
        assert_eq!(t[0], " ab");
        assert_eq!(t[2], "bc ");
    }

    #[test]
    fn digits_and_punct_become_boundaries() {
        let t = char_trigrams("a1b");
        // normalizes to " a b " -> windows " a ", "a b", " b "
        assert!(t.contains(&"a b".to_string()));
    }

    #[test]
    fn short_text() {
        assert!(char_trigrams("").is_empty());
        assert_eq!(char_trigrams("a"), vec![" a ".to_string()]);
    }

    #[test]
    fn word_ngrams_basic() {
        let toks: Vec<String> = ["selling", "tiktok", "account"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(word_ngrams(&toks, 2), vec!["selling tiktok", "tiktok account"]);
        assert_eq!(word_ngrams(&toks, 1).len(), 3);
        assert!(word_ngrams(&toks, 4).is_empty());
    }

    #[test]
    #[should_panic(expected = "n-gram order")]
    fn zero_order_panics() {
        let _ = word_ngrams(&[], 0);
    }
}
