//! Dimensionality reduction — the UMAP stand-in.
//!
//! Before density clustering, the paper's pipeline reduces embeddings with
//! UMAP. We use PCA computed by power iteration with deflation: for this
//! corpus (lexically separated template families) a linear projection
//! preserves the cluster structure the density clusterer needs, and PCA is
//! deterministic and dependency-free.

use foundation::rng::{Rng, RngExt, SeedableRng};
use foundation::rng::ChaCha8Rng;

/// Reduce `data` (rows = points) to `k` principal components.
///
/// Returns the projected points (rows of length `k`). `seed` initializes
/// the power iteration start vectors. Input rows must share one length.
///
/// # Panics
/// Panics if `data` is empty, rows are ragged, or `k` is zero.
pub fn pca_reduce(data: &[Vec<f32>], k: usize, seed: u64) -> Vec<Vec<f32>> {
    assert!(!data.is_empty(), "no data");
    assert!(k > 0, "k must be positive");
    let dim = data[0].len();
    assert!(data.iter().all(|r| r.len() == dim), "ragged rows");
    let k = k.min(dim);
    let n = data.len();

    // Center the data.
    let mut mean = vec![0.0f64; dim];
    for row in data {
        for (m, &x) in mean.iter_mut().zip(row) {
            *m += f64::from(x);
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    let centered: Vec<Vec<f64>> = data
        .iter()
        .map(|row| row.iter().zip(&mean).map(|(&x, m)| f64::from(x) - m).collect())
        .collect();

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9CA0_0000_0000_000A);
    let mut components: Vec<Vec<f64>> = Vec::with_capacity(k);

    for _ in 0..k {
        let mut v = random_unit(&mut rng, dim);
        for _iter in 0..60 {
            // w = C^T C v  computed as sum over rows without materializing C^T C.
            let mut w = vec![0.0f64; dim];
            for row in &centered {
                let proj: f64 = row.iter().zip(&v).map(|(a, b)| a * b).sum();
                for (wi, &ri) in w.iter_mut().zip(row) {
                    *wi += proj * ri;
                }
            }
            // Deflate previously found components.
            for c in &components {
                let d: f64 = w.iter().zip(c).map(|(a, b)| a * b).sum();
                for (wi, &ci) in w.iter_mut().zip(c) {
                    *wi -= d * ci;
                }
            }
            let norm: f64 = w.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                // Degenerate direction (rank exhausted); keep previous v.
                break;
            }
            let mut next: Vec<f64> = w.into_iter().map(|x| x / norm).collect();
            // Convergence check.
            let delta: f64 = next
                .iter()
                .zip(&v)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            std::mem::swap(&mut v, &mut next);
            if delta < 1e-9 {
                break;
            }
        }
        components.push(v);
    }

    centered
        .iter()
        .map(|row| {
            components
                .iter()
                .map(|c| row.iter().zip(c).map(|(a, b)| a * b).sum::<f64>() as f32)
                .collect()
        })
        .collect()
}

fn random_unit(rng: &mut impl Rng, dim: usize) -> Vec<f64> {
    loop {
        let v: Vec<f64> = (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect();
        let n: f64 = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        if n > 1e-9 {
            return v.into_iter().map(|x| x / n).collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight blobs along the x-axis in 5-D.
    fn blobs() -> Vec<Vec<f32>> {
        let mut data = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f32 * 0.01;
            let mut a = vec![0.0f32; 5];
            a[0] = 10.0 + jitter;
            a[1] = jitter;
            data.push(a);
            let mut b = vec![0.0f32; 5];
            b[0] = -10.0 - jitter;
            b[1] = -jitter;
            data.push(b);
        }
        data
    }

    #[test]
    fn first_component_separates_blobs() {
        let data = blobs();
        let reduced = pca_reduce(&data, 1, 3);
        // Points from blob A (even indices) all on one side, blob B other side.
        let a_side = reduced[0][0].signum();
        for (i, r) in reduced.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(r[0].signum(), a_side, "point {i}");
            } else {
                assert_eq!(r[0].signum(), -a_side, "point {i}");
            }
            assert!(r[0].abs() > 5.0);
        }
    }

    #[test]
    fn output_shape() {
        let data = blobs();
        let reduced = pca_reduce(&data, 3, 1);
        assert_eq!(reduced.len(), data.len());
        assert!(reduced.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn k_clamped_to_dim() {
        let data = vec![vec![1.0f32, 2.0], vec![3.0, 4.0], vec![0.0, 1.0]];
        let reduced = pca_reduce(&data, 10, 1);
        assert_eq!(reduced[0].len(), 2);
    }

    #[test]
    fn deterministic_under_seed() {
        let data = blobs();
        assert_eq!(pca_reduce(&data, 2, 9), pca_reduce(&data, 2, 9));
    }

    #[test]
    fn variance_ordering_of_components() {
        // Column 0 has much higher variance than column 1.
        let data = blobs();
        let reduced = pca_reduce(&data, 2, 4);
        let var = |idx: usize| {
            let mean: f32 = reduced.iter().map(|r| r[idx]).sum::<f32>() / reduced.len() as f32;
            reduced.iter().map(|r| (r[idx] - mean).powi(2)).sum::<f32>() / reduced.len() as f32
        };
        assert!(var(0) > var(1) * 10.0, "v0={} v1={}", var(0), var(1));
    }

    #[test]
    #[should_panic(expected = "no data")]
    fn empty_input_panics() {
        let _ = pca_reduce(&[], 2, 1);
    }
}
