//! The live ops plane: a virtual host exposing the running system.
//!
//! Mounting an [`OpsPlane`] on a server (via
//! [`crate::server::ServerConfig::ops`]) adds the `ops.acctrade.local`
//! virtual host with four endpoints:
//!
//! * `GET /healthz` — liveness: `ok` + uptime;
//! * `GET /metrics` — Prometheus text exposition of the attached
//!   campaign recorder (label `source="campaign"`) and the server-side
//!   recorder (`source="server"`), rendered live from registry state;
//! * `GET /statz` — JSON: [`crate::stats::ServerStats`] snapshot,
//!   current worker-queue depth, shed count, uptime;
//! * `GET /tracez` — JSON: the most recent trace-ring records plus the
//!   slow-request log (spans over the configurable threshold, see
//!   [`OpsPlane::set_slow_threshold_us`]).
//!
//! The plane carries two recorders on purpose: the **campaign**
//! recorder is the study's own (its counters must reconcile with the
//! final `TELEMETRY_report.json`), while wall-clock server observations
//! (request-phase histograms, per-host tallies) land in the separate
//! **server** recorder so the campaign manifest stays a pure function
//! of the seed even when scraped mid-run.

use crate::pool::ConnQueue;
use crate::stats::ServerStats;
use acctrade_net::http::{Request, Response, Status};
use acctrade_net::server::{RequestCtx, Service};
use foundation::json::Json;
use foundation::sync::Mutex;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Instant;
use telemetry::trace::{RetainedRecord, TraceRecord};
use telemetry::{render_prometheus, Recorder, Tracer};

/// The hostname the ops plane is mounted under.
pub const OPS_HOST: &str = "ops.acctrade.local";

/// How many trace records `/tracez` returns.
const TRACEZ_TAIL: usize = 128;

struct OpsInner {
    started: Instant,
    campaign: Mutex<Option<Recorder>>,
    server: Recorder,
    tracer: Tracer,
    stats: Mutex<Option<Arc<ServerStats>>>,
    queue: Mutex<Option<Arc<ConnQueue<TcpStream>>>>,
}

/// Shared state behind the ops virtual host. Clones share everything.
#[derive(Clone)]
pub struct OpsPlane {
    inner: Arc<OpsInner>,
}

impl Default for OpsPlane {
    fn default() -> Self {
        OpsPlane::new()
    }
}

impl OpsPlane {
    /// A fresh plane with its own server recorder and tracer.
    pub fn new() -> OpsPlane {
        OpsPlane {
            inner: Arc::new(OpsInner {
                started: Instant::now(),
                campaign: Mutex::new(None),
                server: Recorder::new(),
                tracer: Tracer::new(),
                stats: Mutex::new(None),
                queue: Mutex::new(None),
            }),
        }
    }

    /// Attach the campaign's recorder; its live counters become the
    /// `source="campaign"` series of `/metrics`.
    pub fn attach_campaign(&self, rec: Recorder) {
        *self.inner.campaign.lock() = Some(rec);
    }

    /// The server-side recorder (request-phase histograms, wall-clock
    /// observations) — distinct from the campaign recorder so scraping
    /// never perturbs deterministic artifacts.
    pub fn server_recorder(&self) -> &Recorder {
        &self.inner.server
    }

    /// The trace ring shared by the server's request spans and (when
    /// set as a recorder sink) the campaign's stage spans.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Set the slow-request threshold (wall µs) for `/tracez`.
    pub fn set_slow_threshold_us(&self, us: u64) {
        self.inner.tracer.set_slow_threshold_us(us);
    }

    /// Called by [`crate::server::HttpServer::bind`] when a server
    /// mounts this plane: gives `/statz` its live stats + queue view.
    pub(crate) fn attach_server(
        &self,
        stats: Arc<ServerStats>,
        queue: Arc<ConnQueue<TcpStream>>,
    ) {
        *self.inner.stats.lock() = Some(stats);
        *self.inner.queue.lock() = Some(queue);
    }

    /// Uptime in wall seconds.
    pub fn uptime_s(&self) -> f64 {
        self.inner.started.elapsed().as_secs_f64()
    }

    /// The `/metrics` exposition body.
    pub fn render_metrics(&self) -> String {
        let campaign = self.inner.campaign.lock().clone();
        let mut sources: Vec<(&str, &Recorder)> = Vec::with_capacity(2);
        if let Some(rec) = campaign.as_ref() {
            sources.push(("campaign", rec));
        }
        sources.push(("server", &self.inner.server));
        render_prometheus(&sources)
    }

    /// The `/statz` JSON document.
    pub fn statz_json(&self) -> Json {
        let snapshot = self.inner.stats.lock().as_ref().map(|s| s.snapshot());
        let depth = self.inner.queue.lock().as_ref().map(|q| q.depth()).unwrap_or(0);
        let mut fields: Vec<(String, Json)> = vec![
            ("uptime_s".into(), Json::Num(self.uptime_s())),
            ("queue_depth".into(), Json::Num(depth as f64)),
        ];
        match snapshot {
            Some(s) => {
                for (key, value) in [
                    ("accepted", s.accepted),
                    ("queue_rejected", s.queue_rejected),
                    ("requests", s.requests),
                    ("keepalive_reuse", s.keepalive_reuse),
                    ("parse_rejects", s.parse_rejects),
                    ("timeouts", s.timeouts),
                    ("queue_high_water", s.queue_high_water),
                ] {
                    fields.push((key.into(), Json::Num(value as f64)));
                }
            }
            None => fields.push(("server".into(), Json::Str("detached".into()))),
        }
        Json::Obj(fields)
    }

    /// The `/tracez` JSON document: recent records + the slow log.
    pub fn tracez_json(&self) -> Json {
        let recent = self.inner.tracer.recent(TRACEZ_TAIL);
        let spans: Vec<Json> = recent.iter().map(render_retained).collect();
        let slow: Vec<Json> = self
            .inner
            .tracer
            .slow_entries()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(e.name.clone())),
                    ("wall_dur_us".into(), Json::Num(e.wall_dur_us as f64)),
                    ("wall_start_us".into(), Json::Num(e.wall_start_us as f64)),
                    ("detail".into(), Json::Str(e.detail.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("slow_threshold_us".into(), Json::Num(self.inner.tracer.slow_threshold_us() as f64)),
            ("dropped".into(), Json::Num(self.inner.tracer.dropped() as f64)),
            ("threads".into(), Json::Num(self.inner.tracer.threads() as f64)),
            ("recent".into(), Json::Arr(spans)),
            ("slow".into(), Json::Arr(slow)),
        ])
    }
}

fn render_retained(r: &RetainedRecord) -> Json {
    let mut fields: Vec<(String, Json)> = vec![
        ("tid".into(), Json::Num(r.tid as f64)),
        ("name".into(), Json::Str(r.record.name().to_string())),
        ("wall_start_us".into(), Json::Num(r.record.wall_start_us() as f64)),
        ("wall_dur_us".into(), Json::Num(r.record.wall_dur_us() as f64)),
    ];
    let (kind, detail) = match &r.record {
        TraceRecord::Complete { cat, detail, .. } => (cat.as_str(), detail),
        TraceRecord::Instant { cat, detail, .. } => (cat.as_str(), detail),
    };
    fields.push(("cat".into(), Json::Str(kind.into())));
    fields.push(("detail".into(), Json::Str(detail.clone())));
    Json::Obj(fields)
}

/// The [`Service`] mounted under [`OPS_HOST`].
pub struct OpsService {
    plane: OpsPlane,
}

impl OpsService {
    /// Wrap a plane as a mountable service.
    pub fn new(plane: OpsPlane) -> OpsService {
        OpsService { plane }
    }
}

impl Service for OpsService {
    fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
        match req.url.path() {
            "/healthz" | "/" => Response::ok()
                .with_text(format!("ok\nuptime_s {:.3}\n", self.plane.uptime_s())),
            "/metrics" => Response::ok()
                .with_text(self.plane.render_metrics())
                .with_header("content-type", "text/plain; version=0.0.4"),
            "/statz" => Response::ok().with_json(self.plane.statz_json().render_pretty()),
            "/tracez" => Response::ok().with_json(self.plane.tracez_json().render_pretty()),
            other => Response::status(Status::NotFound)
                .with_text(format!("no such ops endpoint: {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acctrade_net::url::Url;
    use telemetry::trace::TraceCat;

    fn get(svc: &OpsService, path: &str) -> Response {
        let url = Url::parse(&format!("http://{OPS_HOST}{path}")).unwrap();
        svc.handle(&Request::get(url), &RequestCtx::test())
    }

    #[test]
    fn healthz_and_unknown_paths() {
        let svc = OpsService::new(OpsPlane::new());
        let resp = get(&svc, "/healthz");
        assert_eq!(resp.status, Status::Ok);
        assert!(resp.text().starts_with("ok\n"));
        assert_eq!(get(&svc, "/nope").status, Status::NotFound);
    }

    #[test]
    fn metrics_exposes_both_sources() {
        let plane = OpsPlane::new();
        let campaign = Recorder::new();
        campaign.incr("crawl.pages", &[("marketplace", "m")], 5);
        plane.attach_campaign(campaign);
        plane.server_recorder().incr("httpd.requests", &[], 2);
        let svc = OpsService::new(plane);
        let body = get(&svc, "/metrics").text();
        assert!(body.contains("source=\"campaign\""));
        assert!(body.contains("source=\"server\""));
        assert!(body.contains("crawl_pages"));
    }

    #[test]
    fn statz_reports_detached_without_a_server() {
        let svc = OpsService::new(OpsPlane::new());
        let body = get(&svc, "/statz").text();
        let doc = Json::parse(&body).unwrap();
        assert_eq!(doc.get("server").and_then(Json::as_str), Some("detached"));
        assert_eq!(doc.get("queue_depth").and_then(Json::as_num), Some(0.0));
    }

    #[test]
    fn tracez_returns_recent_and_slow() {
        let plane = OpsPlane::new();
        plane.set_slow_threshold_us(100);
        plane.tracer().record_complete(
            "http.request",
            TraceCat::Http,
            0,
            500,
            0,
            0,
            "GET /x -> 200",
        );
        let svc = OpsService::new(plane);
        let doc = Json::parse(&get(&svc, "/tracez").text()).unwrap();
        assert_eq!(doc.get("recent").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(doc.get("slow").and_then(Json::as_arr).map(|a| a.len()), Some(1));
        assert_eq!(doc.get("slow_threshold_us").and_then(Json::as_num), Some(100.0));
    }
}
