//! Lock-free server-side counters.
//!
//! The worker threads run outside any telemetry recorder scope (the
//! recorder is resolved per-thread), so the serve loop bumps plain
//! atomics here and whoever owns the server — a test, the quickstart
//! example, the CI gate — [`ServerStats::publish`]es a snapshot into
//! the recorder from the thread that installed it.

// conformance: atomics(relaxed) — monotone counters aggregated off the hot path

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared, lock-free counters for one [`crate::HttpServer`].
///
/// All methods use relaxed ordering: the counters are monotonic tallies
/// read after the fact, never used for synchronization.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// TCP connections accepted.
    pub accepted: AtomicU64,
    /// Connections rejected because the bounded queue was full.
    pub queue_rejected: AtomicU64,
    /// Requests served with a response (any status).
    pub requests: AtomicU64,
    /// Requests served on a reused (keep-alive) connection.
    pub keepalive_reuse: AtomicU64,
    /// Connections torn down with a 400 after a parse error.
    pub parse_rejects: AtomicU64,
    /// Connections closed by an idle or read/write deadline.
    pub timeouts: AtomicU64,
    /// High-water mark of the connection queue depth.
    pub queue_high_water: AtomicU64,
}

impl ServerStats {
    /// Fresh zeroed stats.
    pub fn new() -> ServerStats {
        ServerStats::default()
    }

    /// Record an observed queue depth, keeping the high-water mark.
    pub fn observe_queue_depth(&self, depth: u64) {
        self.queue_high_water.fetch_max(depth, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot (each field individually atomic).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            queue_rejected: self.queue_rejected.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            keepalive_reuse: self.keepalive_reuse.load(Ordering::Relaxed),
            parse_rejects: self.parse_rejects.load(Ordering::Relaxed),
            timeouts: self.timeouts.load(Ordering::Relaxed),
            queue_high_water: self.queue_high_water.load(Ordering::Relaxed),
        }
    }

    /// Publish the current snapshot into the calling thread's telemetry
    /// recorder as `httpd_*` counters and gauges. Counters in the
    /// recorder are cumulative, so this is intended to be called once
    /// per server lifetime (e.g. after shutdown).
    pub fn publish(&self) {
        let s = self.snapshot();
        telemetry::with_recorder(|rec| {
            rec.incr("httpd_conns_accepted", &[], s.accepted);
            rec.incr("httpd_conns_queue_rejected", &[], s.queue_rejected);
            rec.incr("httpd_requests", &[], s.requests);
            rec.incr("httpd_keepalive_reuse", &[], s.keepalive_reuse);
            rec.incr("httpd_parse_rejects", &[], s.parse_rejects);
            rec.incr("httpd_timeouts", &[], s.timeouts);
            rec.gauge_set("httpd_queue_high_water", &[], s.queue_high_water as f64);
        });
    }
}

/// A point-in-time copy of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// TCP connections accepted.
    pub accepted: u64,
    /// Connections rejected at the queue.
    pub queue_rejected: u64,
    /// Requests answered.
    pub requests: u64,
    /// Requests on reused connections.
    pub keepalive_reuse: u64,
    /// Parse-reject teardowns.
    pub parse_rejects: u64,
    /// Deadline/idle teardowns.
    pub timeouts: u64,
    /// Queue depth high-water mark.
    pub queue_high_water: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_water_keeps_max() {
        let s = ServerStats::new();
        s.observe_queue_depth(3);
        s.observe_queue_depth(7);
        s.observe_queue_depth(5);
        assert_eq!(s.snapshot().queue_high_water, 7);
    }

    #[test]
    fn publish_lands_in_scoped_recorder() {
        let rec = telemetry::Recorder::new();
        let _scope = rec.enter();
        let s = ServerStats::new();
        s.accepted.fetch_add(2, Ordering::Relaxed);
        s.requests.fetch_add(9, Ordering::Relaxed);
        s.publish();
        assert_eq!(rec.counter("httpd_conns_accepted", &[]), 2);
        assert_eq!(rec.counter("httpd_requests", &[]), 9);
    }
}
