//! [`Transport`] over real loopback TCP.
//!
//! `LoopbackTransport` is the client half of the serving layer: it
//! serializes fabric [`Request`]s with [`http::encode_request`], sends
//! them to an [`crate::HttpServer`] over real sockets, and decodes the
//! wire bytes back into fabric [`Response`]s. Idle connections are kept
//! alive in a shared pool (so a crawl campaign exercises the server's
//! keep-alive path); a request that fails on a pooled connection —
//! typically because the server idle-timed it out between uses — is
//! retried exactly once on a fresh connection.
//!
//! Like [`crate::server`], this module legitimately touches wall time:
//! [`Transport::now_unix`] stamps real collection timestamps so
//! loopback artifacts are honest about when they were gathered;
//! deterministic comparisons strip them (see
//! `crawler::merge::normalize_for_parity`).

use acctrade_net::error::{NetError, NetResult};
use acctrade_net::http::{self, Request, Response};
use acctrade_net::robots::RobotsPolicy;
use acctrade_net::transport::Transport;
use acctrade_net::url::Url;
use foundation::sync::Mutex;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Ceiling on a decoded response (head + body) in bytes.
const MAX_RESPONSE_BYTES: usize = 8 * 1024 * 1024;

/// A client-side transport speaking HTTP/1.1 to a loopback server.
pub struct LoopbackTransport {
    addr: SocketAddr,
    timeout: Duration,
    pool: Mutex<Vec<TcpStream>>,
    robots_cache: Mutex<BTreeMap<String, Option<RobotsPolicy>>>,
}

impl LoopbackTransport {
    /// Transport aimed at `addr` with a 2s per-request deadline.
    pub fn new(addr: SocketAddr) -> LoopbackTransport {
        LoopbackTransport::with_timeout(addr, Duration::from_secs(2))
    }

    /// Transport with an explicit per-request deadline (connect, write,
    /// and full-response read each get this budget).
    pub fn with_timeout(addr: SocketAddr, timeout: Duration) -> LoopbackTransport {
        LoopbackTransport {
            addr,
            timeout,
            pool: Mutex::new(Vec::new()),
            robots_cache: Mutex::new(BTreeMap::new()),
        }
    }

    /// Idle pooled connections (diagnostic, used by keep-alive tests).
    pub fn pooled(&self) -> usize {
        self.pool.lock().len()
    }

    fn connect(&self, host: &str) -> NetResult<TcpStream> {
        let conn = TcpStream::connect_timeout(&self.addr, self.timeout)
            .map_err(|e| io_to_net(host, self.timeout, &e))?;
        let _ = conn.set_nodelay(true);
        let _ = conn.set_read_timeout(Some(self.timeout));
        let _ = conn.set_write_timeout(Some(self.timeout));
        Ok(conn)
    }

    /// One request/response exchange on `conn`. `Err` means the
    /// connection is unusable (the caller decides whether to retry).
    fn exchange(&self, conn: &mut TcpStream, req: &Request) -> std::io::Result<Vec<u8>> {
        conn.write_all(&http::encode_request(req))?;
        read_full_response(conn)
    }

    fn send_inner(&self, req: &Request) -> NetResult<Response> {
        let host = req.url.host().to_string();
        // First attempt on a pooled connection, if any; a pooled socket
        // may have been idle-closed by the server, so a failure here is
        // retried once on a fresh connection rather than surfaced.
        // (Guard dropped before the attempt: `finish` re-locks the pool.)
        let pooled = self.pool.lock().pop();
        if let Some(mut conn) = pooled {
            if let Ok(wire) = self.exchange(&mut conn, req) {
                return self.finish(conn, &wire);
            }
        }
        let mut conn = self.connect(&host)?;
        let wire =
            self.exchange(&mut conn, req).map_err(|e| io_to_net(&host, self.timeout, &e))?;
        self.finish(conn, &wire)
    }

    /// Decode the wire bytes; return the connection to the pool unless
    /// the server asked to close.
    fn finish(&self, conn: TcpStream, wire: &[u8]) -> NetResult<Response> {
        let resp = http::decode_response(wire)?;
        let close = resp
            .headers
            .get("connection")
            .map(|c| c.eq_ignore_ascii_case("close"))
            .unwrap_or(false);
        if !close {
            self.pool.lock().push(conn);
        }
        Ok(resp)
    }
}

impl Transport for LoopbackTransport {
    fn mode(&self) -> &'static str {
        "loopback"
    }

    fn send(&self, req: &Request) -> NetResult<Response> {
        self.send_inner(req)
    }

    /// Fetch and cache `http://<host>/robots.txt` over the wire, like a
    /// real crawler. A non-200 (or transport failure) caches as `None`,
    /// letting the client fall back to its fabric-side registry.
    fn robots(&self, host: &str) -> Option<RobotsPolicy> {
        if let Some(cached) = self.robots_cache.lock().get(host) {
            return cached.clone();
        }
        let fetched = Url::parse(&format!("http://{host}/robots.txt"))
            .ok()
            .and_then(|url| self.send_inner(&Request::get(url)).ok())
            .filter(|resp| resp.status.code() == 200)
            .map(|resp| RobotsPolicy::parse(&resp.text()));
        self.robots_cache.lock().insert(host.to_string(), fetched.clone());
        fetched
    }

    fn now_unix(&self) -> Option<i64> {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .ok()
            .map(|d| d.as_secs() as i64)
    }
}

/// Read one complete `content-length`-framed response.
fn read_full_response(conn: &mut TcpStream) -> std::io::Result<Vec<u8>> {
    let mut wire = Vec::with_capacity(1024);
    let mut buf = [0u8; 8192];
    let mut need: Option<usize> = None;
    loop {
        if let Some(total) = need {
            if wire.len() >= total {
                return Ok(wire);
            }
        } else if let Some(head_end) = wire.windows(4).position(|w| w == b"\r\n\r\n") {
            let body_len = content_length(&wire[..head_end]).ok_or_else(|| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "unframed response")
            })?;
            need = Some(head_end + 4 + body_len);
            continue;
        }
        if wire.len() > MAX_RESPONSE_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "response exceeds size ceiling",
            ));
        }
        let n = conn.read(&mut buf)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-response",
            ));
        }
        wire.extend_from_slice(&buf[..n]);
    }
}

/// Pull `content-length` out of raw head bytes.
fn content_length(head: &[u8]) -> Option<usize> {
    let head = std::str::from_utf8(head).ok()?;
    for line in head.split("\r\n").skip(1) {
        let (name, value) = line.split_once(':')?;
        if name.eq_ignore_ascii_case("content-length") {
            return value.trim().parse().ok();
        }
    }
    None
}

/// Map socket errors onto the fabric's error vocabulary so retry logic
/// above the client stays mode-agnostic.
fn io_to_net(host: &str, timeout: Duration, e: &std::io::Error) -> NetError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => NetError::Timeout {
            host: host.to_string(),
            after_us: timeout.as_micros() as u64,
        },
        std::io::ErrorKind::InvalidData => NetError::Protocol(e.to_string()),
        _ => NetError::ConnectionReset(host.to_string()),
    }
}
