//! # acctrade-httpd — the real-socket serving layer
//!
//! Everything else in this workspace runs against the deterministic
//! [`acctrade_net::sim::SimNet`] fabric. This crate turns the same
//! simulated sites into *a service under measurement*: a
//! zero-dependency HTTP/1.1 server (`std::net::TcpListener`, a
//! configurable worker pool over a bounded connection queue, keep-alive
//! with idle timeouts, per-connection read/write deadlines, graceful
//! drain on shutdown) that mounts any [`acctrade_net::server::Service`]
//! — the marketplace sites, platform APIs, robots and CAPTCHA pages —
//! behind a virtual-host route table, plus the matching client-side
//! [`transport::LoopbackTransport`] so every study can run both
//! **sim** (virtual clock, byte-identical artifacts) and **loopback**
//! (real sockets, real concurrency, real backpressure).
//!
//! Module map:
//!
//! * [`parser`] — incremental, torn-read-tolerant HTTP/1.1 request
//!   parser over [`acctrade_net::http`] types; malformed input is
//!   hard-rejected with a clean 400.
//! * [`pool`] — the bounded connection queue and worker threads.
//! * [`server`] — acceptor, per-connection serve loop, keep-alive and
//!   deadline policy, graceful shutdown with connection draining; with
//!   an ops plane configured, every request is phase-timed
//!   (parse/route/handle/write) into histograms and the trace ring.
//! * [`stats`] — lock-free server-side counters (accepted connections,
//!   keep-alive reuse, parse rejects, queue depth high-water), published
//!   into the telemetry recorder on demand.
//! * [`ops`] — the `ops.acctrade.local` virtual host: live `/metrics`
//!   Prometheus exposition, `/healthz`, `/statz` (server stats + queue
//!   depth), `/tracez` (recent spans + slow-request log).
//! * [`transport`] — [`acctrade_net::transport::Transport`] over real
//!   loopback TCP with client-side keep-alive connection reuse.
//!
//! ## Determinism contract
//!
//! This is the **one** crate in the workspace allowed to touch wall
//! clocks and real sockets (the conformance analyzer's determinism rule
//! carries a scoped allowlist entry for `crates/httpd/src/` — and only
//! it). Artifacts produced over loopback therefore carry wall
//! timestamps; deterministic comparisons normalize them away
//! (`acctrade_crawler::merge::normalize_for_parity`), and the CI parity
//! gate proves a loopback crawl yields the same offer set as the
//! sim-mode crawl of the same seed.

pub mod ops;
pub mod parser;
pub mod pool;
pub mod server;
pub mod stats;
pub mod transport;

pub use ops::{OpsPlane, OpsService, OPS_HOST};
pub use parser::{ParseError, ParsedRequest, RequestParser};
pub use server::{HostTable, HttpServer, ServerConfig, TimeSource};
pub use stats::ServerStats;
pub use transport::LoopbackTransport;
