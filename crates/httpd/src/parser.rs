//! Incremental HTTP/1.1 request parsing over [`acctrade_net::http`] types.
//!
//! The parser is a push-style state machine: the connection loop
//! [`RequestParser::feed`]s whatever bytes the socket produced — a torn
//! request line, half a header, several pipelined requests at once —
//! and [`RequestParser::next_request`] pulls complete requests off the
//! front of the buffer as they become available. Anything malformed is
//! a hard [`ParseError`]; the server answers it with a clean `400 Bad
//! Request` and closes the connection (errors are never recoverable
//! mid-stream: after a framing violation byte boundaries are gone).
//!
//! Supported surface (documented subset, mirroring what the simulated
//! services speak): `GET`/`POST`/`HEAD`, `HTTP/1.0` and `HTTP/1.1`,
//! `content-length`-framed bodies. `transfer-encoding` is rejected.

use acctrade_net::http::{Headers, Method, Request};
use acctrade_net::url::Url;
use foundation::bytes::Bytes;
use std::fmt;

/// Hard ceiling on the request head (request line + headers) in bytes.
pub(crate) const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard ceiling on a request body in bytes.
pub(crate) const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Hard ceiling on the number of header lines.
pub(crate) const MAX_HEADERS: usize = 64;

/// Why a byte stream was rejected. Every variant maps to `400`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The request line is not `METHOD SP target SP HTTP/1.x`.
    BadRequestLine(String),
    /// Unknown or unsupported method token.
    UnsupportedMethod(String),
    /// Not HTTP/1.0 or HTTP/1.1.
    UnsupportedVersion(String),
    /// The target is not an absolute path.
    BadTarget(String),
    /// A header line has no colon, an empty name, or embedded control
    /// bytes.
    BadHeader(String),
    /// The head grew past [`MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge(usize),
    /// More than [`MAX_HEADERS`] header lines.
    TooManyHeaders(usize),
    /// `content-length` is not a decimal integer.
    BadContentLength(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge(usize),
    /// `transfer-encoding` framing is not supported.
    UnsupportedTransferEncoding,
    /// HTTP/1.1 requires a `host` header.
    MissingHost,
    /// The head is not valid UTF-8 / printable ASCII.
    NonAsciiHead,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadRequestLine(l) => write!(f, "malformed request line: {l:?}"),
            ParseError::UnsupportedMethod(m) => write!(f, "unsupported method: {m:?}"),
            ParseError::UnsupportedVersion(v) => write!(f, "unsupported version: {v:?}"),
            ParseError::BadTarget(t) => write!(f, "bad request target: {t:?}"),
            ParseError::BadHeader(h) => write!(f, "malformed header line: {h:?}"),
            ParseError::HeadTooLarge(n) => write!(f, "request head exceeds {n} bytes"),
            ParseError::TooManyHeaders(n) => write!(f, "more than {n} header lines"),
            ParseError::BadContentLength(v) => write!(f, "bad content-length: {v:?}"),
            ParseError::BodyTooLarge(n) => write!(f, "body exceeds {n} bytes"),
            ParseError::UnsupportedTransferEncoding => {
                f.write_str("transfer-encoding is not supported")
            }
            ParseError::MissingHost => f.write_str("HTTP/1.1 request without a host header"),
            ParseError::NonAsciiHead => f.write_str("request head is not clean ASCII"),
        }
    }
}

impl std::error::Error for ParseError {}

/// One fully parsed request plus the connection metadata the serve loop
/// needs (what the framing said about keep-alive).
#[derive(Debug, Clone)]
pub struct ParsedRequest {
    /// Method.
    pub method: Method,
    /// Raw request target as received (`/path?query`).
    pub target: String,
    /// `true` for HTTP/1.1, `false` for HTTP/1.0.
    pub http11: bool,
    /// Headers in wire order (`host` included).
    pub headers: Headers,
    /// Body bytes (exactly `content-length` of them).
    pub body: Bytes,
    /// Logical host from the `host` header, lowercased, port stripped.
    pub host: String,
    /// Whether the connection may serve another request after this one.
    pub keep_alive: bool,
}

impl ParsedRequest {
    /// Reassemble the fabric-level [`Request`] the mounted
    /// [`acctrade_net::server::Service`]s expect. Fails only if host +
    /// target do not form a parseable URL (treated as a 400 upstream).
    pub fn to_request(&self) -> Option<Request> {
        let url = Url::parse(&format!("http://{}{}", self.host, self.target)).ok()?;
        Some(Request {
            method: self.method,
            url,
            headers: self.headers.clone(),
            body: self.body.clone(),
        })
    }
}

/// Limits applied while parsing; defaults are the module constants.
#[derive(Debug, Clone, Copy)]
pub struct ParseLimits {
    /// Max head bytes.
    pub max_head_bytes: usize,
    /// Max body bytes.
    pub max_body_bytes: usize,
    /// Max header lines.
    pub max_headers: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_head_bytes: MAX_HEAD_BYTES,
            max_body_bytes: MAX_BODY_BYTES,
            max_headers: MAX_HEADERS,
        }
    }
}

/// The incremental parser: an append buffer plus a resumable scan
/// cursor, so a request torn across arbitrarily many reads costs one
/// pass over each byte.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Bytes already scanned for the head terminator; the next scan
    /// resumes here (minus 3, to catch a terminator spanning feeds).
    scanned: usize,
    limits: ParseLimits,
}

impl RequestParser {
    /// A parser with default limits.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// A parser with explicit limits.
    pub fn with_limits(limits: ParseLimits) -> RequestParser {
        RequestParser { limits, ..RequestParser::default() }
    }

    /// Append bytes read from the connection.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pull the next complete request off the buffer.
    ///
    /// * `Ok(Some(_))` — a full request was parsed and consumed;
    ///   call again to drain pipelined successors.
    /// * `Ok(None)` — the buffer holds a prefix of a valid request;
    ///   feed more bytes.
    /// * `Err(_)` — the stream is malformed; the connection must be
    ///   answered with 400 and closed.
    pub fn next_request(&mut self) -> Result<Option<ParsedRequest>, ParseError> {
        // Locate the head terminator, resuming the scan where the last
        // call left off (torn reads never rescan the whole head).
        let from = self.scanned.saturating_sub(3);
        let head_end = self.buf[from..]
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .map(|i| i + from);
        let Some(head_end) = head_end else {
            self.scanned = self.buf.len();
            if self.buf.len() > self.limits.max_head_bytes {
                return Err(ParseError::HeadTooLarge(self.limits.max_head_bytes));
            }
            return Ok(None);
        };
        if head_end > self.limits.max_head_bytes {
            return Err(ParseError::HeadTooLarge(self.limits.max_head_bytes));
        }

        let (request, content_length) = parse_head(&self.buf[..head_end], &self.limits)?;

        // Body: wait until every declared byte arrived.
        let body_start = head_end + 4;
        if content_length > self.limits.max_body_bytes {
            return Err(ParseError::BodyTooLarge(self.limits.max_body_bytes));
        }
        if self.buf.len() < body_start + content_length {
            // Head is scanned; remember that so the next call only
            // checks body completeness.
            self.scanned = head_end;
            return Ok(None);
        }
        let body = Bytes::copy_from_slice(&self.buf[body_start..body_start + content_length]);
        self.buf.drain(..body_start + content_length);
        self.scanned = 0;
        Ok(Some(ParsedRequest { body, ..request }))
    }
}

/// Parse the head (request line + header lines, no terminator).
/// Returns the request with an empty body plus the declared
/// content-length.
fn parse_head(
    head: &[u8],
    limits: &ParseLimits,
) -> Result<(ParsedRequest, usize), ParseError> {
    // HTTP heads are ASCII by construction; reject control bytes other
    // than the CR/LF structure and horizontal tabs in field values.
    if head.iter().any(|&b| b >= 0x80 || (b < 0x20 && b != b'\r' && b != b'\n' && b != b'\t')) {
        return Err(ParseError::NonAsciiHead);
    }
    let head = std::str::from_utf8(head).map_err(|_| ParseError::NonAsciiHead)?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");

    // Request line: METHOD SP target SP HTTP/1.x — exactly two spaces.
    let mut parts = request_line.split(' ');
    let (method, target, version) =
        match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
            _ => return Err(ParseError::BadRequestLine(clip(request_line))),
        };
    let method = match method {
        "GET" => Method::Get,
        "POST" => Method::Post,
        "HEAD" => Method::Head,
        other => return Err(ParseError::UnsupportedMethod(clip(other))),
    };
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => return Err(ParseError::UnsupportedVersion(clip(other))),
    };
    if !target.starts_with('/') {
        return Err(ParseError::BadTarget(clip(target)));
    }

    // Header lines.
    let mut headers = Headers::new();
    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    let mut host: Option<String> = None;
    let mut count = 0usize;
    for line in lines {
        if line.is_empty() {
            // Only the final CRLFCRLF produces an empty split; an
            // empty line mid-head means a bare CRLF pair we already
            // treated as the terminator, so this cannot happen — but a
            // `\r\n` at the very start of the head does (robustness:
            // tolerate the RFC 7230 §3.5 leading empty line only).
            continue;
        }
        count += 1;
        if count > limits.max_headers {
            return Err(ParseError::TooManyHeaders(limits.max_headers));
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::BadHeader(clip(line)));
        };
        let value = value.trim();
        if name.is_empty()
            || name.contains(' ')
            || name.contains('\t')
            || !name.chars().all(|c| c.is_ascii_graphic())
        {
            return Err(ParseError::BadHeader(clip(line)));
        }
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .parse::<usize>()
                .map_err(|_| ParseError::BadContentLength(clip(value)))?;
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err(ParseError::UnsupportedTransferEncoding);
        } else if name.eq_ignore_ascii_case("connection") {
            connection = Some(value.to_ascii_lowercase());
        } else if name.eq_ignore_ascii_case("host") {
            let bare = value.split(':').next().unwrap_or("").to_ascii_lowercase();
            host = Some(bare);
        }
        headers.set(name, value);
    }

    let host = match host {
        Some(h) if !h.is_empty() => h,
        _ if http11 => return Err(ParseError::MissingHost),
        _ => String::new(),
    };

    // Keep-alive: 1.1 defaults on unless `connection: close`; 1.0
    // defaults off unless `connection: keep-alive`.
    let keep_alive = match connection.as_deref() {
        Some(c) if c.split(',').any(|t| t.trim() == "close") => false,
        Some(c) if c.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => http11,
    };

    Ok((
        ParsedRequest {
            method,
            target: target.to_string(),
            http11,
            headers,
            body: Bytes::new(),
            host,
            keep_alive,
        },
        content_length,
    ))
}

/// Clip diagnostic text so a hostile request line cannot balloon logs.
fn clip(s: &str) -> String {
    const MAX: usize = 80;
    if s.len() <= MAX {
        s.to_string()
    } else {
        let cut = (0..=MAX).rev().find(|&i| s.is_char_boundary(i)).unwrap_or(0);
        format!("{}…", &s[..cut])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(wire: &[u8]) -> Result<Vec<ParsedRequest>, ParseError> {
        let mut p = RequestParser::new();
        p.feed(wire);
        let mut out = Vec::new();
        while let Some(req) = p.next_request()? {
            out.push(req);
        }
        Ok(out)
    }

    #[test]
    fn parses_simple_get() {
        let reqs =
            parse_all(b"GET /offers?page=2 HTTP/1.1\r\nhost: Shop.com:8080\r\n\r\n").unwrap();
        assert_eq!(reqs.len(), 1);
        let r = &reqs[0];
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.target, "/offers?page=2");
        assert_eq!(r.host, "shop.com");
        assert!(r.keep_alive);
        let req = r.to_request().unwrap();
        assert_eq!(req.url.host(), "shop.com");
        assert_eq!(req.url.query_param("page").as_deref(), Some("2"));
    }

    #[test]
    fn parses_post_body_split_across_feeds() {
        let wire = b"POST /submit HTTP/1.1\r\nhost: a.com\r\ncontent-length: 5\r\n\r\nhello";
        let mut p = RequestParser::new();
        for chunk in wire.chunks(3) {
            p.feed(chunk);
        }
        let r = p.next_request().unwrap().unwrap();
        assert_eq!(r.body.as_ref(), b"hello");
        assert_eq!(p.buffered(), 0);
    }

    #[test]
    fn partial_head_is_not_an_error() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HT");
        assert!(matches!(p.next_request(), Ok(None)));
        p.feed(b"TP/1.1\r\nhost: x.com\r\n\r\n");
        assert!(p.next_request().unwrap().is_some());
    }

    #[test]
    fn pipelined_requests_drain_in_order() {
        let reqs = parse_all(
            b"GET /a HTTP/1.1\r\nhost: h.com\r\n\r\nGET /b HTTP/1.1\r\nhost: h.com\r\n\r\n",
        )
        .unwrap();
        assert_eq!(reqs.len(), 2);
        assert_eq!(reqs[0].target, "/a");
        assert_eq!(reqs[1].target, "/b");
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let r =
            &parse_all(b"GET / HTTP/1.1\r\nhost: x.com\r\nconnection: close\r\n\r\n").unwrap()[0];
        assert!(!r.keep_alive);
        let r = &parse_all(b"GET / HTTP/1.0\r\n\r\n").unwrap()[0];
        assert!(!r.keep_alive);
        let r = &parse_all(b"GET / HTTP/1.0\r\nconnection: keep-alive\r\n\r\n").unwrap()[0];
        assert!(r.keep_alive);
    }

    #[test]
    fn rejects_malformed_request_lines() {
        assert!(matches!(
            parse_all(b"GET /\r\nhost: x\r\n\r\n"),
            Err(ParseError::BadRequestLine(_))
        ));
        assert!(matches!(
            parse_all(b"GET  / HTTP/1.1\r\n\r\n"),
            Err(ParseError::BadRequestLine(_)) | Err(ParseError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse_all(b"BREW /pot HTTP/1.1\r\nhost: x\r\n\r\n"),
            Err(ParseError::UnsupportedMethod(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/2\r\nhost: x\r\n\r\n"),
            Err(ParseError::UnsupportedVersion(_))
        ));
        assert!(matches!(
            parse_all(b"GET foo HTTP/1.1\r\nhost: x\r\n\r\n"),
            Err(ParseError::BadTarget(_))
        ));
    }

    #[test]
    fn rejects_bad_headers_and_missing_host() {
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nnocolon\r\n\r\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nbad name: v\r\nhost: x\r\n\r\n"),
            Err(ParseError::BadHeader(_))
        ));
        assert!(matches!(parse_all(b"GET / HTTP/1.1\r\n\r\n"), Err(ParseError::MissingHost)));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nhost: x\r\ncontent-length: ten\r\n\r\n"),
            Err(ParseError::BadContentLength(_))
        ));
        assert!(matches!(
            parse_all(b"GET / HTTP/1.1\r\nhost: x\r\ntransfer-encoding: chunked\r\n\r\n"),
            Err(ParseError::UnsupportedTransferEncoding)
        ));
    }

    #[test]
    fn oversized_head_and_body_are_rejected() {
        let limits = ParseLimits { max_head_bytes: 64, max_body_bytes: 8, max_headers: 2 };
        let mut p = RequestParser::with_limits(limits);
        p.feed(&[b'a'; 65]);
        assert!(matches!(p.next_request(), Err(ParseError::HeadTooLarge(64))));

        let mut p = RequestParser::with_limits(limits);
        p.feed(b"GET / HTTP/1.1\r\nhost: x\r\ncontent-length: 9\r\n\r\n");
        assert!(matches!(p.next_request(), Err(ParseError::BodyTooLarge(8))));

        let mut p = RequestParser::with_limits(limits);
        p.feed(b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n");
        assert!(matches!(p.next_request(), Err(ParseError::TooManyHeaders(2))));
    }

    #[test]
    fn binary_garbage_is_rejected_not_panicked() {
        assert!(parse_all(&[0xff, 0xfe, 0x00, b'\r', b'\n', b'\r', b'\n']).is_err());
        assert!(parse_all(b"\x01\x02\x03\r\n\r\n").is_err());
    }
}
