//! The HTTP/1.1 server: acceptor, worker pool, serve loop, shutdown.
//!
//! One acceptor thread blocks on [`std::net::TcpListener::accept`] and
//! pushes sockets onto the bounded [`crate::pool::ConnQueue`]; `workers`
//! threads pop connections and run the serve loop — incremental parse,
//! virtual-host dispatch into the mounted
//! [`acctrade_net::server::Service`]s, keep-alive with idle timeout,
//! pipelining, per-connection read/write deadlines. [`HttpServer::shutdown`]
//! drains gracefully: the acceptor stops, queued connections are still
//! served, in-flight requests complete and are answered with
//! `connection: close`, then all threads are joined.
//!
//! This module (with [`crate::transport`]) is the workspace's sole
//! legitimate user of real sockets and wall time — see the crate docs
//! for the conformance allowlist that scopes it.

// conformance: reactor-path — no blocking calls; the accept loop/parsers must never stall a lane

// conformance: atomics(relaxed, acquire, release) — shutdown flag is release-published, acquire-observed; stats are relaxed

use crate::ops::{OpsPlane, OpsService, OPS_HOST};
use crate::parser::RequestParser;
use crate::pool::ConnQueue;
use crate::stats::ServerStats;
use acctrade_net::clock::SimClock;
use acctrade_net::http::{self, Method, Response, Status};
use acctrade_net::server::{RequestCtx, Service};
use acctrade_net::sim::SimNet;
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where the serve loop gets `RequestCtx::now_us` from.
///
/// `Virtual` shares the study's [`SimClock`] handle, so loopback-served
/// responses see the same virtual timeline as sim-dispatched ones —
/// this is what makes sim/loopback parity possible. `Wall` stamps real
/// time (demo `--serve` mode).
#[derive(Clone)]
pub enum TimeSource {
    /// Share a study's virtual clock.
    Virtual(SimClock),
    /// Wall clock (unix microseconds).
    Wall,
}

impl TimeSource {
    fn now_us(&self) -> u64 {
        match self {
            TimeSource::Virtual(clock) => clock.now_us(),
            TimeSource::Wall => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_micros() as u64)
                .unwrap_or(0),
        }
    }
}

/// Virtual-host routing table: hostname → mounted service.
///
/// Services are `Arc`-shared, so a table built from a live
/// [`SimNet`] observes the same mutable site state (market churn,
/// account registries) as sim-mode dispatch.
#[derive(Clone, Default)]
pub struct HostTable {
    hosts: BTreeMap<String, Arc<dyn Service>>,
}

impl HostTable {
    /// Empty table.
    pub fn new() -> HostTable {
        HostTable::default()
    }

    /// Mount every service currently deployed on a [`SimNet`], sharing
    /// the fabric's `Arc`s (not copies).
    pub fn from_sim(net: &SimNet) -> HostTable {
        let mut table = HostTable::new();
        for (host, svc) in net.services() {
            table.hosts.insert(host, svc);
        }
        table
    }

    /// Mount a single service under `host`, builder-style.
    pub fn with_service(mut self, host: &str, svc: Arc<dyn Service>) -> HostTable {
        self.hosts.insert(host.to_ascii_lowercase(), svc);
        self
    }

    /// Hostnames currently mounted, sorted.
    pub fn hosts(&self) -> Vec<String> {
        self.hosts.keys().cloned().collect()
    }

    fn lookup(&self, host: &str) -> Option<&Arc<dyn Service>> {
        self.hosts.get(host)
    }
}

/// Tunables for one [`HttpServer`].
#[derive(Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Bounded connection-queue capacity; beyond it the acceptor sheds.
    pub queue_capacity: usize,
    /// How long a keep-alive connection may sit idle between requests.
    pub idle_timeout: Duration,
    /// Deadline for reading one full request once its first byte arrived.
    pub read_timeout: Duration,
    /// Socket write timeout for one response.
    pub write_timeout: Duration,
    /// Where `RequestCtx::now_us` comes from.
    pub time: TimeSource,
    /// Optional live ops plane: mounts the [`OPS_HOST`] virtual host
    /// (`/metrics`, `/healthz`, `/statz`, `/tracez`) and turns on
    /// per-request phase spans (parse/route/handle/write) feeding its
    /// server recorder and trace ring. `None` (the default) serves with
    /// zero instrumentation overhead.
    pub ops: Option<OpsPlane>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 128,
            idle_timeout: Duration::from_secs(5),
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            time: TimeSource::Wall,
            ops: None,
        }
    }
}

/// A running server: acceptor + workers, stoppable via [`Self::shutdown`].
pub struct HttpServer {
    addr: SocketAddr,
    stats: Arc<ServerStats>,
    shutdown: Arc<AtomicBool>,
    queue: Arc<ConnQueue<TcpStream>>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`), spawn the acceptor and worker
    /// threads, and start serving `hosts`.
    pub fn bind(addr: &str, hosts: HostTable, config: ServerConfig) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stats = Arc::new(ServerStats::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(ConnQueue::new(config.queue_capacity.max(1)));
        // Mount the ops virtual host when a plane is configured, and
        // hand it the live stats + queue so /statz sees this server.
        let hosts = match &config.ops {
            Some(plane) => {
                plane.attach_server(Arc::clone(&stats), Arc::clone(&queue));
                hosts.with_service(OPS_HOST, Arc::new(OpsService::new(plane.clone())))
            }
            None => hosts,
        };
        let hosts = Arc::new(hosts);

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let hosts = Arc::clone(&hosts);
                let stats = Arc::clone(&stats);
                let shutdown = Arc::clone(&shutdown);
                let config = config.clone();
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        serve_connection(conn, &hosts, &config, &stats, &shutdown);
                    }
                })
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let stats = Arc::clone(&stats);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    stats.accepted.fetch_add(1, Ordering::Relaxed);
                    match queue.push(conn) {
                        Ok(depth) => stats.observe_queue_depth(depth as u64),
                        Err(conn) => {
                            // Shed load: refuse politely rather than
                            // leaving the client to hang.
                            stats.queue_rejected.fetch_add(1, Ordering::Relaxed);
                            let resp = Response::status(Status::ServiceUnavailable)
                                .with_text("server overloaded")
                                .with_header("connection", "close");
                            let mut conn = conn;
                            let _ = conn.write_all(&http::encode_response(&resp));
                            let _ = conn.shutdown(Shutdown::Both);
                        }
                    }
                }
            })
        };

        Ok(HttpServer { addr, stats, shutdown, queue, acceptor: Some(acceptor), workers })
    }

    /// The bound socket address (query the OS-assigned port after
    /// binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's shared counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// queued, let in-flight requests complete (they are answered with
    /// `connection: close`), join all threads.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::Release);
        // Wake the acceptor out of its blocking accept().
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        self.queue.close();
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Outcome of one bounded read attempt.
enum ReadOutcome {
    /// `n` fresh bytes.
    Data(usize),
    /// Peer closed its write side.
    Eof,
    /// The deadline elapsed with no data.
    TimedOut,
    /// Shutdown was requested while waiting.
    ShutdownRequested,
    /// Hard socket error.
    Failed,
}

/// Read with a deadline, polling in short slices so both the deadline
/// and the shutdown flag are honored promptly even while blocked.
fn read_bounded(
    conn: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    shutdown: &AtomicBool,
) -> ReadOutcome {
    const SLICE: Duration = Duration::from_millis(15);
    loop {
        if shutdown.load(Ordering::Acquire) {
            return ReadOutcome::ShutdownRequested;
        }
        let now = Instant::now();
        if now >= deadline {
            return ReadOutcome::TimedOut;
        }
        let _ = conn.set_read_timeout(Some(SLICE.min(deadline - now)));
        match conn.read(buf) {
            Ok(0) => return ReadOutcome::Eof,
            Ok(n) => return ReadOutcome::Data(n),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => return ReadOutcome::Failed,
        }
    }
}

/// Serve one connection to completion: parse, dispatch, keep-alive.
fn serve_connection(
    mut conn: TcpStream,
    hosts: &HostTable,
    config: &ServerConfig,
    stats: &ServerStats,
    shutdown: &AtomicBool,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_write_timeout(Some(config.write_timeout));
    let peer = conn.peer_addr().map(|a| a.to_string()).unwrap_or_else(|_| "unknown".into());

    let mut parser = RequestParser::new();
    let mut buf = [0u8; 8192];
    let mut served_on_conn: u64 = 0;

    'conn: loop {
        // Drain everything already buffered (pipelining) before
        // touching the socket again.
        loop {
            let parse_started = Instant::now();
            match parser.next_request() {
                Ok(Some(req)) => {
                    let parse_us = parse_started.elapsed().as_micros() as u64;
                    let (resp, phases) = dispatch(&req, hosts, config, &peer);
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    served_on_conn += 1;
                    if served_on_conn > 1 {
                        stats.keepalive_reuse.fetch_add(1, Ordering::Relaxed);
                    }
                    // Honor the draining contract: during shutdown the
                    // request is still answered, but the connection is
                    // told this is the last exchange.
                    let draining = shutdown.load(Ordering::Acquire);
                    let keep = req.keep_alive && !draining;
                    let mut resp =
                        resp.with_header("connection", if keep { "keep-alive" } else { "close" });
                    if req.method == Method::Head {
                        resp.body = foundation::bytes::Bytes::new();
                    }
                    let write_started = Instant::now();
                    let write_ok = conn.write_all(&http::encode_response(&resp)).is_ok();
                    if let Some(ops) = &config.ops {
                        let write_us = write_started.elapsed().as_micros() as u64;
                        record_request_span(
                            ops,
                            &req,
                            resp.status,
                            parse_started,
                            [parse_us, phases.route_us, phases.handle_us, write_us],
                            phases.now_us,
                        );
                    }
                    if !write_ok {
                        break 'conn;
                    }
                    if !keep {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(err) => {
                    stats.parse_rejects.fetch_add(1, Ordering::Relaxed);
                    let resp = Response::status(Status::BadRequest)
                        .with_text(format!("bad request: {err}"))
                        .with_header("connection", "close");
                    let _ = conn.write_all(&http::encode_response(&resp));
                    break 'conn;
                }
            }
        }

        // Mid-request reads get the (short) read deadline; waiting for
        // the next request on an idle keep-alive connection gets the
        // idle deadline.
        let deadline = if parser.buffered() > 0 {
            Instant::now() + config.read_timeout
        } else {
            Instant::now() + config.idle_timeout
        };
        match read_bounded(&mut conn, &mut buf, deadline, shutdown) {
            ReadOutcome::Data(n) => parser.feed(&buf[..n]),
            ReadOutcome::Eof => break,
            ReadOutcome::TimedOut => {
                stats.timeouts.fetch_add(1, Ordering::Relaxed);
                break;
            }
            ReadOutcome::ShutdownRequested => {
                // Nothing in flight (we only get here between
                // requests); close the idle connection.
                break;
            }
            ReadOutcome::Failed => break,
        }
    }
    let _ = conn.shutdown(Shutdown::Both);
}

/// Per-request phase timings measured by [`dispatch`].
struct PhaseTimes {
    /// Host lookup + request-target parse, µs.
    route_us: u64,
    /// Service handler, µs.
    handle_us: u64,
    /// The `RequestCtx` timestamp handed to the handler.
    now_us: u64,
}

/// Route a parsed request to the mounted service and produce a
/// response, timing the route and handle phases.
fn dispatch(
    req: &crate::parser::ParsedRequest,
    hosts: &HostTable,
    config: &ServerConfig,
    peer: &str,
) -> (Response, PhaseTimes) {
    let route_started = Instant::now();
    let now_us = config.time.now_us();
    let mut phases = PhaseTimes { route_us: 0, handle_us: 0, now_us };
    let Some(svc) = hosts.lookup(&req.host) else {
        phases.route_us = route_started.elapsed().as_micros() as u64;
        return (Response::not_found(&format!("no such host: {}", req.host)), phases);
    };
    let Some(net_req) = req.to_request() else {
        phases.route_us = route_started.elapsed().as_micros() as u64;
        return (
            Response::status(Status::BadRequest).with_text("unroutable request target"),
            phases,
        );
    };
    phases.route_us = route_started.elapsed().as_micros() as u64;
    let ctx = RequestCtx { now_us, peer: peer.to_string(), via_tor: false };
    let handle_started = Instant::now();
    let resp = svc.handle(&net_req, &ctx);
    phases.handle_us = handle_started.elapsed().as_micros() as u64;
    (resp, phases)
}

/// Feed one served request into the ops plane: phase histograms and a
/// per-status tally in the server recorder, plus a completed
/// `http.request` span in the trace ring (and, over the threshold, the
/// slow-request log).
fn record_request_span(
    ops: &OpsPlane,
    req: &crate::parser::ParsedRequest,
    status: Status,
    request_started: Instant,
    phase_us: [u64; 4],
    virtual_us: u64,
) {
    let rec = ops.server_recorder();
    let [parse_us, route_us, handle_us, write_us] = phase_us;
    for (phase, us) in
        [("parse", parse_us), ("route", route_us), ("handle", handle_us), ("write", write_us)]
    {
        rec.observe("httpd.phase_us", &[("phase", phase)], us);
    }
    let code = status.code().to_string();
    rec.incr("httpd.requests", &[("host", &req.host), ("status", &code)], 1);
    let total_us = request_started.elapsed().as_micros() as u64;
    let tracer = ops.tracer();
    tracer.record_complete(
        "http.request",
        telemetry::TraceCat::Http,
        tracer.wall_now_us().saturating_sub(total_us),
        total_us,
        virtual_us,
        0,
        format!("{} {} -> {}", req.host, req.target, code),
    );
}
