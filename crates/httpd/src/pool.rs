//! The bounded connection queue feeding the worker pool.
//!
//! The acceptor thread pushes accepted sockets; worker threads block on
//! [`ConnQueue::pop`]. The queue is bounded — when it is full the
//! acceptor sheds load by refusing the connection instead of buffering
//! unbounded work (the `queue_rejected` counter records every shed).
//! Closing the queue wakes all workers; they drain whatever is still
//! queued (graceful shutdown serves queued connections rather than
//! resetting them) and then see `None`.
//!
//! Built on `foundation::sync` primitives (non-poisoning, deadlock-
//! checked) rather than `std::sync` per workspace lock discipline.

use foundation::sync::{Condvar, Mutex};
use std::collections::VecDeque;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPMC queue with close-and-drain semantics.
pub struct ConnQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> ConnQueue<T> {
    /// A queue holding at most `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> ConnQueue<T> {
        ConnQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Try to enqueue. Returns `Ok(depth_after_push)` or gives the item
    /// back if the queue is full or closed.
    pub fn push(&self, item: T) -> Result<usize, T> {
        let mut st = self.state.lock();
        if st.closed || st.items.len() >= self.capacity {
            return Err(item);
        }
        st.items.push_back(item);
        let depth = st.items.len();
        drop(st);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained. `None` means the worker should exit.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if let Some(item) = st.items.pop_front() {
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.ready.wait(st);
        }
    }

    /// Close the queue: no further pushes succeed, blocked workers wake
    /// up, queued items remain poppable until drained.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.ready.notify_all();
    }

    /// Current depth (diagnostic).
    pub fn depth(&self) -> usize {
        self.state.lock().items.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip_and_capacity() {
        let q = ConnQueue::new(2);
        assert_eq!(q.push(1), Ok(1));
        assert_eq!(q.push(2), Ok(2));
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(2));
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = ConnQueue::new(4);
        q.push(10).ok();
        q.push(11).ok();
        q.close();
        assert_eq!(q.push(12), Err(12));
        assert_eq!(q.pop(), Some(10));
        assert_eq!(q.pop(), Some(11));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocked_workers_wake_on_close() {
        let q: Arc<ConnQueue<u32>> = Arc::new(ConnQueue::new(4));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.push(7).ok();
        q.close();
        let mut got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![None, None, Some(7)]);
    }
}
