//! Integration tests: real sockets against the loopback server.

use acctrade_httpd::{HostTable, HttpServer, LoopbackTransport, ServerConfig, TimeSource};
use acctrade_net::http::{Request, Status};
use acctrade_net::server::Router;
use acctrade_net::transport::Transport;
use acctrade_net::url::Url;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// A small echo-ish site mounted for every test.
fn test_hosts() -> HostTable {
    let site = Router::new()
        .route("/hello", |_req, _ctx| {
            acctrade_net::http::Response::ok().with_text("hi there")
        })
        .route("/echo", |req: &Request, _ctx| {
            acctrade_net::http::Response::ok().with_text(format!(
                "{} {}",
                req.method,
                String::from_utf8_lossy(&req.body)
            ))
        });
    HostTable::new().with_service("test.example", Arc::new(site))
}

fn start(config: ServerConfig) -> HttpServer {
    HttpServer::bind("127.0.0.1:0", test_hosts(), config).expect("bind loopback")
}

fn quick_config() -> ServerConfig {
    ServerConfig {
        workers: 2,
        idle_timeout: Duration::from_millis(400),
        read_timeout: Duration::from_millis(400),
        time: TimeSource::Virtual(acctrade_net::clock::SimClock::zero()),
        ..ServerConfig::default()
    }
}

/// Read exactly one content-length-framed response off a raw socket.
/// `carry` holds surplus bytes between calls (pipelined responses can
/// arrive in one segment). `Ok(None)` = clean EOF before any response
/// byte.
fn read_framed(
    conn: &mut TcpStream,
    carry: &mut Vec<u8>,
) -> std::io::Result<Option<Vec<u8>>> {
    let mut buf = [0u8; 4096];
    let mut need = None;
    loop {
        if let Some(total) = need {
            if carry.len() >= total {
                let rest = carry.split_off(total);
                return Ok(Some(std::mem::replace(carry, rest)));
            }
        } else if let Some(end) = carry.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&carry[..end]).to_string();
            let len: usize = head
                .split("\r\n")
                .find_map(|l| l.strip_prefix("content-length:"))
                .map(|v| v.trim().parse().expect("framed length"))
                .expect("response carries content-length");
            need = Some(end + 4 + len);
            continue;
        }
        let n = conn.read(&mut buf)?;
        if n == 0 {
            if carry.is_empty() {
                return Ok(None);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "partial response",
            ));
        }
        carry.extend_from_slice(&buf[..n]);
    }
}

/// [`read_framed`] for connections that never pipeline.
fn read_response(conn: &mut TcpStream) -> std::io::Result<Option<Vec<u8>>> {
    read_framed(conn, &mut Vec::new())
}

fn status_of(wire: &[u8]) -> u16 {
    let line = String::from_utf8_lossy(&wire[..wire.len().min(32)]).to_string();
    line.split(' ').nth(1).and_then(|c| c.parse().ok()).expect("status line")
}

#[test]
fn serves_and_reuses_keepalive_connections() {
    let server = start(quick_config());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    for i in 0..3 {
        conn.write_all(b"GET /hello HTTP/1.1\r\nhost: test.example\r\n\r\n").unwrap();
        let wire = read_response(&mut conn).unwrap().expect("response");
        assert_eq!(status_of(&wire), 200, "request {i}");
        assert!(wire.ends_with(b"hi there"));
    }
    drop(conn);
    server.shutdown();
}

#[test]
fn stats_count_accepts_requests_and_reuse() {
    let server = start(quick_config());
    let stats = server.stats();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    for _ in 0..3 {
        conn.write_all(b"GET /hello HTTP/1.1\r\nhost: test.example\r\n\r\n").unwrap();
        read_response(&mut conn).unwrap().expect("response");
    }
    drop(conn);
    server.shutdown();
    let snap = stats.snapshot();
    assert_eq!(snap.accepted, 1);
    assert_eq!(snap.requests, 3);
    assert_eq!(snap.keepalive_reuse, 2);
}

#[test]
fn pipelined_requests_get_ordered_responses() {
    let server = start(quick_config());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(
        b"POST /echo HTTP/1.1\r\nhost: test.example\r\ncontent-length: 5\r\n\r\nfirst\
          GET /hello HTTP/1.1\r\nhost: test.example\r\nconnection: close\r\n\r\n",
    )
    .unwrap();
    let mut carry = Vec::new();
    let first = read_framed(&mut conn, &mut carry).unwrap().expect("first response");
    assert!(first.ends_with(b"POST first"), "got {:?}", String::from_utf8_lossy(&first));
    let second = read_framed(&mut conn, &mut carry).unwrap().expect("second response");
    assert!(second.ends_with(b"hi there"));
    // `connection: close` honored: the stream now EOFs.
    assert!(read_framed(&mut conn, &mut carry).unwrap().is_none());
    server.shutdown();
}

#[test]
fn malformed_request_gets_400_and_close() {
    let server = start(quick_config());
    let stats = server.stats();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(b"BREW /pot HTTP/1.1\r\nhost: test.example\r\n\r\n").unwrap();
    let wire = read_response(&mut conn).unwrap().expect("error response");
    assert_eq!(status_of(&wire), 400);
    assert!(read_response(&mut conn).unwrap().is_none(), "connection closed after 400");
    server.shutdown();
    assert_eq!(stats.snapshot().parse_rejects, 1);
}

#[test]
fn unknown_host_is_404_not_teardown() {
    let server = start(quick_config());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(b"GET /hello HTTP/1.1\r\nhost: nowhere.example\r\n\r\n").unwrap();
    let wire = read_response(&mut conn).unwrap().expect("response");
    assert_eq!(status_of(&wire), 404);
    // The connection survives: virtual-host misses are not protocol errors.
    conn.write_all(b"GET /hello HTTP/1.1\r\nhost: test.example\r\n\r\n").unwrap();
    assert_eq!(status_of(&read_response(&mut conn).unwrap().expect("second")), 200);
    server.shutdown();
}

#[test]
fn idle_keepalive_connection_is_torn_down() {
    let mut config = quick_config();
    config.idle_timeout = Duration::from_millis(120);
    let server = start(config);
    let stats = server.stats();
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(b"GET /hello HTTP/1.1\r\nhost: test.example\r\n\r\n").unwrap();
    read_response(&mut conn).unwrap().expect("response");
    // Sit idle past the timeout; the server must close the connection.
    conn.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(conn.read(&mut buf).unwrap(), 0, "server closed the idle connection");
    server.shutdown();
    assert_eq!(stats.snapshot().timeouts, 1);
}

#[test]
fn head_request_returns_no_body() {
    let server = start(quick_config());
    let mut conn = TcpStream::connect(server.addr()).unwrap();
    conn.write_all(b"HEAD /hello HTTP/1.1\r\nhost: test.example\r\n\r\n").unwrap();
    let wire = read_response(&mut conn).unwrap().expect("response");
    assert_eq!(status_of(&wire), 200);
    assert!(wire.ends_with(b"\r\n\r\n"), "no body bytes after the head");
    server.shutdown();
}

#[test]
fn loopback_transport_round_trips_and_pools() {
    let server = start(quick_config());
    let transport = LoopbackTransport::new(server.addr());
    assert_eq!(transport.mode(), "loopback");
    for _ in 0..3 {
        let req = Request::get(Url::http("test.example", "/hello"));
        let resp = transport.send(&req).expect("loopback send");
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.text(), "hi there");
    }
    assert_eq!(transport.pooled(), 1, "keep-alive connection returned to the pool");
    assert!(transport.now_unix().is_some(), "loopback stamps wall time");
    let stats = server.stats();
    server.shutdown();
    assert_eq!(stats.snapshot().accepted, 1);
}

/// The drain guarantee: once a client has a served connection, shutdown
/// never leaves it with a *partial* response. Ends at a clean boundary
/// (full response or EOF between requests) for every client.
#[test]
fn graceful_shutdown_drains_inflight_connections() {
    let mut config = quick_config();
    config.workers = 4;
    let server = start(config);
    let addr = server.addr();
    let stats = server.stats();

    const CLIENTS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let completed = Arc::new(AtomicUsize::new(0));
    let partial = Arc::new(AtomicUsize::new(0));

    let handles: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            let completed = Arc::clone(&completed);
            let partial = Arc::clone(&partial);
            std::thread::spawn(move || {
                let mut conn = TcpStream::connect(addr).expect("connect");
                // Prove the connection is accepted and serving before
                // shutdown starts.
                conn.write_all(b"GET /hello HTTP/1.1\r\nhost: test.example\r\n\r\n").unwrap();
                read_response(&mut conn).unwrap().expect("warm-up response");
                barrier.wait();
                // Hammer the connection while the server shuts down.
                loop {
                    if conn
                        .write_all(b"GET /hello HTTP/1.1\r\nhost: test.example\r\n\r\n")
                        .is_err()
                    {
                        break; // server finished closing between requests — clean
                    }
                    match read_response(&mut conn) {
                        Ok(Some(wire)) => {
                            assert_eq!(status_of(&wire), 200);
                            completed.fetch_add(1, Ordering::Relaxed);
                            let head = String::from_utf8_lossy(&wire);
                            if head.contains("connection: close") {
                                break; // served, then told to go away — the drain path
                            }
                        }
                        Ok(None) => break, // clean EOF between requests
                        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                            partial.fetch_add(1, Ordering::Relaxed);
                            break;
                        }
                        Err(_) => break, // reset between requests — no partial bytes seen
                    }
                }
            })
        })
        .collect();

    barrier.wait();
    // Let the clients get requests in flight, then pull the plug.
    std::thread::sleep(Duration::from_millis(30));
    server.shutdown();
    for h in handles {
        h.join().expect("client thread");
    }

    assert_eq!(partial.load(Ordering::Relaxed), 0, "a client saw a torn response");
    let snap = stats.snapshot();
    assert_eq!(snap.accepted, CLIENTS as u64);
    // Warm-ups plus whatever landed mid-shutdown all got full answers.
    assert!(snap.requests >= CLIENTS as u64);
    assert_eq!(snap.requests, CLIENTS as u64 + completed.load(Ordering::Relaxed) as u64);
}
