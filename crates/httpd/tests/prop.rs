//! Property tests for the incremental request parser.

use acctrade_httpd::{ParsedRequest, RequestParser};
use foundation::check::{self, any_byte, any_u64, pattern};
use foundation::prop_check;

/// Parse a whole wire buffer in one feed, draining every request.
fn parse_once(wire: &[u8]) -> Result<Vec<ParsedRequest>, acctrade_httpd::ParseError> {
    let mut p = RequestParser::new();
    p.feed(wire);
    let mut out = Vec::new();
    while let Some(r) = p.next_request()? {
        out.push(r);
    }
    Ok(out)
}

/// Compare every field the serve loop consumes.
fn same(a: &ParsedRequest, b: &ParsedRequest) -> bool {
    a.method == b.method
        && a.target == b.target
        && a.http11 == b.http11
        && a.host == b.host
        && a.keep_alive == b.keep_alive
        && a.body.as_ref() == b.body.as_ref()
        && format!("{:?}", a.headers) == format!("{:?}", b.headers)
}

prop_check! {
    /// Splitting a valid request into arbitrary read chunks parses
    /// identically to feeding it whole — the core torn-read guarantee.
    fn chunk_split_identity(
        path in pattern("/[a-z0-9/]{0,20}"),
        body in check::vec(any_byte(), 0..120),
        cuts in check::vec(any_u64(), 0..8),
    ) {
        let wire = format!(
            "POST {path} HTTP/1.1\r\nhost: shard.example\r\nx-probe: 1\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut wire = wire.into_bytes();
        wire.extend_from_slice(&body);

        let whole = parse_once(&wire).expect("canonical request parses");
        assert_eq!(whole.len(), 1);

        // Cut points anywhere in the wire, in any order, duplicates fine.
        let mut cuts: Vec<usize> =
            cuts.iter().map(|&c| (c as usize) % (wire.len() + 1)).collect();
        cuts.sort_unstable();
        let mut split = RequestParser::new();
        let mut start = 0;
        for cut in cuts {
            split.feed(&wire[start..cut]);
            // Interleave polls: a partial prefix must never error.
            if let Some(early) = split.next_request().expect("prefix of valid request") {
                assert!(same(&early, &whole[0]));
                return;
            }
            start = cut;
        }
        split.feed(&wire[start..]);
        let got = split.next_request().expect("full request parses").expect("complete");
        assert!(same(&got, &whole[0]), "chunked parse diverged for {got:?}");
    }

    /// Corrupting any single byte of a request never panics the
    /// parser: the outcome is a parsed request (the corruption landed
    /// somewhere tolerated, e.g. inside the body or a header value) or
    /// a clean `ParseError` — the serve loop's 400 path.
    fn single_byte_corruption_never_panics(
        pos in any_u64(),
        byte in any_byte(),
        body in check::vec(any_byte(), 0..40),
    ) {
        let wire = format!(
            "GET /offers?page=3 HTTP/1.1\r\nhost: m.example\r\ncontent-length: {}\r\n\r\n",
            body.len()
        );
        let mut wire = wire.into_bytes();
        wire.extend_from_slice(&body);
        let pos = (pos as usize) % wire.len();
        wire[pos] = byte;

        // Must terminate without panicking; both Ok and Err are fine.
        let mut p = RequestParser::new();
        p.feed(&wire);
        for _ in 0..4 {
            match p.next_request() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }

    /// Arbitrary binary garbage never panics either.
    fn garbage_never_panics(wire in check::vec(any_byte(), 0..300)) {
        let mut p = RequestParser::new();
        p.feed(&wire);
        while let Ok(Some(_)) = p.next_request() {}
    }
}
