//! Token-bucket rate limiting over virtual time.
//!
//! Used in two places that mirror the paper's setup:
//!
//! * **Server side** — marketplaces throttle aggressive clients with HTTP
//!   429, one of the "crawling challenges" that made some channels
//!   infeasible to monitor (Table 9).
//! * **Client side** — the crawler self-throttles (politeness) so that it
//!   never trips automation triggers, per the paper's ethics statement.


// conformance: reactor-path — no blocking calls; the accept loop/parsers must never stall a lane

/// A token bucket measured in virtual microseconds.
///
/// The bucket holds up to `burst` tokens and refills at `rate_per_sec`
/// tokens per virtual second. [`TokenBucket::try_acquire`] is the
/// non-blocking server-side check; [`TokenBucket::next_allowed_at`] lets a
/// polite client compute how long to sleep.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_refill_us: u64,
}

impl TokenBucket {
    /// Create a bucket that is initially full.
    ///
    /// # Panics
    /// Panics if `rate_per_sec` is not strictly positive or `burst < 1`.
    pub fn new(rate_per_sec: f64, burst: f64, now_us: u64) -> TokenBucket {
        assert!(rate_per_sec > 0.0, "rate must be positive");
        assert!(burst >= 1.0, "burst must allow at least one request");
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_refill_us: now_us,
        }
    }

    fn refill(&mut self, now_us: u64) {
        if now_us > self.last_refill_us {
            let dt = (now_us - self.last_refill_us) as f64 / 1_000_000.0;
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
            self.last_refill_us = now_us;
        }
    }

    /// Try to take one token at virtual time `now_us`. Returns `true` on
    /// success; on failure the bucket is left unchanged apart from refill.
    pub fn try_acquire(&mut self, now_us: u64) -> bool {
        self.refill(now_us);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Virtual time at which one token will be available (equals `now_us`
    /// when a token is already available). Does not consume anything.
    pub fn next_allowed_at(&mut self, now_us: u64) -> u64 {
        self.refill(now_us);
        if self.tokens >= 1.0 {
            now_us
        } else {
            let deficit = 1.0 - self.tokens;
            let wait_s = deficit / self.rate_per_sec;
            now_us + (wait_s * 1_000_000.0).ceil() as u64
        }
    }

    /// Tokens currently in the bucket (after refill to `now_us`).
    pub fn available(&mut self, now_us: u64) -> f64 {
        self.refill(now_us);
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_throttle() {
        let mut b = TokenBucket::new(1.0, 3.0, 0);
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(0), "burst exhausted");
    }

    #[test]
    fn refills_over_time() {
        let mut b = TokenBucket::new(2.0, 2.0, 0); // 2 tokens/sec
        assert!(b.try_acquire(0));
        assert!(b.try_acquire(0));
        assert!(!b.try_acquire(100_000)); // 0.1 s -> 0.2 tokens
        assert!(b.try_acquire(600_000)); // 0.6 s -> 1.2 tokens
    }

    #[test]
    fn next_allowed_at_is_exact() {
        let mut b = TokenBucket::new(1.0, 1.0, 0);
        assert!(b.try_acquire(0));
        let at = b.next_allowed_at(0);
        assert_eq!(at, 1_000_000);
        // One microsecond early: still blocked.
        assert!(!b.try_acquire(at - 1));
        assert!(b.try_acquire(at));
    }

    #[test]
    fn bucket_never_exceeds_burst() {
        let mut b = TokenBucket::new(100.0, 5.0, 0);
        assert!(b.available(10_000_000) <= 5.0);
    }

    #[test]
    fn conservation_tokens_spent_matches_grants() {
        // Over a long horizon the number of grants can't exceed
        // burst + rate * elapsed.
        let rate = 3.0;
        let burst = 4.0;
        let mut b = TokenBucket::new(rate, burst, 0);
        let mut grants = 0u32;
        let mut t = 0u64;
        for _ in 0..10_000 {
            t += 37_000; // 37 ms steps
            if b.try_acquire(t) {
                grants += 1;
            }
        }
        let cap = burst + rate * (t as f64 / 1e6);
        assert!(f64::from(grants) <= cap + 1.0, "grants={grants} cap={cap}");
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = TokenBucket::new(0.0, 1.0, 0);
    }
}
