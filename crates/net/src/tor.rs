//! A minimal Tor overlay model.
//!
//! Underground marketplaces in the paper are onion services: reachable only
//! through the Tor network, slow, and anonymous. We model the pieces that
//! matter for the measurement study:
//!
//! * `.onion` hosts are unreachable without a circuit ([`TorCircuit`]);
//! * circuits are built from three relays (guard, middle, exit) chosen from
//!   a directory, each adding latency;
//! * circuits hide client identity: the fabric logs the exit relay, not the
//!   client, as the requester.

use crate::latency::LatencyModel;
use foundation::rng::{Rng, RngExt};

/// One relay in the simulated Tor directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Relay {
    /// Nickname.
    pub nickname: String,
    /// Per-hop forwarding latency in microseconds.
    pub hop_latency_us: u64,
    /// Relative selection weight (bandwidth-weighted path selection).
    pub weight: u32,
}

/// The relay directory circuits are built from.
#[derive(Debug, Clone)]
pub struct TorDirectory {
    relays: Vec<Relay>,
}

impl TorDirectory {
    /// A small default consensus: enough relays for distinct 3-hop paths.
    pub fn default_consensus() -> TorDirectory {
        let mk = |n: &str, lat: u64, w: u32| Relay {
            nickname: n.to_string(),
            hop_latency_us: lat,
            weight: w,
        };
        TorDirectory {
            relays: vec![
                mk("moria", 40_000, 9),
                mk("ersatz", 55_000, 7),
                mk("panopticon", 80_000, 3),
                mk("zwiebel", 35_000, 10),
                mk("allium", 60_000, 5),
                mk("shallot", 45_000, 8),
                mk("scallion", 70_000, 4),
                mk("leek", 50_000, 6),
            ],
        }
    }

    /// Build a directory from explicit relays.
    ///
    /// # Panics
    /// Panics if fewer than 3 relays are supplied (a circuit needs 3
    /// distinct hops).
    pub fn new(relays: Vec<Relay>) -> TorDirectory {
        assert!(relays.len() >= 3, "a Tor directory needs at least 3 relays");
        TorDirectory { relays }
    }

    /// Number of relays in the consensus.
    pub fn len(&self) -> usize {
        self.relays.len()
    }

    /// `true` when the directory is empty (cannot happen via constructors).
    pub fn is_empty(&self) -> bool {
        self.relays.is_empty()
    }

    /// Build a 3-hop circuit with bandwidth-weighted sampling without
    /// replacement.
    pub fn build_circuit<R: Rng + ?Sized>(&self, rng: &mut R) -> TorCircuit {
        let mut pool: Vec<&Relay> = self.relays.iter().collect();
        let mut hops = Vec::with_capacity(3);
        for _ in 0..3 {
            // Weighted choice over the remaining pool.
            let total: u32 = pool.iter().map(|r| r.weight).sum();
            let mut pick = rng.random_range(0..total);
            let mut idx = 0;
            for (i, r) in pool.iter().enumerate() {
                if pick < r.weight {
                    idx = i;
                    break;
                }
                pick -= r.weight;
            }
            hops.push(pool.remove(idx).clone());
        }
        let id = rng.random_range(0..u64::MAX);
        TorCircuit { id, hops }
    }
}

/// A built 3-hop circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct TorCircuit {
    /// Opaque circuit identifier (what the fabric logs instead of a client
    /// identity).
    pub id: u64,
    hops: Vec<Relay>,
}

impl TorCircuit {
    /// The exit relay's nickname — the "source" an onion service observes.
    pub fn exit_nickname(&self) -> &str {
        &self.hops.last().expect("circuit has hops").nickname // conformance: allow(panic-policy) — circuits are built with >= 1 hop
    }

    /// Hop nicknames in path order (guard, middle, exit).
    pub fn path(&self) -> Vec<&str> {
        self.hops.iter().map(|r| r.nickname.as_str()).collect()
    }

    /// Fixed per-request overlay latency: the sum of hop latencies, each
    /// crossed twice (request + response).
    pub fn overlay_latency_us(&self) -> u64 {
        2 * self.hops.iter().map(|r| r.hop_latency_us).sum::<u64>()
    }

    /// Full latency model for a request through this circuit to an onion
    /// service: overlay cost plus the service's own long-tailed model.
    pub fn request_latency_model(&self) -> LatencyModel {
        let onion = LatencyModel::onion();
        match onion {
            LatencyModel::LongTail { base_us, tail_mean_us } => LatencyModel::LongTail {
                base_us: base_us + self.overlay_latency_us(),
                tail_mean_us,
            },
            other => other,
        }
    }
}

/// Generate a plausible v3 onion hostname (56 base32 chars + ".onion") from
/// a seed. Deterministic, so marketplace configs can embed stable addresses.
pub fn onion_address(seed: u64) -> String {
    const B32: &[u8] = b"abcdefghijklmnopqrstuvwxyz234567";
    let mut s = String::with_capacity(62);
    let mut x = seed;
    for i in 0..56 {
        x = crate::captcha::splitmix64(x ^ i);
        s.push(B32[(x % 32) as usize] as char);
    }
    s.push_str(".onion");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn circuit_has_three_distinct_hops() {
        let dir = TorDirectory::default_consensus();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..100 {
            let c = dir.build_circuit(&mut rng);
            let path = c.path();
            assert_eq!(path.len(), 3);
            assert_ne!(path[0], path[1]);
            assert_ne!(path[1], path[2]);
            assert_ne!(path[0], path[2]);
        }
    }

    #[test]
    fn overlay_latency_counts_both_directions() {
        let dir = TorDirectory::new(vec![
            Relay { nickname: "a".into(), hop_latency_us: 10, weight: 1 },
            Relay { nickname: "b".into(), hop_latency_us: 20, weight: 1 },
            Relay { nickname: "c".into(), hop_latency_us: 30, weight: 1 },
        ]);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = dir.build_circuit(&mut rng);
        assert_eq!(c.overlay_latency_us(), 2 * (10 + 20 + 30));
    }

    #[test]
    fn weighting_prefers_heavy_relays() {
        let dir = TorDirectory::new(vec![
            Relay { nickname: "heavy".into(), hop_latency_us: 1, weight: 100 },
            Relay { nickname: "light".into(), hop_latency_us: 1, weight: 1 },
            Relay { nickname: "mid".into(), hop_latency_us: 1, weight: 10 },
            Relay { nickname: "mid2".into(), hop_latency_us: 1, weight: 10 },
        ]);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut heavy_guard = 0;
        let n = 2000;
        for _ in 0..n {
            let c = dir.build_circuit(&mut rng);
            if c.path()[0] == "heavy" {
                heavy_guard += 1;
            }
        }
        // heavy has ~83% of the weight; allow slack.
        assert!(heavy_guard as f64 / n as f64 > 0.6, "heavy_guard={heavy_guard}");
    }

    #[test]
    fn onion_addresses_are_stable_and_well_formed() {
        let a = onion_address(5);
        let b = onion_address(5);
        let c = onion_address(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.ends_with(".onion"));
        assert_eq!(a.len(), 62);
        assert!(a[..56].bytes().all(|ch| ch.is_ascii_lowercase() || ch.is_ascii_digit()));
    }

    #[test]
    #[should_panic(expected = "at least 3 relays")]
    fn tiny_directory_panics() {
        let _ = TorDirectory::new(vec![Relay {
            nickname: "only".into(),
            hop_latency_us: 1,
            weight: 1,
        }]);
    }
}
