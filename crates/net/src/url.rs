//! A small, strict URL type.
//!
//! The crawler, the marketplace sites, and the platform APIs all exchange
//! URLs constantly; a full RFC 3986 implementation is out of scope, but the
//! subset here is parsed strictly (no silent truncation) and round-trips
//! through `Display`.

// conformance: reactor-path — no blocking calls; the accept loop/parsers must never stall a lane

use crate::error::{NetError, NetResult};
use std::fmt;

/// URL scheme. The fabric only routes `http`/`https`; `.onion` hosts are
/// conventionally reached over `http` through a Tor circuit, as on the real
/// dark web.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Http.
    Http,
    /// Https.
    Https,
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Scheme::Http => "http",
            Scheme::Https => "https",
        })
    }
}

/// A parsed absolute URL: `scheme://host/path?query`.
///
/// Invariants: `host` is non-empty lowercase; `path` always begins with `/`;
/// `query` excludes the leading `?` and is empty when absent. Fragments are
/// not modeled (servers never see them).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Url {
    scheme: Scheme,
    host: String,
    path: String,
    query: String,
}

impl Url {
    /// Parse an absolute URL.
    pub fn parse(s: &str) -> NetResult<Url> {
        let bad = || NetError::BadUrl(s.to_string());
        let (scheme, rest) = if let Some(r) = s.strip_prefix("http://") {
            (Scheme::Http, r)
        } else if let Some(r) = s.strip_prefix("https://") {
            (Scheme::Https, r)
        } else {
            return Err(bad());
        };
        if rest.is_empty() {
            return Err(bad());
        }
        let (host_part, tail) = match rest.find(['/', '?']) {
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, ""),
        };
        if host_part.is_empty()
            || !host_part
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_')
        {
            return Err(bad());
        }
        let (path, query) = if let Some(q) = tail.strip_prefix('?') {
            ("/".to_string(), q.to_string())
        } else if tail.is_empty() {
            ("/".to_string(), String::new())
        } else {
            match tail.find('?') {
                Some(i) => (tail[..i].to_string(), tail[i + 1..].to_string()),
                None => (tail.to_string(), String::new()),
            }
        };
        if path.contains(char::is_whitespace) || query.contains(char::is_whitespace) {
            return Err(bad());
        }
        Ok(Url {
            scheme,
            host: host_part.to_ascii_lowercase(),
            path,
            query,
        })
    }

    /// Build a URL from parts; `path` is normalized to start with `/`.
    pub fn build(scheme: Scheme, host: &str, path: &str) -> Url {
        let path = if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Url {
            scheme,
            host: host.to_ascii_lowercase(),
            path,
            query: String::new(),
        }
    }

    /// Shorthand for `Url::build(Scheme::Http, host, path)`.
    pub fn http(host: &str, path: &str) -> Url {
        Url::build(Scheme::Http, host, path)
    }

    /// Return a copy with the given query string (without leading `?`).
    pub fn with_query(mut self, query: &str) -> Url {
        self.query = query.to_string();
        self
    }

    /// Append one `key=value` pair to the query string. Values are
    /// percent-encoded minimally (space, `&`, `=`, `%`, `?`, `#`).
    pub fn with_param(mut self, key: &str, value: &str) -> Url {
        let pair = format!("{}={}", encode_component(key), encode_component(value));
        if self.query.is_empty() {
            self.query = pair;
        } else {
            self.query.push('&');
            self.query.push_str(&pair);
        }
        self
    }

    /// Scheme of the URL.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Lowercased host.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// Path (always starts with `/`).
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Raw query string (no leading `?`; empty when absent).
    pub fn query(&self) -> &str {
        &self.query
    }

    /// `true` if the host is a Tor onion service.
    pub fn is_onion(&self) -> bool {
        self.host.ends_with(".onion")
    }

    /// Decode the query string into `(key, value)` pairs, percent-decoding
    /// both sides. Pairs without `=` decode to an empty value.
    pub fn query_pairs(&self) -> Vec<(String, String)> {
        if self.query.is_empty() {
            return Vec::new();
        }
        self.query
            .split('&')
            .filter(|p| !p.is_empty())
            .map(|p| match p.split_once('=') {
                Some((k, v)) => (decode_component(k), decode_component(v)),
                None => (decode_component(p), String::new()),
            })
            .collect()
    }

    /// Look up a single query parameter by key.
    pub fn query_param(&self, key: &str) -> Option<String> {
        self.query_pairs().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Resolve a link target against this URL as base: absolute URLs parse
    /// as-is; `/rooted` paths replace path+query; relative paths resolve
    /// against the current directory.
    pub fn join(&self, link: &str) -> NetResult<Url> {
        if link.starts_with("http://") || link.starts_with("https://") {
            return Url::parse(link);
        }
        let (path_part, query) = match link.split_once('?') {
            Some((p, q)) => (p, q.to_string()),
            None => (link, String::new()),
        };
        let path = if path_part.starts_with('/') {
            path_part.to_string()
        } else {
            let dir = match self.path.rfind('/') {
                Some(i) => &self.path[..=i],
                None => "/",
            };
            format!("{dir}{path_part}")
        };
        Ok(Url {
            scheme: self.scheme,
            host: self.host.clone(),
            path: normalize_path(&path),
            query,
        })
    }

    /// Path plus query (the request target a server sees).
    pub fn target(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query)
        }
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}://{}{}", self.scheme, self.host, self.target())
    }
}

impl std::str::FromStr for Url {
    type Err = NetError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

foundation::json_codec_enum! {
    Scheme { Http, Https }
}

/// URLs serialize as their canonical string form and parse back through
/// [`Url::parse`] — malformed URL strings are decode errors.
impl foundation::json::JsonCodec for Url {
    fn to_json(&self) -> foundation::json::Json {
        foundation::json::Json::Str(self.to_string())
    }

    fn from_json(v: &foundation::json::Json) -> Result<Url, foundation::json::JsonError> {
        let s = v
            .as_str()
            .ok_or_else(|| foundation::json::JsonError::decode("expected URL string"))?;
        Url::parse(s)
            .map_err(|e| foundation::json::JsonError::decode(format!("bad URL: {e}")))
    }
}

/// Collapse `.` and `..` segments in an absolute path.
fn normalize_path(path: &str) -> String {
    let mut out: Vec<&str> = Vec::new();
    for seg in path.split('/') {
        match seg {
            "." | "" => {}
            ".." => {
                out.pop();
            }
            s => out.push(s),
        }
    }
    let trailing_slash = path.ends_with('/') && !out.is_empty();
    let mut s = String::from("/");
    s.push_str(&out.join("/"));
    if trailing_slash {
        s.push('/');
    }
    s
}

/// Minimal percent-encoding for query components.
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b' ' => out.push_str("%20"),
            b'&' => out.push_str("%26"),
            b'=' => out.push_str("%3D"),
            b'%' => out.push_str("%25"),
            b'?' => out.push_str("%3F"),
            b'#' => out.push_str("%23"),
            b'+' => out.push_str("%2B"),
            _ => out.push(b as char),
        }
    }
    out
}

/// Inverse of [`encode_component`]; invalid escapes pass through literally.
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = String::with_capacity(s.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() {
            if let Ok(v) = u8::from_str_radix(&s[i + 1..i + 3], 16) {
                out.push(v as char);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i] as char);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_url() {
        let u = Url::parse("https://Accs-Market.com/listings/ig?page=2&sort=price").unwrap();
        assert_eq!(u.scheme(), Scheme::Https);
        assert_eq!(u.host(), "accs-market.com");
        assert_eq!(u.path(), "/listings/ig");
        assert_eq!(u.query(), "page=2&sort=price");
        assert_eq!(u.query_param("page").as_deref(), Some("2"));
    }

    #[test]
    fn bare_host_gets_root_path() {
        let u = Url::parse("http://fameswap.com").unwrap();
        assert_eq!(u.path(), "/");
        assert_eq!(u.to_string(), "http://fameswap.com/");
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "ftp://x.com", "http://", "http://ho st/", "not a url", "http://h^st/"] {
            assert!(Url::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn onion_detection() {
        let u = Url::parse("http://nexusabcd1234.onion/market").unwrap();
        assert!(u.is_onion());
        assert!(!Url::parse("http://accsmarket.com/").unwrap().is_onion());
    }

    #[test]
    fn join_relative_and_rooted() {
        let base = Url::parse("http://z2u.com/listings/tiktok/page3").unwrap();
        assert_eq!(
            base.join("/offer/99").unwrap().to_string(),
            "http://z2u.com/offer/99"
        );
        assert_eq!(
            base.join("page4?x=1").unwrap().to_string(),
            "http://z2u.com/listings/tiktok/page4?x=1"
        );
        assert_eq!(
            base.join("https://other.com/a").unwrap().host(),
            "other.com"
        );
    }

    #[test]
    fn join_normalizes_dotdot() {
        let base = Url::parse("http://h.com/a/b/c").unwrap();
        assert_eq!(base.join("../d").unwrap().path(), "/a/d");
        assert_eq!(base.join("../../../../d").unwrap().path(), "/d");
    }

    #[test]
    fn with_param_encodes() {
        let u = Url::http("api.x.com", "/users")
            .with_param("q", "a b&c=d")
            .with_param("n", "5");
        assert_eq!(u.query(), "q=a%20b%26c%3Dd&n=5");
        let pairs = u.query_pairs();
        assert_eq!(pairs[0], ("q".to_string(), "a b&c=d".to_string()));
        assert_eq!(pairs[1], ("n".to_string(), "5".to_string()));
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "http://a.com/",
            "https://b.co/x/y?k=v",
            "http://c.onion/forum?sec=accounts&page=1",
        ] {
            assert_eq!(Url::parse(s).unwrap().to_string(), s);
        }
    }
}
