//! A shared virtual clock for the discrete-event simulation.
//!
//! The paper's measurement campaign ran from February to June 2024. We model
//! wall-clock time as microseconds since the Unix epoch, held in a shared
//! [`SimClock`] that only moves when the simulation charges time (request
//! latency, crawl politeness delays, inter-iteration gaps). Determinism of
//! the whole study depends on nothing reading the host's real clock.

use foundation::sync::Mutex;
use std::sync::Arc;

/// Microseconds in one second.
pub(crate) const SECOND: u64 = 1_000_000;
/// Microseconds in one minute.
pub(crate) const MINUTE: u64 = 60 * SECOND;
/// Microseconds in one hour.
pub(crate) const HOUR: u64 = 60 * MINUTE;
/// Microseconds in one day.
pub const DAY: u64 = 24 * HOUR;

/// Unix timestamp (seconds) of 2024-02-01 00:00:00 UTC — the start of the
/// paper's collection window.
pub const COLLECTION_START_UNIX: i64 = 1_706_745_600;
/// Unix timestamp (seconds) of 2024-06-30 23:59:59 UTC — the end of the
/// collection window.
// conformance: allow(pub-hygiene) — paper anchor kept as documented API
pub const COLLECTION_END_UNIX: i64 = 1_719_791_999;

/// A shared, monotonically non-decreasing virtual clock.
///
/// Cloning a `SimClock` yields a handle to the *same* clock; all components
/// of a study (fabric, services, crawler, scheduler) share one instance.
#[derive(Clone)]
pub struct SimClock {
    inner: Arc<Mutex<u64>>,
}

impl SimClock {
    /// Create a clock positioned at the start of the paper's collection
    /// window (2024-02-01 UTC).
    pub fn at_collection_start() -> Self {
        Self::at_unix(COLLECTION_START_UNIX)
    }

    /// Create a clock at an arbitrary Unix timestamp (seconds).
    pub fn at_unix(unix_seconds: i64) -> Self {
        SimClock {
            inner: Arc::new(Mutex::new((unix_seconds.max(0) as u64) * SECOND)),
        }
    }

    /// Create a clock at time zero (useful for unit tests).
    pub fn zero() -> Self {
        SimClock { inner: Arc::new(Mutex::new(0)) }
    }

    /// Current virtual time in microseconds since the epoch.
    pub fn now_us(&self) -> u64 {
        *self.inner.lock()
    }

    /// Current virtual time as Unix seconds.
    pub fn now_unix(&self) -> i64 {
        (self.now_us() / SECOND) as i64
    }

    /// Advance the clock by `delta_us` microseconds and return the new time.
    pub fn advance(&self, delta_us: u64) -> u64 {
        let mut t = self.inner.lock();
        *t += delta_us;
        *t
    }

    /// Move the clock forward *to* `target_us` if it is in the future;
    /// a target in the past is a no-op (the clock never goes backwards).
    pub fn advance_to(&self, target_us: u64) -> u64 {
        let mut t = self.inner.lock();
        if target_us > *t {
            *t = target_us;
        }
        *t
    }

    /// Days elapsed since the collection-window start; negative if the clock
    /// predates it.
    pub fn days_into_collection(&self) -> f64 {
        (self.now_unix() - COLLECTION_START_UNIX) as f64 / 86_400.0
    }
}

impl telemetry::VirtualClock for SimClock {
    fn now_us(&self) -> u64 {
        SimClock::now_us(self)
    }
}

impl std::fmt::Debug for SimClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SimClock({}us)", self.now_us())
    }
}

/// Render a Unix timestamp (seconds) as a `YYYY-MM-DD` date string using a
/// proleptic Gregorian calendar. Only needs to be right for the study's date
/// range (2005–2026) but is implemented correctly for all of 1970+.
pub fn format_date(unix_seconds: i64) -> String {
    let (y, m, d) = ymd(unix_seconds);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Decompose a Unix timestamp (seconds) into `(year, month, day)` in UTC.
pub fn ymd(unix_seconds: i64) -> (i32, u32, u32) {
    // Civil-from-days algorithm (Howard Hinnant's `days_from_civil` inverse).
    let z = unix_seconds.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// Compose a UTC `(year, month, day)` into a Unix timestamp (seconds at
/// midnight). Inverse of [`ymd`].
pub fn unix_from_ymd(y: i32, m: u32, d: u32) -> i64 {
    let y = i64::from(y) - i64::from(m <= 2);
    let era = y.div_euclid(400);
    let yoe = y.rem_euclid(400);
    let mp = i64::from(if m > 2 { m - 3 } else { m + 9 });
    let doy = (153 * mp + 2) / 5 + i64::from(d) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    (era * 146_097 + doe - 719_468) * 86_400
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_shared_between_clones() {
        let a = SimClock::zero();
        let b = a.clone();
        a.advance(42);
        assert_eq!(b.now_us(), 42);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = SimClock::zero();
        c.advance(100);
        c.advance_to(50);
        assert_eq!(c.now_us(), 100);
        c.advance_to(150);
        assert_eq!(c.now_us(), 150);
    }

    #[test]
    fn collection_window_dates() {
        assert_eq!(format_date(COLLECTION_START_UNIX), "2024-02-01");
        assert_eq!(format_date(COLLECTION_END_UNIX), "2024-06-30");
    }

    #[test]
    fn ymd_roundtrip_known_dates() {
        for &(y, m, d) in &[
            (1970, 1, 1),
            (2000, 2, 29),
            (2005, 7, 15),
            (2017, 1, 1),
            (2020, 12, 31),
            (2024, 2, 29),
            (2024, 6, 30),
            (2026, 7, 5),
        ] {
            let ts = unix_from_ymd(y, m, d);
            assert_eq!(ymd(ts), (y, m, d), "roundtrip failed for {y}-{m}-{d}");
        }
    }

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(unix_from_ymd(1970, 1, 1), 0);
        assert_eq!(ymd(0), (1970, 1, 1));
    }

    #[test]
    fn days_into_collection_tracks_advances() {
        let c = SimClock::at_collection_start();
        assert!((c.days_into_collection() - 0.0).abs() < 1e-9);
        c.advance(3 * DAY);
        assert!((c.days_into_collection() - 3.0).abs() < 1e-9);
    }
}
