//! Pluggable request transport behind [`crate::client::Client`].
//!
//! The paper's collection ran over real HTTP; the reproduction's studies
//! run over the deterministic [`crate::sim::SimNet`] fabric. This module
//! is the seam that lets the *same* client — and therefore the same
//! crawler, resolver, and campaign code — do both:
//!
//! * **sim** (the default, no [`Transport`] installed): requests are
//!   dispatched in-process through the fabric with virtual-clock latency
//!   accounting — byte-identical artifacts, exactly as before;
//! * **loopback** (`acctrade-httpd`'s `LoopbackTransport`): requests are
//!   serialized to HTTP/1.1 wire bytes and sent over real TCP sockets to
//!   a real server, with real concurrency and real backpressure.
//!
//! A transport answers three questions the client otherwise asks the
//! fabric: *send this request*, *what does this host's robots.txt say*,
//! and *what time is it* (for stamping `collected_unix` on records —
//! wall time on a real transport, so deterministic comparisons strip
//! it; see `crawler::merge::normalize_for_parity`).

use crate::error::NetResult;
use crate::http::{Request, Response};
use crate::robots::RobotsPolicy;
use crate::sim::SimNet;
use std::sync::Arc;

/// A way to get a [`Request`] to a server and a [`Response`] back.
///
/// Implementations must be `Send + Sync`: the sharded crawl engine
/// shares one transport across all worker threads
/// ([`crate::client::Client::fork_for_shard`] clones the handle).
pub trait Transport: Send + Sync {
    /// Short mode name for provenance ("sim", "loopback").
    fn mode(&self) -> &'static str;

    /// Send one request and wait for the response. Transport-level
    /// failures (refused, reset, deadline) map onto the same
    /// [`crate::error::NetError`] vocabulary the fabric uses, so retry
    /// and error-handling paths above the client are mode-agnostic.
    fn send(&self, req: &Request) -> NetResult<Response>;

    /// The robots policy governing `host`, when the transport can
    /// produce one (a real transport fetches and caches
    /// `/robots.txt`). `None` falls back to the client's fabric
    /// registry.
    fn robots(&self, _host: &str) -> Option<RobotsPolicy> {
        None
    }

    /// The transport's notion of "now" in unix seconds, used to stamp
    /// collection timestamps on records. `None` means "use the virtual
    /// clock" (the sim fabric); a real transport returns wall time.
    fn now_unix(&self) -> Option<i64> {
        None
    }
}

/// The simulated fabric exposed through the [`Transport`] interface.
///
/// [`crate::client::Client`] does *not* need this to reach the fabric —
/// with no transport installed it takes its native lane-aware path —
/// but tests and generic study drivers that hold `Arc<dyn Transport>`
/// uniformly can wrap a fabric in one of these.
pub struct SimTransport {
    net: Arc<SimNet>,
    peer: String,
}

impl SimTransport {
    /// Wrap a fabric; `peer` is the identity servers see.
    pub fn new(net: &Arc<SimNet>, peer: &str) -> SimTransport {
        SimTransport { net: Arc::clone(net), peer: peer.to_string() }
    }
}

impl Transport for SimTransport {
    fn mode(&self) -> &'static str {
        "sim"
    }

    fn send(&self, req: &Request) -> NetResult<Response> {
        self.net.dispatch(req, &self.peer, false, 0)
    }

    fn robots(&self, host: &str) -> Option<RobotsPolicy> {
        self.net.robots_for(host)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Status;
    use crate::server::FixedStatus;
    use crate::url::Url;

    #[test]
    fn sim_transport_routes_through_fabric() {
        let net = SimNet::new(11);
        net.register("t.com", FixedStatus(Status::Ok, "via transport"));
        let t = SimTransport::new(&net, "peer-1");
        assert_eq!(t.mode(), "sim");
        let resp = t.send(&Request::get(Url::http("t.com", "/"))).unwrap();
        assert_eq!(resp.text(), "via transport");
        assert!(t.robots("t.com").is_some());
        assert!(t.now_unix().is_none(), "sim stamps from the virtual clock");
    }
}
