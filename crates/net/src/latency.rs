//! Seeded latency models.
//!
//! Every request routed through the fabric charges virtual time according to
//! the destination's latency model. Clearnet marketplaces get tens of
//! milliseconds; platform APIs are faster; Tor circuits add hundreds of
//! milliseconds per hop (see [`crate::tor`]).

// conformance: reactor-path — no blocking calls; the accept loop/parsers must never stall a lane

use foundation::rng::{Rng, RngExt};

/// A latency model sampled once per request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Constant latency.
    /// Fixed.
    Fixed {
        /// Constant latency in microseconds.
        us: u64,
    },
    /// Uniform between `lo_us` and `hi_us` (inclusive of lo, exclusive hi).
    /// Uniform.
    Uniform {
        /// Inclusive lower bound in microseconds.
        lo_us: u64,
        /// Exclusive upper bound in microseconds.
        hi_us: u64,
    },
    /// Long-tailed: base plus an exponential tail with the given mean.
    /// Models congested overlay paths and flaky shared hosting.
    /// Long tail.
    LongTail {
        /// Minimum latency in microseconds.
        base_us: u64,
        /// Mean of the exponential tail in microseconds.
        tail_mean_us: u64,
    },
}

impl LatencyModel {
    /// A typical clearnet web-server profile (~30-80 ms).
    pub fn clearnet() -> LatencyModel {
        LatencyModel::Uniform { lo_us: 30_000, hi_us: 80_000 }
    }

    /// A typical well-provisioned API profile (~10-25 ms).
    pub fn api() -> LatencyModel {
        LatencyModel::Uniform { lo_us: 10_000, hi_us: 25_000 }
    }

    /// A Tor onion-service profile (~400 ms base with a heavy tail).
    pub fn onion() -> LatencyModel {
        LatencyModel::LongTail { base_us: 400_000, tail_mean_us: 350_000 }
    }

    /// Sample one request's latency in microseconds.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        match *self {
            LatencyModel::Fixed { us } => us,
            LatencyModel::Uniform { lo_us, hi_us } => {
                if hi_us <= lo_us {
                    lo_us
                } else {
                    rng.random_range(lo_us..hi_us)
                }
            }
            LatencyModel::LongTail { base_us, tail_mean_us } => {
                // Inverse-CDF exponential sample; clamp u away from 0 so the
                // tail stays finite.
                let u: f64 = rng.random_range(1e-9..1.0f64);
                let tail = (-u.ln()) * tail_mean_us as f64;
                base_us + tail as u64
            }
        }
    }

    /// The model's mean latency in microseconds (exact, not sampled).
    pub fn mean_us(&self) -> u64 {
        match *self {
            LatencyModel::Fixed { us } => us,
            LatencyModel::Uniform { lo_us, hi_us } => (lo_us + hi_us) / 2,
            LatencyModel::LongTail { base_us, tail_mean_us } => base_us + tail_mean_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn fixed_is_constant() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let m = LatencyModel::Fixed { us: 500 };
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 500);
        }
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let m = LatencyModel::Uniform { lo_us: 100, hi_us: 200 };
        for _ in 0..1000 {
            let s = m.sample(&mut rng);
            assert!((100..200).contains(&s));
        }
    }

    #[test]
    fn uniform_degenerate_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let m = LatencyModel::Uniform { lo_us: 100, hi_us: 100 };
        assert_eq!(m.sample(&mut rng), 100);
    }

    #[test]
    fn long_tail_exceeds_base_and_averages_near_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let m = LatencyModel::LongTail { base_us: 1000, tail_mean_us: 2000 };
        let n = 20_000;
        let mut total = 0u64;
        for _ in 0..n {
            let s = m.sample(&mut rng);
            assert!(s >= 1000);
            total += s;
        }
        let avg = total as f64 / n as f64;
        let expect = m.mean_us() as f64;
        assert!((avg - expect).abs() / expect < 0.1, "avg={avg} expect={expect}");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let m = LatencyModel::clearnet();
        let a: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            (0..32).map(|_| m.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = ChaCha8Rng::seed_from_u64(9);
            (0..32).map(|_| m.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
