//! CAPTCHA challenge gates.
//!
//! Underground forums in the paper all ran "complex, site-specific,
//! non-standard CAPTCHAs", which is why the authors collected those markets
//! *manually*. We model a challenge that an automated client, by policy,
//! never solves (the paper's ethics constraint: no CAPTCHA bypassing), while
//! a [`crate::client::Client`] operating in *manual* mode simulates a human
//! operator solving it after a realistic delay.

use foundation::rng::{Rng, RngExt};

/// Kinds of challenge observed across the simulated sites, in increasing
/// order of human solve time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaptchaKind {
    /// Distorted-text image.
    DistortedText,
    /// Pick-the-images grid.
    ImageGrid,
    /// Site-specific puzzle (rotate the symbol, order the cards, ...) — the
    /// "non-standard" class that defeats off-the-shelf solvers.
    SitePuzzle,
}

impl CaptchaKind {
    /// Mean human solve time, virtual microseconds.
    pub fn mean_solve_us(self) -> u64 {
        match self {
            CaptchaKind::DistortedText => 8_000_000,
            CaptchaKind::ImageGrid => 15_000_000,
            CaptchaKind::SitePuzzle => 35_000_000,
        }
    }

    /// Probability a human solves it on a given attempt.
    pub fn human_success_rate(self) -> f64 {
        match self {
            CaptchaKind::DistortedText => 0.92,
            CaptchaKind::ImageGrid => 0.85,
            CaptchaKind::SitePuzzle => 0.70,
        }
    }
}

/// A challenge issued by a gate, referencing an opaque nonce the server
/// validates on solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Challenge {
    /// Kind.
    pub kind: CaptchaKind,
    /// Nonce.
    pub nonce: u64,
}

/// Outcome of a simulated human attempt at a challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolveAttempt {
    /// Did the attempt succeed?
    pub solved: bool,
    /// Virtual time the attempt consumed.
    pub elapsed_us: u64,
}

/// A server-side CAPTCHA gate: issues challenges and verifies solutions.
#[derive(Debug, Clone)]
pub struct CaptchaGate {
    kind: CaptchaKind,
    counter: u64,
    secret: u64,
}

impl CaptchaGate {
    /// Create a gate of the given kind; `secret` keys the nonce sequence.
    pub fn new(kind: CaptchaKind, secret: u64) -> CaptchaGate {
        CaptchaGate { kind, counter: 0, secret }
    }

    /// Kind of challenge this gate issues.
    pub fn kind(&self) -> CaptchaKind {
        self.kind
    }

    /// Issue a fresh challenge.
    pub fn issue(&mut self) -> Challenge {
        self.counter += 1;
        Challenge {
            kind: self.kind,
            nonce: splitmix64(self.secret ^ self.counter),
        }
    }

    /// Verify a solution token for a previously issued challenge.
    pub fn verify(&self, challenge: &Challenge, token: u64) -> bool {
        token == expected_token(challenge)
    }
}

/// Simulate a human operator attempting `challenge`. Returns the attempt
/// outcome and, on success, the valid token.
pub fn human_attempt<R: Rng + ?Sized>(
    challenge: &Challenge,
    rng: &mut R,
) -> (SolveAttempt, Option<u64>) {
    let kind = challenge.kind;
    // Solve time ~ uniform in [0.5, 1.5] x mean.
    let mean = kind.mean_solve_us();
    let elapsed_us = rng.random_range(mean / 2..mean + mean / 2);
    let solved = rng.random_bool(kind.human_success_rate());
    let token = solved.then(|| expected_token(challenge));
    (SolveAttempt { solved, elapsed_us }, token)
}

fn expected_token(challenge: &Challenge) -> u64 {
    splitmix64(challenge.nonce ^ 0xC0FF_EE00_D15E_A5ED)
}

/// SplitMix64 — a tiny, high-quality mixing function used for nonces and
/// tokens. Not cryptographic; does not need to be (the adversary here is a
/// unit test).
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::SeedableRng;
    use foundation::rng::ChaCha8Rng;

    #[test]
    fn issued_challenges_are_unique() {
        let mut gate = CaptchaGate::new(CaptchaKind::SitePuzzle, 42);
        let a = gate.issue();
        let b = gate.issue();
        assert_ne!(a.nonce, b.nonce);
    }

    #[test]
    fn correct_token_verifies_wrong_token_fails() {
        let mut gate = CaptchaGate::new(CaptchaKind::ImageGrid, 7);
        let ch = gate.issue();
        let (_, token) = loop {
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let out = human_attempt(&ch, &mut rng);
            if out.1.is_some() {
                break out;
            }
        };
        assert!(gate.verify(&ch, token.unwrap()));
        assert!(!gate.verify(&ch, token.unwrap() ^ 1));
    }

    #[test]
    fn human_solve_rate_matches_kind() {
        let mut gate = CaptchaGate::new(CaptchaKind::SitePuzzle, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let n = 5000;
        let mut solved = 0;
        for _ in 0..n {
            let ch = gate.issue();
            let (att, _) = human_attempt(&ch, &mut rng);
            if att.solved {
                solved += 1;
            }
        }
        let rate = solved as f64 / n as f64;
        assert!((rate - 0.70).abs() < 0.03, "rate={rate}");
    }

    #[test]
    fn solve_time_scales_with_difficulty() {
        assert!(
            CaptchaKind::SitePuzzle.mean_solve_us() > CaptchaKind::DistortedText.mean_solve_us()
        );
    }

    #[test]
    fn splitmix_is_a_bijection_probe() {
        // Distinct inputs must give distinct outputs over a small probe set.
        let outs: std::collections::HashSet<u64> = (0..10_000u64).map(splitmix64).collect();
        assert_eq!(outs.len(), 10_000);
    }
}
