//! A session-capable HTTP client for the fabric.
//!
//! Models the two collection personas from the paper:
//!
//! * the **automated crawler** — respects robots.txt, self-throttles,
//!   never solves CAPTCHAs, follows redirects;
//! * the **manual operator** — used for underground forums: rides a Tor
//!   circuit, registers accounts, solves CAPTCHAs (slowly, fallibly), and
//!   is exempt from robots (a human browsing, not a bot).

use crate::captcha::{self, CaptchaKind, Challenge};
use crate::error::{NetError, NetResult};
use crate::http::{Request, Response, Status};
use crate::lane::Lane;
use crate::ratelimit::TokenBucket;
use crate::sim::SimNet;
use crate::tor::TorCircuit;
use crate::transport::Transport;
use crate::url::Url;
use foundation::sync::Mutex;
use foundation::rng::SeedableRng;
use foundation::rng::ChaCha8Rng;
use std::collections::HashMap;
use std::sync::Arc;

const MAX_REDIRECTS: usize = 8;
/// Response header a gated service uses to issue a CAPTCHA challenge.
pub const CAPTCHA_KIND_HEADER: &str = "x-captcha-kind";
/// Response header carrying the challenge nonce.
pub const CAPTCHA_NONCE_HEADER: &str = "x-captcha-nonce";
/// Request header carrying a solved token.
pub(crate) const CAPTCHA_TOKEN_HEADER: &str = "x-captcha-token";

/// Client operating mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Persona {
    /// Automated crawler: robots-respecting, never solves CAPTCHAs.
    Automated,
    /// Human operator: ignores robots (interactive browsing), attempts
    /// CAPTCHAs with human success rates and delays.
    Manual,
}

/// A stateful HTTP client bound to one [`SimNet`].
pub struct Client {
    net: Arc<SimNet>,
    user_agent: String,
    persona: Persona,
    session_id: String,
    cookies: Mutex<HashMap<String, HashMap<String, String>>>,
    politeness: Mutex<HashMap<String, TokenBucket>>,
    polite_rate: Option<(f64, f64)>,
    circuit: Option<TorCircuit>,
    rng: Mutex<ChaCha8Rng>,
    max_captcha_attempts: u32,
    /// Transparent retries on transient transport faults (resets,
    /// timeouts). 0 = fail fast.
    retries: u32,
    /// Deterministic execution lane; when set, every clock read/advance
    /// and every dispatch is charged to the lane instead of the shared
    /// fabric state (the parallel-crawl path).
    lane: Option<Arc<Lane>>,
    /// How many sibling shard clients share this client's target host.
    /// Politeness budgets are divided by it and robots crawl-delays
    /// multiplied by it, so the *aggregate* request density on the host
    /// never exceeds what one sequential polite crawler would produce.
    host_share: u32,
    /// Pluggable request transport. `None` = the native sim-fabric
    /// path (lane-aware dispatch, virtual latency). `Some` = requests
    /// go through the transport (e.g. real loopback TCP), while
    /// politeness and robots *logic* stay identical.
    transport: Option<Arc<dyn Transport>>,
}

impl Client {
    /// An automated client with no politeness delay.
    pub fn new(net: &Arc<SimNet>, user_agent: &str) -> Client {
        Client {
            net: Arc::clone(net),
            user_agent: user_agent.to_string(),
            persona: Persona::Automated,
            session_id: format!("sess-{}", captcha::splitmix64(user_agent.len() as u64)),
            cookies: Mutex::new(HashMap::new()),
            politeness: Mutex::new(HashMap::new()),
            polite_rate: None,
            circuit: None,
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(0x00C1_1E27)),
            max_captcha_attempts: 3,
            retries: 0,
            lane: None,
            host_share: 1,
            transport: None,
        }
    }

    /// Fork a shard client for the parallel crawl engine: same fabric,
    /// user agent, persona, session identity, and retry policy, but
    /// bound to `lane` (all virtual time and RNG draws are charged
    /// there) with the politeness budget divided across `host_share`
    /// sibling shards targeting the same host.
    ///
    /// The split keeps the paper's crawl etiquette intact under
    /// parallelism: `host_share` shards each throttled to `rate /
    /// host_share` (and each honouring `host_share ×` the robots
    /// crawl-delay) put no more load on a host, per unit of virtual
    /// time, than one sequential polite crawler would.
    pub fn fork_for_shard(&self, lane: Arc<Lane>, host_share: u32) -> Client {
        let share = host_share.max(1);
        Client {
            net: Arc::clone(&self.net),
            user_agent: self.user_agent.clone(),
            persona: self.persona,
            session_id: self.session_id.clone(),
            cookies: Mutex::new(HashMap::new()),
            politeness: Mutex::new(HashMap::new()),
            polite_rate: self
                .polite_rate
                .map(|(rate, burst)| (rate / f64::from(share), (burst / f64::from(share)).max(1.0))),
            circuit: None,
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(0x00C1_1E27)),
            max_captcha_attempts: self.max_captcha_attempts,
            retries: self.retries,
            lane: Some(lane),
            host_share: share,
            transport: self.transport.clone(),
        }
    }

    /// Route requests through `transport` instead of the in-process
    /// fabric dispatch (e.g. `acctrade-httpd`'s loopback-TCP
    /// transport). Robots enforcement, politeness pacing, cookies,
    /// redirects, and CAPTCHA handling are unchanged; only the wire is
    /// swapped. Tor-circuit requests keep riding the simulated overlay.
    pub fn with_transport(mut self, transport: Arc<dyn Transport>) -> Client {
        self.transport = Some(transport);
        self
    }

    /// The installed transport's mode name, or "sim" for the native
    /// fabric path — recorded as provenance by studies.
    pub fn transport_mode(&self) -> &'static str {
        self.transport.as_deref().map(Transport::mode).unwrap_or("sim")
    }

    /// Retry transient transport failures (connection resets, timeouts)
    /// up to `n` additional times, with a short virtual-time backoff.
    /// Robots refusals and HTTP error statuses are never retried.
    pub fn with_retries(mut self, n: u32) -> Client {
        self.retries = n;
        self
    }

    /// Set per-host politeness: at most `rate` requests/sec with the given
    /// burst. The client *waits* (advances virtual time) instead of
    /// hammering — the paper's "avoiding automation triggers".
    pub fn with_politeness(mut self, rate: f64, burst: f64) -> Client {
        self.polite_rate = Some((rate, burst));
        self
    }

    /// Switch to the manual-operator persona.
    pub fn manual(mut self, seed: u64) -> Client {
        self.persona = Persona::Manual;
        self.rng = Mutex::new(ChaCha8Rng::seed_from_u64(seed ^ 0x0CE4_11FE));
        self
    }

    /// Attach a Tor circuit; all requests go through the overlay and
    /// `.onion` hosts become reachable.
    pub fn via_tor(mut self, circuit: TorCircuit) -> Client {
        self.circuit = Some(circuit);
        self
    }

    /// Stable session identifier (what clearnet servers see as the peer).
    pub fn session_id(&self) -> &str {
        &self.session_id
    }

    /// The fabric this client is bound to.
    pub fn net(&self) -> &Arc<SimNet> {
        &self.net
    }

    /// The lane this client is confined to, if any.
    pub fn lane(&self) -> Option<&Arc<Lane>> {
        self.lane.as_ref()
    }

    /// Current virtual time in unix seconds — lane time for shard
    /// clients, shared fabric time otherwise. Crawlers stamp
    /// `collected_unix` from this so records carry the time the fetch
    /// actually happened on the client's own timeline.
    pub fn virtual_now_unix(&self) -> i64 {
        if let Some(t) = &self.transport {
            if let Some(now) = t.now_unix() {
                return now;
            }
        }
        match &self.lane {
            Some(l) => l.now_unix(),
            None => self.net.clock().now_unix(),
        }
    }

    fn vnow_us(&self) -> u64 {
        match &self.lane {
            Some(l) => l.now_us(),
            None => self.net.clock().now_us(),
        }
    }

    fn vadvance(&self, delta_us: u64) {
        match &self.lane {
            Some(l) => l.advance(delta_us),
            None => {
                self.net.clock().advance(delta_us);
            }
        }
    }

    fn vadvance_to(&self, target_us: u64) {
        match &self.lane {
            Some(l) => l.advance_to(target_us),
            None => {
                self.net.clock().advance_to(target_us);
            }
        }
    }

    /// GET a URL string.
    pub fn get(&self, url: &str) -> NetResult<Response> {
        let url = Url::parse(url)?;
        self.execute(Request::get(url))
    }

    /// GET a parsed URL.
    pub fn get_url(&self, url: &Url) -> NetResult<Response> {
        self.execute(Request::get(url.clone()))
    }

    /// POST a form.
    pub fn post_form(&self, url: &Url, fields: &[(&str, &str)]) -> NetResult<Response> {
        self.execute(Request::post_form(url.clone(), fields))
    }

    /// Execute a request with robots checks, politeness, cookies,
    /// redirects, and (manual persona) CAPTCHA solving.
    pub fn execute(&self, mut req: Request) -> NetResult<Response> {
        let mut redirects = 0usize;
        loop {
            self.enforce_robots(&req.url)?;
            self.wait_politeness(req.url.host());
            self.attach_headers(&mut req);

            let resp = self.send_once(&req)?;
            self.store_cookies(req.url.host(), &resp);

            // CAPTCHA gate?
            if resp.status == Status::Unauthorized {
                if let Some(challenge) = extract_challenge(&resp) {
                    match self.persona {
                        Persona::Automated => {
                            // Ethics: automated collection never bypasses
                            // CAPTCHAs. Surface the 401 to the caller.
                            telemetry::with_recorder(|r| {
                                r.incr("net.captcha", &[("outcome", "refused")], 1);
                            });
                            return Ok(resp);
                        }
                        Persona::Manual => {
                            if let Some(token) = self.solve_captcha(&challenge) {
                                telemetry::with_recorder(|r| {
                                    r.incr("net.captcha", &[("outcome", "solved")], 1);
                                });
                                req.headers.set(CAPTCHA_TOKEN_HEADER, token.to_string());
                                continue;
                            }
                            telemetry::with_recorder(|r| {
                                r.incr("net.captcha", &[("outcome", "failed")], 1);
                            });
                            return Ok(resp); // gave up
                        }
                    }
                }
            }

            if resp.status.is_redirect() {
                redirects += 1;
                if redirects > MAX_REDIRECTS {
                    return Err(NetError::TooManyRedirects(req.url.to_string()));
                }
                let loc = resp
                    .headers
                    .get("location")
                    .ok_or_else(|| NetError::Protocol("redirect without location".into()))?;
                let next = req.url.join(loc)?;
                req = Request::get(next);
                continue;
            }
            return Ok(resp);
        }
    }

    fn send_once(&self, req: &Request) -> NetResult<Response> {
        let mut attempt = 0;
        loop {
            let result = self.send_raw(req);
            match &result {
                Err(NetError::ConnectionReset(_)) | Err(NetError::Timeout { .. })
                    if attempt < self.retries =>
                {
                    attempt += 1;
                    telemetry::with_recorder(|r| {
                        r.incr("net.retries", &[("host", req.url.host())], 1);
                    });
                    // Linear virtual-time backoff before the retry.
                    self.vadvance(u64::from(attempt) * 500_000);
                }
                _ => return result,
            }
        }
    }

    fn send_raw(&self, req: &Request) -> NetResult<Response> {
        match &self.circuit {
            Some(circuit) => {
                let extra = circuit.overlay_latency_us();
                self.net.dispatch(req, circuit.exit_nickname(), true, extra)
            }
            None => {
                if req.url.is_onion() {
                    return Err(NetError::TorRequired(req.url.host().to_string()));
                }
                match &self.transport {
                    Some(t) => t.send(req),
                    None => self
                        .net
                        .dispatch_in(req, &self.session_id, false, 0, self.lane.as_deref()),
                }
            }
        }
    }

    fn enforce_robots(&self, url: &Url) -> NetResult<()> {
        if self.persona == Persona::Manual {
            return Ok(()); // humans browse; robots.txt governs robots
        }
        if url.path() == "/robots.txt" {
            return Ok(());
        }
        let policy = match &self.transport {
            // A real transport fetches robots.txt over its own wire
            // (cached); fall back to the fabric registry so hybrid
            // setups (loopback marketplaces, simulated overlay) work.
            Some(t) => t.robots(url.host()).or_else(|| self.net.robots_for(url.host())),
            None => self.net.robots_for(url.host()),
        };
        if let Some(policy) = policy {
            if !policy.is_allowed(&self.user_agent, url.path()) {
                telemetry::with_recorder(|r| {
                    r.incr("net.robots_denied", &[("host", url.host())], 1);
                });
                return Err(NetError::RobotsDisallowed(url.to_string()));
            }
            if let Some(delay) = policy.crawl_delay_us(&self.user_agent) {
                // Shard clients honour their share of the host's
                // crawl-delay budget: `host_share` parallel timelines
                // each spacing requests `host_share ×` wider aggregate
                // to the same per-host density one crawler produces.
                self.vadvance(delay.saturating_mul(u64::from(self.host_share)));
            }
        }
        Ok(())
    }

    fn wait_politeness(&self, host: &str) {
        let Some((rate, burst)) = self.polite_rate else {
            return;
        };
        let start = self.vnow_us();
        let mut map = self.politeness.lock();
        let bucket = map
            .entry(host.to_string())
            .or_insert_with(|| TokenBucket::new(rate, burst, start));
        // Loop rather than wait-once: with fractional rates (a shard
        // client's share of the host budget) float rounding can leave
        // the bucket a hair under one token at the predicted time, so
        // re-check and nudge at least 1 µs forward until granted.
        let mut t = start;
        while !bucket.try_acquire(t) {
            let at = bucket.next_allowed_at(t).max(t + 1);
            self.vadvance_to(at);
            t = self.vnow_us();
        }
        if t > start {
            telemetry::with_recorder(|r| {
                r.observe("net.politeness_wait_us", &[], t - start);
            });
        }
    }

    fn attach_headers(&self, req: &mut Request) {
        req.headers.set("user-agent", self.user_agent.clone());
        let cookies = self.cookies.lock();
        if let Some(jar) = cookies.get(req.url.host()) {
            if !jar.is_empty() {
                let mut pairs: Vec<String> =
                    jar.iter().map(|(k, v)| format!("{k}={v}")).collect();
                pairs.sort();
                req.headers.set("cookie", pairs.join("; "));
            }
        }
    }

    fn store_cookies(&self, host: &str, resp: &Response) {
        if let Some(sc) = resp.headers.get("set-cookie") {
            if let Some((k, v)) = sc.split_once('=') {
                let v = v.split(';').next().unwrap_or("").trim();
                self.cookies
                    .lock()
                    .entry(host.to_string())
                    .or_default()
                    .insert(k.trim().to_string(), v.to_string());
            }
        }
    }

    fn solve_captcha(&self, challenge: &Challenge) -> Option<u64> {
        let mut rng = self.rng.lock();
        for _ in 0..self.max_captcha_attempts {
            let (attempt, token) = captcha::human_attempt(challenge, &mut *rng);
            self.vadvance(attempt.elapsed_us);
            if attempt.solved {
                return token;
            }
        }
        None
    }
}

/// Pull a CAPTCHA challenge out of a 401 response, if present.
pub(crate) fn extract_challenge(resp: &Response) -> Option<Challenge> {
    let kind = match resp.headers.get(CAPTCHA_KIND_HEADER)? {
        "distorted-text" => CaptchaKind::DistortedText,
        "image-grid" => CaptchaKind::ImageGrid,
        "site-puzzle" => CaptchaKind::SitePuzzle,
        _ => return None,
    };
    let nonce = resp.headers.get(CAPTCHA_NONCE_HEADER)?.parse().ok()?;
    Some(Challenge { kind, nonce })
}

/// Render a [`CaptchaKind`] as its header value.
pub fn captcha_kind_header_value(kind: CaptchaKind) -> &'static str {
    match kind {
        CaptchaKind::DistortedText => "distorted-text",
        CaptchaKind::ImageGrid => "image-grid",
        CaptchaKind::SitePuzzle => "site-puzzle",
    }
}

/// Check a request for a valid solved-CAPTCHA token against `expected`
/// (computed server-side from the issued challenge).
pub fn request_token(req: &Request) -> Option<u64> {
    req.headers.get(CAPTCHA_TOKEN_HEADER)?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::captcha::CaptchaGate;
    use crate::robots::RobotsPolicy;
    use crate::server::{RequestCtx, Router, Service};
    use crate::tor::TorDirectory;
    use foundation::sync::Mutex as PMutex;

    #[test]
    fn follows_redirects() {
        let net = SimNet::new(1);
        net.register(
            "r.com",
            Router::new()
                .route("/start", |_, _| {
                    Response::redirect(&Url::parse("http://r.com/end").unwrap())
                })
                .route("/end", |_, _| Response::ok().with_text("arrived")),
        );
        let c = Client::new(&net, "ua");
        let resp = c.get("http://r.com/start").unwrap();
        assert_eq!(resp.text(), "arrived");
    }

    #[test]
    fn redirect_loop_detected() {
        let net = SimNet::new(1);
        net.register(
            "loop.com",
            Router::new().route("/", |_, _| {
                Response::redirect(&Url::parse("http://loop.com/again").unwrap())
            }),
        );
        let c = Client::new(&net, "ua");
        assert!(matches!(
            c.get("http://loop.com/"),
            Err(NetError::TooManyRedirects(_))
        ));
    }

    #[test]
    fn automated_client_respects_robots() {
        let net = SimNet::new(1);
        net.register(
            "strict.com",
            Router::new()
                .route("/", |_, _| Response::ok())
                .with_robots(RobotsPolicy::parse("User-agent: *\nDisallow: /private/\n")),
        );
        let c = Client::new(&net, "acctrade-crawler/0.1");
        assert!(c.get("http://strict.com/public").is_ok());
        assert!(matches!(
            c.get("http://strict.com/private/x"),
            Err(NetError::RobotsDisallowed(_))
        ));
        // Manual persona may browse anywhere.
        let m = Client::new(&net, "mozilla").manual(9);
        assert!(m.get("http://strict.com/private/x").is_ok());
    }

    #[test]
    fn cookies_roundtrip() {
        let net = SimNet::new(1);
        net.register(
            "cookie.com",
            Router::new()
                .route("/login", |_, _| {
                    Response::ok().with_header("set-cookie", "sid=abc123; Path=/")
                })
                .route("/me", |req: &Request, _: &RequestCtx| {
                    match req.headers.get("cookie") {
                        Some(c) if c.contains("sid=abc123") => Response::ok().with_text("hello"),
                        _ => Response::status(Status::Unauthorized),
                    }
                }),
        );
        let c = Client::new(&net, "ua");
        assert_eq!(c.get("http://cookie.com/me").unwrap().status, Status::Unauthorized);
        c.get("http://cookie.com/login").unwrap();
        assert_eq!(c.get("http://cookie.com/me").unwrap().text(), "hello");
    }

    #[test]
    fn politeness_spaces_requests_in_virtual_time() {
        let net = SimNet::new(2);
        net.register_with(
            "p.com",
            Router::new().route("/", |_, _| Response::ok()),
            crate::latency::LatencyModel::Fixed { us: 10 },
            None,
        );
        let c = Client::new(&net, "ua").with_politeness(1.0, 1.0); // 1 req/s
        let t0 = net.clock().now_us();
        for _ in 0..4 {
            c.get("http://p.com/").unwrap();
        }
        // 3 waits of ~1s each (first request rides the initial burst).
        assert!(net.clock().now_us() - t0 >= 2_900_000);
    }

    /// A gated service: issues a CAPTCHA on first contact, content with a
    /// valid token.
    struct Gated {
        gate: PMutex<CaptchaGate>,
        issued: PMutex<Vec<Challenge>>,
    }

    impl Service for Gated {
        fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
            if let Some(token) = request_token(req) {
                let issued = self.issued.lock();
                let gate = self.gate.lock();
                if issued.iter().any(|ch| gate.verify(ch, token)) {
                    return Response::ok().with_text("forum index");
                }
            }
            let ch = self.gate.lock().issue();
            let resp = Response::status(Status::Unauthorized)
                .with_header(CAPTCHA_KIND_HEADER, captcha_kind_header_value(ch.kind))
                .with_header(CAPTCHA_NONCE_HEADER, ch.nonce.to_string());
            self.issued.lock().push(ch);
            resp
        }
    }

    #[test]
    fn automated_never_solves_captcha_manual_does() {
        let net = SimNet::new(3);
        net.register(
            "gated.onion",
            Gated {
                gate: PMutex::new(CaptchaGate::new(CaptchaKind::DistortedText, 5)),
                issued: PMutex::new(Vec::new()),
            },
        );
        let dir = TorDirectory::default_consensus();
        let mut rng = foundation::rng::ChaCha8Rng::seed_from_u64(4);
        let bot = Client::new(&net, "bot").via_tor(dir.build_circuit(&mut rng));
        let resp = bot.get("http://gated.onion/").unwrap();
        assert_eq!(resp.status, Status::Unauthorized, "bot must not bypass the gate");

        let human = Client::new(&net, "mozilla")
            .manual(6)
            .via_tor(dir.build_circuit(&mut rng));
        let t0 = net.clock().now_us();
        let resp = human.get("http://gated.onion/").unwrap();
        assert_eq!(resp.status, Status::Ok);
        assert_eq!(resp.text(), "forum index");
        // Solving consumed human-scale virtual time.
        assert!(net.clock().now_us() - t0 >= 4_000_000);
    }

    #[test]
    fn onion_unreachable_without_circuit() {
        let net = SimNet::new(3);
        net.register("x.onion", Router::new().route("/", |_, _| Response::ok()));
        let c = Client::new(&net, "ua");
        assert!(matches!(
            c.get("http://x.onion/"),
            Err(NetError::TorRequired(_))
        ));
    }
}
