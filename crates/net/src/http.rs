//! HTTP request/response types and wire framing.
//!
//! The simulated services speak a compact HTTP/1.1 subset. Bodies are
//! [`foundation::bytes::Bytes`] so large listing pages are shared, not copied, between
//! the fabric's request log and the client.

// conformance: reactor-path — no blocking calls; the accept loop/parsers must never stall a lane

use crate::error::{NetError, NetResult};
use crate::url::Url;
use foundation::bytes::{BufMut, Bytes, BytesMut};
use std::fmt;

/// HTTP method subset used by the study (the crawler only reads; forum
/// registration posts forms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// HTTP GET.
    Get,
    /// HTTP POST.
    Post,
    /// HTTP HEAD.
    Head,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        })
    }
}

/// Status codes the simulated services emit. The vocabulary matters: the
/// paper's efficacy analysis (§8) keys on `Forbidden` vs `Not Found`
/// platform responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// 200 OK.
    Ok,
    /// 301 Moved Permanently.
    MovedPermanently,
    /// 302 Found.
    Found,
    /// 400 Bad Request.
    BadRequest,
    /// 401 Unauthorized.
    Unauthorized,
    /// 403 Forbidden.
    Forbidden,
    /// 404 Not Found.
    NotFound,
    /// 410 Gone.
    Gone,
    /// 429 Too Many Requests.
    TooManyRequests,
    /// 500 Internal Server Error.
    InternalError,
    /// 503 Service Unavailable.
    ServiceUnavailable,
}

impl Status {
    /// Numeric status code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::MovedPermanently => 301,
            Status::Found => 302,
            Status::BadRequest => 400,
            Status::Unauthorized => 401,
            Status::Forbidden => 403,
            Status::NotFound => 404,
            Status::Gone => 410,
            Status::TooManyRequests => 429,
            Status::InternalError => 500,
            Status::ServiceUnavailable => 503,
        }
    }

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::MovedPermanently => "Moved Permanently",
            Status::Found => "Found",
            Status::BadRequest => "Bad Request",
            Status::Unauthorized => "Unauthorized",
            Status::Forbidden => "Forbidden",
            Status::NotFound => "Not Found",
            Status::Gone => "Gone",
            Status::TooManyRequests => "Too Many Requests",
            Status::InternalError => "Internal Server Error",
            Status::ServiceUnavailable => "Service Unavailable",
        }
    }

    /// Parse a numeric code back into a `Status`.
    pub fn from_code(code: u16) -> Option<Status> {
        Some(match code {
            200 => Status::Ok,
            301 => Status::MovedPermanently,
            302 => Status::Found,
            400 => Status::BadRequest,
            401 => Status::Unauthorized,
            403 => Status::Forbidden,
            404 => Status::NotFound,
            410 => Status::Gone,
            429 => Status::TooManyRequests,
            500 => Status::InternalError,
            503 => Status::ServiceUnavailable,
            _ => return None,
        })
    }

    /// `true` for 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.code())
    }

    /// `true` for 3xx.
    pub fn is_redirect(self) -> bool {
        (300..400).contains(&self.code())
    }
}

/// An ordered, case-insensitive header map (small-N linear scan; requests in
/// this system carry a handful of headers).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// Empty header map.
    pub fn new() -> Headers {
        Headers::default()
    }

    /// Set a header, replacing any existing value for the (case-insensitive)
    /// name.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        let value = value.into();
        for (n, v) in &mut self.entries {
            if n.eq_ignore_ascii_case(name) {
                *v = value;
                return;
            }
        }
        self.entries.push((name.to_string(), value));
    }

    /// Get a header value by case-insensitive name.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Iterate over `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v.as_str()))
    }

    /// Number of headers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no headers are set.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

foundation::json_codec_enum! {
    Method { Get, Post, Head }
    Status {
        Ok, MovedPermanently, Found, BadRequest, Unauthorized, Forbidden,
        NotFound, Gone, TooManyRequests, InternalError, ServiceUnavailable,
    }
}

/// Headers serialize as a JSON object in insertion order; decoding rejects
/// non-string values.
impl foundation::json::JsonCodec for Headers {
    fn to_json(&self) -> foundation::json::Json {
        foundation::json::Json::Obj(
            self.entries
                .iter()
                .map(|(n, v)| (n.clone(), foundation::json::Json::Str(v.clone())))
                .collect(),
        )
    }

    fn from_json(v: &foundation::json::Json) -> Result<Headers, foundation::json::JsonError> {
        let foundation::json::Json::Obj(fields) = v else {
            return Err(foundation::json::JsonError::decode("expected header object"));
        };
        let mut headers = Headers::new();
        for (name, value) in fields {
            let value = value.as_str().ok_or_else(|| {
                foundation::json::JsonError::decode(format!("header {name:?} must be a string"))
            })?;
            headers.set(name, value);
        }
        Ok(headers)
    }
}

/// An HTTP request as seen by a simulated service.
#[derive(Debug, Clone)]
pub struct Request {
    /// Method.
    pub method: Method,
    /// Url.
    pub url: Url,
    /// Headers.
    pub headers: Headers,
    /// Body.
    pub body: Bytes,
}

impl Request {
    /// Build a GET request for `url`.
    pub fn get(url: Url) -> Request {
        Request {
            method: Method::Get,
            url,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// Build a POST request with a form-encoded body.
    pub fn post_form(url: Url, fields: &[(&str, &str)]) -> Request {
        let body = fields
            .iter()
            .map(|(k, v)| {
                format!(
                    "{}={}",
                    crate::url::encode_component(k),
                    crate::url::encode_component(v)
                )
            })
            .collect::<Vec<_>>()
            .join("&");
        let mut headers = Headers::new();
        headers.set("content-type", "application/x-www-form-urlencoded");
        Request {
            method: Method::Post,
            url,
            headers,
            body: Bytes::from(body),
        }
    }

    /// Set a header, builder-style.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Request {
        self.headers.set(name, value);
        self
    }

    /// Decode a form-encoded body into `(key, value)` pairs.
    pub fn form_pairs(&self) -> Vec<(String, String)> {
        let s = String::from_utf8_lossy(&self.body);
        s.split('&')
            .filter(|p| !p.is_empty())
            .map(|p| match p.split_once('=') {
                Some((k, v)) => (
                    crate::url::decode_component(k),
                    crate::url::decode_component(v),
                ),
                None => (crate::url::decode_component(p), String::new()),
            })
            .collect()
    }

    /// Look up a form field by key.
    pub fn form_field(&self, key: &str) -> Option<String> {
        self.form_pairs().into_iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status.
    pub status: Status,
    /// Headers.
    pub headers: Headers,
    /// Body.
    pub body: Bytes,
}

impl Response {
    /// 200 OK with an empty body.
    pub fn ok() -> Response {
        Response {
            status: Status::Ok,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// Response with the given status and empty body.
    pub fn status(status: Status) -> Response {
        Response {
            status,
            headers: Headers::new(),
            body: Bytes::new(),
        }
    }

    /// 404 with a plain-text explanation; `detail` becomes the body, which
    /// platform APIs use for their characteristic phrasing ("Page Not
    /// Found", "profile does not exist", ...).
    pub fn not_found(detail: &str) -> Response {
        Response::status(Status::NotFound).with_text(detail)
    }

    /// 302 redirect to `location`.
    pub fn redirect(location: &Url) -> Response {
        let mut r = Response::status(Status::Found);
        r.headers.set("location", location.to_string());
        r
    }

    /// Set a plain-text body (content-type `text/plain`), builder-style.
    pub fn with_text(mut self, text: impl Into<String>) -> Response {
        self.headers.set("content-type", "text/plain; charset=utf-8");
        self.body = Bytes::from(text.into());
        self
    }

    /// Set an HTML body (content-type `text/html`), builder-style.
    pub fn with_html(mut self, html: impl Into<String>) -> Response {
        self.headers.set("content-type", "text/html; charset=utf-8");
        self.body = Bytes::from(html.into());
        self
    }

    /// Set a JSON body (content-type `application/json`), builder-style.
    pub fn with_json(mut self, json: impl Into<String>) -> Response {
        self.headers.set("content-type", "application/json");
        self.body = Bytes::from(json.into());
        self
    }

    /// Set a header, builder-style.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Response {
        self.headers.set(name, value);
        self
    }

    /// Body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// `true` when the content-type indicates HTML.
    pub fn is_html(&self) -> bool {
        self.headers
            .get("content-type")
            .map(|ct| ct.starts_with("text/html"))
            .unwrap_or(false)
    }
}

/// Serialize a request to HTTP/1.1 wire bytes: request line, a `host`
/// header derived from the URL (virtual-hosting — the loopback server
/// routes on it), the request's own headers, and an explicit
/// `content-length`. Inverse of the incremental parser in
/// `acctrade-httpd`.
pub fn encode_request(req: &Request) -> Bytes {
    let mut buf = BytesMut::with_capacity(96 + req.body.len());
    buf.put_slice(format!("{} {} HTTP/1.1\r\n", req.method, req.url.target()).as_bytes());
    buf.put_slice(format!("host: {}\r\n", req.url.host()).as_bytes());
    for (n, v) in req.headers.iter() {
        if n.eq_ignore_ascii_case("host") || n.eq_ignore_ascii_case("content-length") {
            continue;
        }
        buf.put_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    buf.put_slice(format!("content-length: {}\r\n\r\n", req.body.len()).as_bytes());
    buf.put_slice(&req.body);
    buf.freeze()
}

/// Serialize a response to HTTP/1.1 wire bytes. Used by the framing tests
/// and the dataset exporter (raw captures).
pub fn encode_response(resp: &Response) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + resp.body.len());
    buf.put_slice(
        format!("HTTP/1.1 {} {}\r\n", resp.status.code(), resp.status.reason()).as_bytes(),
    );
    for (n, v) in resp.headers.iter() {
        buf.put_slice(format!("{n}: {v}\r\n").as_bytes());
    }
    buf.put_slice(format!("content-length: {}\r\n\r\n", resp.body.len()).as_bytes());
    buf.put_slice(&resp.body);
    buf.freeze()
}

/// Parse HTTP/1.1 wire bytes back into a [`Response`]. Inverse of
/// [`encode_response`].
pub fn decode_response(wire: &[u8]) -> NetResult<Response> {
    let err = |m: &str| NetError::Protocol(m.to_string());
    let header_end = wire
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| err("missing header terminator"))?;
    let head = std::str::from_utf8(&wire[..header_end]).map_err(|_| err("non-utf8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or_else(|| err("empty head"))?;
    let mut parts = status_line.splitn(3, ' ');
    let proto = parts.next().unwrap_or("");
    if proto != "HTTP/1.1" {
        return Err(err("bad protocol"));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| err("bad status code"))?;
    let status = Status::from_code(code).ok_or_else(|| err("unknown status code"))?;
    let mut headers = Headers::new();
    let mut content_length = 0usize;
    for line in lines {
        let (n, v) = line.split_once(':').ok_or_else(|| err("bad header line"))?;
        let v = v.trim();
        if n.eq_ignore_ascii_case("content-length") {
            content_length = v.parse().map_err(|_| err("bad content-length"))?;
        } else {
            headers.set(n, v);
        }
    }
    let body_start = header_end + 4;
    if wire.len() < body_start + content_length {
        return Err(err("truncated body"));
    }
    Ok(Response {
        status,
        headers,
        body: Bytes::copy_from_slice(&wire[body_start..body_start + content_length]),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_code_roundtrip() {
        for s in [
            Status::Ok,
            Status::MovedPermanently,
            Status::Found,
            Status::BadRequest,
            Status::Unauthorized,
            Status::Forbidden,
            Status::NotFound,
            Status::Gone,
            Status::TooManyRequests,
            Status::InternalError,
            Status::ServiceUnavailable,
        ] {
            assert_eq!(Status::from_code(s.code()), Some(s));
        }
        assert_eq!(Status::from_code(418), None);
    }

    #[test]
    fn headers_are_case_insensitive_and_replacing() {
        let mut h = Headers::new();
        h.set("Content-Type", "text/html");
        h.set("content-type", "application/json");
        assert_eq!(h.len(), 1);
        assert_eq!(h.get("CONTENT-TYPE"), Some("application/json"));
    }

    #[test]
    fn form_roundtrip() {
        let url = Url::parse("http://forum.onion/register").unwrap();
        let req = Request::post_form(url, &[("user", "alice b"), ("pass", "p&w=1")]);
        let pairs = req.form_pairs();
        assert_eq!(pairs[0], ("user".into(), "alice b".into()));
        assert_eq!(pairs[1], ("pass".into(), "p&w=1".into()));
        assert_eq!(req.form_field("pass").as_deref(), Some("p&w=1"));
    }

    #[test]
    fn wire_roundtrip() {
        let resp = Response::ok()
            .with_html("<html><body>offer</body></html>")
            .with_header("x-market", "accsmarket");
        let wire = encode_response(&resp);
        let back = decode_response(&wire).unwrap();
        assert_eq!(back.status, Status::Ok);
        assert_eq!(back.headers.get("x-market"), Some("accsmarket"));
        assert_eq!(back.text(), resp.text());
        assert!(back.is_html());
    }

    #[test]
    fn decode_rejects_truncation() {
        let resp = Response::ok().with_text("hello world");
        let wire = encode_response(&resp);
        assert!(decode_response(&wire[..wire.len() - 3]).is_err());
        assert!(decode_response(b"garbage").is_err());
    }

    #[test]
    fn request_wire_framing() {
        let url = Url::parse("http://shop.com/offers?page=2").unwrap();
        let req = Request::get(url).with_header("user-agent", "ua/1");
        let wire = encode_request(&req);
        let text = String::from_utf8(wire.to_vec()).unwrap();
        assert!(text.starts_with("GET /offers?page=2 HTTP/1.1\r\n"));
        assert!(text.contains("host: shop.com\r\n"));
        assert!(text.contains("user-agent: ua/1\r\n"));
        assert!(text.ends_with("content-length: 0\r\n\r\n"));
    }

    #[test]
    fn redirect_carries_location() {
        let to = Url::parse("http://a.com/next").unwrap();
        let r = Response::redirect(&to);
        assert!(r.status.is_redirect());
        assert_eq!(r.headers.get("location"), Some("http://a.com/next"));
    }
}
