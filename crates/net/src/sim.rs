//! The network fabric: host registry, routing, latency accounting, fault
//! injection, and a request log.

use crate::clock::SimClock;
use crate::error::{NetError, NetResult};
use crate::http::{Request, Response, Status};
use crate::lane::Lane;
use crate::latency::LatencyModel;
use crate::ratelimit::TokenBucket;
use crate::robots::RobotsPolicy;
use crate::server::{RequestCtx, Service};
use foundation::rng::{splitmix64, RngExt, SeedableRng};
use foundation::rng::ChaCha8Rng;
use foundation::sync::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Fault-injection plan applied to every request on the fabric.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// Probability a request dies with a connection reset.
    pub reset_prob: f64,
    /// Probability a request stalls past the client deadline.
    pub timeout_prob: f64,
    /// Client deadline in virtual microseconds.
    pub deadline_us: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan { reset_prob: 0.0, timeout_prob: 0.0, deadline_us: 30_000_000 }
    }
}

/// One entry in the fabric's request log.
#[derive(Debug, Clone)]
pub struct LogEntry {
    /// At us.
    pub at_us: u64,
    /// Host.
    pub host: String,
    /// Target.
    pub target: String,
    /// Method.
    pub method: crate::http::Method,
    /// Status.
    pub status: Option<Status>,
    /// Via tor.
    pub via_tor: bool,
    /// Latency us.
    pub latency_us: u64,
    /// Response bytes.
    pub response_bytes: usize,
}

struct HostEntry {
    service: Arc<dyn Service>,
    latency: LatencyModel,
    limiter: Option<Mutex<TokenBucket>>,
}

/// The simulated network every component of a study shares.
///
/// `SimNet` owns the virtual clock, the host registry, a seeded RNG for
/// latency/fault sampling, and an append-only request log used by the
/// analyses ("how many requests did the crawl issue", "how long did the
/// underground collection take").
pub struct SimNet {
    seed: u64,
    clock: SimClock,
    hosts: Mutex<HashMap<String, HostEntry>>,
    rng: Mutex<ChaCha8Rng>,
    log: Mutex<Vec<LogEntry>>,
    faults: Mutex<FaultPlan>,
}

impl SimNet {
    /// Create a fabric with its clock at the paper's collection start and
    /// all randomness derived from `seed`.
    pub fn new(seed: u64) -> Arc<SimNet> {
        SimNet::with_clock(seed, SimClock::at_collection_start())
    }

    /// Create a fabric sharing an existing clock.
    ///
    /// Installs the clock as the current telemetry recorder's
    /// [`telemetry::VirtualClock`], so spans and events recorded anywhere
    /// downstream are stamped with the fabric's virtual time.
    pub fn with_clock(seed: u64, clock: SimClock) -> Arc<SimNet> {
        telemetry::with_recorder(|r| r.set_virtual_clock(Arc::new(clock.clone())));
        Arc::new(SimNet {
            seed,
            clock,
            hosts: Mutex::new(HashMap::new()),
            rng: Mutex::new(ChaCha8Rng::seed_from_u64(seed ^ 0x5EED_0000_0000_00F0)),
            log: Mutex::new(Vec::new()),
            faults: Mutex::new(FaultPlan::default()),
        })
    }

    /// Open a deterministic [`Lane`] starting at the current shared
    /// clock. `salt` must be stable across runs (derive it from the
    /// shard's marketplace/chain/iteration, never from scheduling) —
    /// the lane's RNG substream is a pure function of `(seed, salt)`.
    pub fn lane(&self, salt: u64) -> Arc<Lane> {
        self.lane_starting_at(salt, self.clock.now_us())
    }

    /// Open a deterministic [`Lane`] with an explicit virtual start
    /// (chain lanes start where their marketplace's discovery lane
    /// ended, not at the shared clock).
    pub fn lane_starting_at(&self, salt: u64, start_us: u64) -> Arc<Lane> {
        let stream = splitmix64(self.seed ^ 0x5EED_0000_0000_1A4E) ^ splitmix64(salt);
        Arc::new(Lane::new(start_us, ChaCha8Rng::seed_from_u64(stream)))
    }

    /// Fold a finished lane back into the fabric: drain its buffered
    /// request log into the shared log and advance the shared clock to
    /// the lane's cursor (never backwards). Callers absorb lanes in a
    /// fixed shard order after all workers join, so the shared log's
    /// contents are independent of worker scheduling.
    pub fn absorb_lane(&self, lane: &Lane) {
        let entries = lane.drain_log();
        self.log.lock().extend(entries);
        let _ = self.clock.advance_to(lane.now_us());
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The absolute word position of the fabric's latency/fault RNG stream.
    ///
    /// Together with [`SimNet::set_rng_word_position`] this makes the fabric
    /// checkpointable: a resumed fabric seeded identically and seeked to the
    /// recorded position produces the exact same latency samples and fault
    /// draws as the uninterrupted original.
    pub fn rng_word_position(&self) -> u64 {
        self.rng.lock().word_position()
    }

    /// Seek the fabric's RNG to an absolute word position previously read
    /// via [`SimNet::rng_word_position`] (checkpoint restore).
    pub fn set_rng_word_position(&self, words: u64) {
        self.rng.lock().set_word_position(words);
    }

    /// Replace the fault plan.
    pub fn set_faults(&self, plan: FaultPlan) {
        *self.faults.lock() = plan;
    }

    /// Register a service under `host` with a latency profile inferred from
    /// the host kind (onion vs clearnet).
    pub fn register<S: Service + 'static>(&self, host: &str, service: S) {
        let latency = if host.ends_with(".onion") {
            LatencyModel::onion()
        } else {
            LatencyModel::clearnet()
        };
        self.register_with(host, service, latency, None);
    }

    /// Register a service with an explicit latency model and optional
    /// server-side rate limit (requests/sec, burst).
    pub fn register_with<S: Service + 'static>(
        &self,
        host: &str,
        service: S,
        latency: LatencyModel,
        rate_limit: Option<(f64, f64)>,
    ) {
        let limiter = rate_limit
            .map(|(rate, burst)| Mutex::new(TokenBucket::new(rate, burst, self.clock.now_us())));
        self.hosts.lock().insert(
            host.to_ascii_lowercase(),
            HostEntry { service: Arc::new(service), latency, limiter },
        );
    }

    /// Remove a host (marketplace takedowns mid-study).
    pub fn deregister(&self, host: &str) -> bool {
        self.hosts.lock().remove(&host.to_ascii_lowercase()).is_some()
    }

    /// Is `host` registered?
    pub fn knows_host(&self, host: &str) -> bool {
        self.hosts.lock().contains_key(&host.to_ascii_lowercase())
    }

    /// Registered hostnames, sorted.
    pub fn hosts(&self) -> Vec<String> {
        let mut v: Vec<String> = self.hosts.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Snapshot of every registered `(host, service)` pair, sorted by
    /// host. The `Arc`s are shared, not cloned services: a loopback
    /// HTTP server (`acctrade-httpd`) mounting this snapshot serves the
    /// *same* live objects the fabric routes to, so world churn between
    /// crawl iterations is visible on both transports.
    pub fn services(&self) -> Vec<(String, Arc<dyn Service>)> {
        let hosts = self.hosts.lock();
        let mut v: Vec<(String, Arc<dyn Service>)> = hosts
            .iter()
            .map(|(h, e)| (h.clone(), Arc::clone(&e.service)))
            .collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// The robots policy of `host`, if the host exists.
    pub fn robots_for(&self, host: &str) -> Option<RobotsPolicy> {
        self.hosts
            .lock()
            .get(&host.to_ascii_lowercase())
            .map(|e| e.service.robots())
    }

    /// Route one request through the fabric.
    ///
    /// `peer` is the identity the server will see; `via_tor` marks overlay
    /// requests and `extra_latency_us` carries the circuit's overlay cost.
    pub fn dispatch(
        &self,
        req: &Request,
        peer: &str,
        via_tor: bool,
        extra_latency_us: u64,
    ) -> NetResult<Response> {
        self.dispatch_in(req, peer, via_tor, extra_latency_us, None)
    }

    /// [`SimNet::dispatch`], but charging virtual time, RNG draws, and
    /// log entries to `lane` when one is given (the parallel-crawl
    /// path). With `lane: None` the shared clock/RNG/log are used — the
    /// original single-threaded semantics, unchanged.
    pub fn dispatch_in(
        &self,
        req: &Request,
        peer: &str,
        via_tor: bool,
        extra_latency_us: u64,
        lane: Option<&Lane>,
    ) -> NetResult<Response> {
        let host = req.url.host().to_string();
        if req.url.is_onion() && !via_tor {
            return Err(NetError::TorRequired(host));
        }

        // Sample latency and faults first so the RNG stream does not depend
        // on registry state. Lock order: hosts → faults → rng (the lane RNG
        // is a leaf — nothing else is acquired while it is held).
        let (latency_us, reset, timeout, deadline) = {
            let hosts = self.hosts.lock();
            let Some(entry) = hosts.get(&host) else {
                drop(hosts);
                self.push_log_in(req, &host, None, via_tor, 0, lane);
                telemetry::with_recorder(|r| {
                    r.incr("net.faults", &[("kind", "unreachable")], 1);
                });
                return Err(NetError::HostUnreachable(host));
            };
            let faults = *self.faults.lock();
            let draw = |rng: &mut ChaCha8Rng| {
                let lat = entry.latency.sample(rng) + extra_latency_us;
                let reset = faults.reset_prob > 0.0 && rng.random_bool(faults.reset_prob);
                let timeout = faults.timeout_prob > 0.0 && rng.random_bool(faults.timeout_prob);
                (lat, reset, timeout, faults.deadline_us)
            };
            match lane {
                Some(l) => draw(&mut l.rng()),
                None => draw(&mut self.rng.lock()),
            }
        };

        let advance = |delta_us: u64| match lane {
            Some(l) => l.advance(delta_us),
            None => {
                self.clock.advance(delta_us);
            }
        };
        if timeout {
            advance(deadline);
            self.push_log_in(req, &host, None, via_tor, deadline, lane);
            telemetry::with_recorder(|r| {
                r.incr("net.faults", &[("kind", "timeout")], 1);
            });
            return Err(NetError::Timeout { host, after_us: deadline });
        }
        if reset {
            // A reset burns roughly half the would-be latency.
            advance(latency_us / 2);
            self.push_log_in(req, &host, None, via_tor, latency_us / 2, lane);
            telemetry::with_recorder(|r| {
                r.incr("net.faults", &[("kind", "reset")], 1);
            });
            return Err(NetError::ConnectionReset(host));
        }

        advance(latency_us);
        let now_us = match lane {
            Some(l) => l.now_us(),
            None => self.clock.now_us(),
        };

        // Server-side throttling.
        let throttled = {
            let hosts = self.hosts.lock();
            let entry = hosts.get(&host).ok_or_else(|| NetError::HostUnreachable(host.clone()))?;
            match &entry.limiter {
                Some(bucket) => !bucket.lock().try_acquire(now_us),
                None => false,
            }
        };
        if throttled {
            let retry_at = {
                let hosts = self.hosts.lock();
                let entry = hosts.get(&host).expect("host vanished mid-request"); // conformance: allow(panic-policy) — host was inserted under this same lock
                entry
                    .limiter
                    .as_ref()
                    .map(|b| b.lock().next_allowed_at(now_us))
                    .unwrap_or(now_us)
            };
            let resp = Response::status(Status::TooManyRequests)
                .with_header("retry-after-us", (retry_at.saturating_sub(now_us)).to_string());
            self.push_log_in(req, &host, Some(resp.status), via_tor, latency_us, lane);
            telemetry::with_recorder(|r| {
                r.incr("net.throttled", &[("host", &host)], 1);
                let code = resp.status.code().to_string();
                r.incr("net.requests", &[("host", &host), ("status", &code)], 1);
                r.observe("net.latency_us", &[], latency_us);
            });
            return Ok(resp);
        }

        let service = {
            let hosts = self.hosts.lock();
            let entry = hosts.get(&host).ok_or_else(|| NetError::HostUnreachable(host.clone()))?;
            Arc::clone(&entry.service)
        };
        let ctx = RequestCtx { now_us, peer: peer.to_string(), via_tor };
        let resp = service.handle(req, &ctx);
        self.push_log_sized_in(
            req,
            &host,
            Some(resp.status),
            via_tor,
            latency_us,
            resp.body.len(),
            lane,
        );
        telemetry::with_recorder(|r| {
            let code = resp.status.code().to_string();
            r.incr("net.requests", &[("host", &host), ("status", &code)], 1);
            r.observe("net.latency_us", &[], latency_us);
        });
        Ok(resp)
    }

    fn push_log_in(
        &self,
        req: &Request,
        host: &str,
        status: Option<Status>,
        via_tor: bool,
        latency_us: u64,
        lane: Option<&Lane>,
    ) {
        self.push_log_sized_in(req, host, status, via_tor, latency_us, 0, lane);
    }

    #[allow(clippy::too_many_arguments)]
    fn push_log_sized_in(
        &self,
        req: &Request,
        host: &str,
        status: Option<Status>,
        via_tor: bool,
        latency_us: u64,
        response_bytes: usize,
        lane: Option<&Lane>,
    ) {
        let entry = LogEntry {
            at_us: match lane {
                Some(l) => l.now_us(),
                None => self.clock.now_us(),
            },
            host: host.to_string(),
            target: req.url.target(),
            method: req.method,
            status,
            via_tor,
            latency_us,
            response_bytes,
        };
        match lane {
            Some(l) => l.push_log(entry),
            None => self.log.lock().push(entry),
        }
    }

    /// Total response bytes served by `host` — the bandwidth ledger the
    /// collection-cost analysis reads.
    pub fn bytes_served_by(&self, host: &str) -> usize {
        let host = host.to_ascii_lowercase();
        self.log
            .lock()
            .iter()
            .filter(|e| e.host == host)
            .map(|e| e.response_bytes)
            .sum()
    }

    /// Snapshot of the request log.
    pub fn log_snapshot(&self) -> Vec<LogEntry> {
        self.log.lock().clone()
    }

    /// Total requests routed (including failures).
    pub fn request_count(&self) -> usize {
        self.log.lock().len()
    }

    /// Requests routed to one host.
    pub fn request_count_for(&self, host: &str) -> usize {
        let host = host.to_ascii_lowercase();
        self.log.lock().iter().filter(|e| e.host == host).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::Method;
    use crate::server::FixedStatus;
    use crate::url::Url;

    fn req(url: &str) -> Request {
        Request::get(Url::parse(url).unwrap())
    }

    #[test]
    fn routes_to_registered_host() {
        let net = SimNet::new(1);
        net.register("shop.com", FixedStatus(Status::Ok, "hi"));
        let resp = net.dispatch(&req("http://shop.com/x"), "c1", false, 0).unwrap();
        assert_eq!(resp.status, Status::Ok);
    }

    #[test]
    fn unknown_host_unreachable() {
        let net = SimNet::new(1);
        let err = net.dispatch(&req("http://nope.com/"), "c1", false, 0).unwrap_err();
        assert_eq!(err, NetError::HostUnreachable("nope.com".into()));
    }

    #[test]
    fn onion_requires_tor() {
        let net = SimNet::new(1);
        net.register("abc.onion", FixedStatus(Status::Ok, "market"));
        let err = net.dispatch(&req("http://abc.onion/"), "c1", false, 0).unwrap_err();
        assert!(matches!(err, NetError::TorRequired(_)));
        let ok = net.dispatch(&req("http://abc.onion/"), "exit3", true, 150_000).unwrap();
        assert_eq!(ok.status, Status::Ok);
    }

    #[test]
    fn latency_advances_clock() {
        let net = SimNet::new(2);
        net.register_with(
            "fast.com",
            FixedStatus(Status::Ok, ""),
            LatencyModel::Fixed { us: 1234 },
            None,
        );
        let t0 = net.clock().now_us();
        net.dispatch(&req("http://fast.com/"), "c", false, 0).unwrap();
        assert_eq!(net.clock().now_us(), t0 + 1234);
    }

    #[test]
    fn server_rate_limit_yields_429() {
        let net = SimNet::new(3);
        net.register_with(
            "slow.com",
            FixedStatus(Status::Ok, ""),
            LatencyModel::Fixed { us: 1 },
            Some((0.001, 1.0)), // effectively one request total
        );
        let a = net.dispatch(&req("http://slow.com/"), "c", false, 0).unwrap();
        assert_eq!(a.status, Status::Ok);
        let b = net.dispatch(&req("http://slow.com/"), "c", false, 0).unwrap();
        assert_eq!(b.status, Status::TooManyRequests);
        assert!(b.headers.get("retry-after-us").is_some());
    }

    #[test]
    fn faults_reset_and_timeout() {
        let net = SimNet::new(4);
        net.register("flaky.com", FixedStatus(Status::Ok, ""));
        net.set_faults(FaultPlan { reset_prob: 1.0, timeout_prob: 0.0, deadline_us: 100 });
        assert!(matches!(
            net.dispatch(&req("http://flaky.com/"), "c", false, 0),
            Err(NetError::ConnectionReset(_))
        ));
        net.set_faults(FaultPlan { reset_prob: 0.0, timeout_prob: 1.0, deadline_us: 100 });
        assert!(matches!(
            net.dispatch(&req("http://flaky.com/"), "c", false, 0),
            Err(NetError::Timeout { .. })
        ));
    }

    #[test]
    fn log_records_every_attempt() {
        let net = SimNet::new(5);
        net.register("a.com", FixedStatus(Status::Ok, ""));
        net.dispatch(&req("http://a.com/1"), "c", false, 0).unwrap();
        net.dispatch(&req("http://b.com/2"), "c", false, 0).unwrap_err();
        let log = net.log_snapshot();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].host, "a.com");
        assert_eq!(log[0].status, Some(Status::Ok));
        assert_eq!(log[0].method, Method::Get);
        assert_eq!(log[1].status, None);
        assert_eq!(net.request_count_for("a.com"), 1);
    }

    #[test]
    fn log_tracks_response_bytes() {
        let net = SimNet::new(9);
        net.register("big.com", FixedStatus(Status::Ok, "0123456789"));
        net.dispatch(&req("http://big.com/a"), "c", false, 0).unwrap();
        net.dispatch(&req("http://big.com/b"), "c", false, 0).unwrap();
        assert_eq!(net.bytes_served_by("big.com"), 20);
        assert_eq!(net.bytes_served_by("other.com"), 0);
    }

    #[test]
    fn deregister_takes_host_down() {
        let net = SimNet::new(6);
        net.register("gone.com", FixedStatus(Status::Ok, ""));
        assert!(net.knows_host("gone.com"));
        assert!(net.deregister("gone.com"));
        assert!(!net.knows_host("gone.com"));
        assert!(net.dispatch(&req("http://gone.com/"), "c", false, 0).is_err());
    }

    #[test]
    fn same_seed_same_latency_sequence() {
        let run = |seed| {
            let net = SimNet::new(seed);
            net.register("x.com", FixedStatus(Status::Ok, ""));
            for _ in 0..5 {
                net.dispatch(&req("http://x.com/"), "c", false, 0).unwrap();
            }
            net.clock().now_us()
        };
        assert_eq!(run(77), run(77));
        assert_ne!(run(77), run(78));
    }
}
