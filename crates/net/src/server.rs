//! The service abstraction simulated sites implement, plus a path router.

use crate::http::{Request, Response, Status};
use crate::robots::RobotsPolicy;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-request context supplied by the fabric.
#[derive(Debug, Clone)]
pub struct RequestCtx {
    /// Virtual time the request arrives at the server.
    pub now_us: u64,
    /// Requester identity as the server sees it: the client's session id on
    /// the clearnet, the Tor exit nickname for onion requests.
    pub peer: String,
    /// Whether the request arrived over the Tor overlay.
    pub via_tor: bool,
}

impl RequestCtx {
    /// Context for direct (test) invocation of a service.
    pub fn test() -> RequestCtx {
        RequestCtx { now_us: 0, peer: "test".into(), via_tor: false }
    }
}

/// A simulated site: one request in, one response out.
///
/// Services are registered on a [`crate::sim::SimNet`] under a hostname.
/// They should be cheap to call and must be deterministic given the same
/// request, context, and internal state.
pub trait Service: Send + Sync {
    /// Handle one request.
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response;

    /// The site's robots policy; the default permits everything.
    fn robots(&self) -> RobotsPolicy {
        RobotsPolicy::allow_all()
    }
}

/// Boxed handler stored by the router.
type Handler = Box<dyn Fn(&Request, &RequestCtx) -> Response + Send + Sync>;

/// A longest-prefix path router.
///
/// Routes are matched against the request path; the longest registered
/// prefix wins, so `/offer/` beats `/`. A missing match falls through to a
/// 404 (customizable via [`Router::fallback`]).
pub struct Router {
    routes: BTreeMap<String, Handler>,
    fallback: Handler,
    robots: RobotsPolicy,
}

impl Router {
    /// An empty router whose fallback is a plain 404.
    pub fn new() -> Router {
        Router {
            routes: BTreeMap::new(),
            fallback: Box::new(|req, _| {
                Response::not_found(&format!("no route for {}", req.url.path()))
            }),
            robots: RobotsPolicy::allow_all(),
        }
    }

    /// Register a handler for a path prefix.
    pub fn route<F>(mut self, prefix: &str, handler: F) -> Router
    where
        F: Fn(&Request, &RequestCtx) -> Response + Send + Sync + 'static,
    {
        self.routes.insert(prefix.to_string(), Box::new(handler));
        self
    }

    /// Replace the 404 fallback.
    pub fn fallback<F>(mut self, handler: F) -> Router
    where
        F: Fn(&Request, &RequestCtx) -> Response + Send + Sync + 'static,
    {
        self.fallback = Box::new(handler);
        self
    }

    /// Attach a robots policy, served at `/robots.txt` and reported through
    /// [`Service::robots`].
    pub fn with_robots(mut self, robots: RobotsPolicy) -> Router {
        self.robots = robots;
        self
    }

    fn dispatch(&self, req: &Request, ctx: &RequestCtx) -> Response {
        if req.url.path() == "/robots.txt" {
            return Response::ok().with_text(self.robots.render());
        }
        let path = req.url.path();
        let best = self
            .routes
            .iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len());
        match best {
            Some((_, h)) => h(req, ctx),
            None => (self.fallback)(req, ctx),
        }
    }
}

impl Default for Router {
    fn default() -> Self {
        Router::new()
    }
}

impl Service for Router {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        self.dispatch(req, ctx)
    }

    fn robots(&self) -> RobotsPolicy {
        self.robots.clone()
    }
}

impl<S: Service + ?Sized> Service for Arc<S> {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        (**self).handle(req, ctx)
    }

    fn robots(&self) -> RobotsPolicy {
        (**self).robots()
    }
}

/// A service answering every request with a fixed status — handy for tests
/// and for modeling taken-down marketplaces (Table 9's inaccessible
/// channels).
pub struct FixedStatus(pub Status, pub &'static str);

impl Service for FixedStatus {
    fn handle(&self, _req: &Request, _ctx: &RequestCtx) -> Response {
        Response::status(self.0).with_text(self.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::url::Url;

    fn get(path: &str) -> Request {
        Request::get(Url::http("t.com", path))
    }

    #[test]
    fn longest_prefix_wins() {
        let r = Router::new()
            .route("/", |_, _| Response::ok().with_text("root"))
            .route("/offer/", |_, _| Response::ok().with_text("offer"));
        assert_eq!(r.handle(&get("/offer/12"), &RequestCtx::test()).text(), "offer");
        assert_eq!(r.handle(&get("/listings"), &RequestCtx::test()).text(), "root");
    }

    #[test]
    fn fallback_404_when_no_match() {
        let r = Router::new().route("/a", |_, _| Response::ok());
        let resp = r.handle(&get("/b"), &RequestCtx::test());
        assert_eq!(resp.status, Status::NotFound);
    }

    #[test]
    fn custom_fallback() {
        let r = Router::new().fallback(|_, _| Response::status(Status::Gone).with_text("dead"));
        assert_eq!(r.handle(&get("/x"), &RequestCtx::test()).status, Status::Gone);
    }

    #[test]
    fn robots_served_and_reported() {
        let policy = RobotsPolicy::parse("User-agent: *\nDisallow: /private/\n");
        let r = Router::new().with_robots(policy.clone());
        let resp = r.handle(&get("/robots.txt"), &RequestCtx::test());
        assert!(resp.text().contains("Disallow: /private/"));
        assert!(!r.robots().is_allowed("bot", "/private/x"));
    }

    #[test]
    fn fixed_status_service() {
        let s = FixedStatus(Status::ServiceUnavailable, "taken down");
        let resp = s.handle(&get("/any"), &RequestCtx::test());
        assert_eq!(resp.status, Status::ServiceUnavailable);
        assert_eq!(resp.text(), "taken down");
    }

    #[test]
    fn handler_sees_context() {
        let r = Router::new().route("/", |_, ctx: &RequestCtx| {
            Response::ok().with_text(format!("peer={} tor={}", ctx.peer, ctx.via_tor))
        });
        let ctx = RequestCtx { now_us: 5, peer: "exit7".into(), via_tor: true };
        assert_eq!(r.handle(&get("/"), &ctx).text(), "peer=exit7 tor=true");
    }
}
