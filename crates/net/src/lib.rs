#![warn(missing_docs)]

//! # acctrade-net
//!
//! A deterministic, in-process network substrate for the `acctrade` workspace.
//!
//! The reproduced paper measured live web services: public marketplaces,
//! underground Tor forums, and the HTTP APIs of five social media platforms.
//! This crate provides the stand-in fabric those simulated services run on:
//!
//! * [`clock`] — a shared virtual clock; the whole study is a discrete-event
//!   simulation, so time is explicit and deterministic.
//! * [`url`] — a small, strict URL type (scheme/host/path/query) with `.onion`
//!   host awareness.
//! * [`http`] — request/response types, methods, status codes, headers, and
//!   wire framing on top of [`foundation::bytes::Bytes`].
//! * [`latency`] — seeded latency models (fixed, uniform, long-tailed) used by
//!   the fabric to charge virtual time per request.
//! * [`ratelimit`] — token-bucket rate limiting, used both by servers
//!   (throttling clients) and by the polite crawler (self-throttling).
//! * [`robots`] — a `robots.txt` subset (user-agent groups, allow/disallow,
//!   crawl-delay) honoured by the crawler.
//! * [`captcha`] — CAPTCHA challenge gates; automated clients never solve
//!   them (the paper's ethics constraint), manual sessions can.
//! * [`tor`] — an onion overlay: `.onion` hosts are only reachable through a
//!   [`tor::TorCircuit`], which adds multi-hop latency and strips client
//!   identity.
//! * [`server`] — the [`server::Service`] trait and a path-prefix
//!   [`server::Router`] for building simulated sites.
//! * [`client`] — a session-capable HTTP client (cookies, user-agent,
//!   redirects, politeness) that talks to the fabric.
//! * [`sim`] — [`sim::SimNet`], the fabric itself: host registry, per-host
//!   latency and rate limits, fault injection, request log.
//! * [`lane`] — deterministic per-shard execution lanes: a private RNG
//!   substream, virtual-time cursor, and buffered request log that let the
//!   parallel crawl engine run shards on worker threads without scheduling
//!   order ever leaking into the simulation.
//!
//! Everything is synchronous by design: the workload is CPU-bound
//! simulation, for which the async-runtime guides explicitly recommend
//! *not* reaching for an async runtime. Determinism comes from a single
//! seed threaded through `foundation::rng`; parallel crawls keep it by
//! confining each shard to its own [`lane::Lane`].
//!
//! ## Example
//!
//! ```
//! use acctrade_net::prelude::*;
//!
//! // A trivial service.
//! struct Hello;
//! impl Service for Hello {
//!     fn handle(&self, req: &Request, _ctx: &RequestCtx) -> Response {
//!         Response::ok().with_text(format!("hello from {}", req.url.path()))
//!     }
//! }
//!
//! let net = SimNet::new(7);
//! net.register("example.com", Hello);
//! let client = Client::new(&net, "acctrade-crawler/0.1");
//! let resp = client.get("http://example.com/index").unwrap();
//! assert_eq!(resp.status, Status::Ok);
//! assert!(resp.text().contains("hello"));
//! ```

pub mod captcha;
pub mod clock;
pub mod client;
pub mod error;
pub mod http;
pub mod lane;
pub mod latency;
pub mod ratelimit;
pub mod robots;
pub mod server;
pub mod sim;
pub mod tor;
pub mod transport;
pub mod url;

/// Convenience re-exports of the types almost every consumer needs.
pub mod prelude {
    pub use crate::client::Client;
    pub use crate::clock::SimClock;
    pub use crate::error::{NetError, NetResult};
    pub use crate::http::{Method, Request, Response, Status};
    pub use crate::server::{RequestCtx, Router, Service};
    pub use crate::sim::SimNet;
    pub use crate::url::Url;
}

pub use client::Client;
pub use clock::SimClock;
pub use error::{NetError, NetResult};
pub use http::{Method, Request, Response, Status};
pub use server::{RequestCtx, Router, Service};
pub use sim::SimNet;
pub use transport::{SimTransport, Transport};
pub use url::Url;
