//! Error types for the network substrate.

use std::fmt;

/// Result alias used throughout the crate.
pub type NetResult<T> = Result<T, NetError>;

/// Errors a simulated network operation can produce.
///
/// These mirror the failure modes a real measurement crawler meets in the
/// wild: DNS-style resolution failures, timeouts, connection resets,
/// protocol errors, and policy refusals (robots, Tor-only hosts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The host is not registered on the fabric (NXDOMAIN equivalent).
    HostUnreachable(String),
    /// The request exceeded its deadline (virtual-time timeout).
    /// Timeout.
    Timeout {
        /// Host the request was talking to.
        host: String,
        /// Virtual microseconds elapsed before giving up.
        after_us: u64,
    },
    /// The connection was reset mid-flight by fault injection.
    ConnectionReset(String),
    /// The URL could not be parsed.
    BadUrl(String),
    /// A `.onion` host was contacted without a Tor circuit.
    TorRequired(String),
    /// A non-onion host was contacted through a Tor-only client configured
    /// to refuse clearnet leaks.
    ClearnetRefused(String),
    /// The client refused to fetch the URL because robots.txt disallows it.
    RobotsDisallowed(String),
    /// The server rate-limited the client (HTTP 429 surfaced as an error by
    /// clients configured to treat throttling as fatal).
    /// Rate limited.
    RateLimited {
        /// Host that throttled the client.
        host: String,
        /// Virtual microseconds until a retry may succeed.
        retry_after_us: u64,
    },
    /// Too many redirects were followed.
    TooManyRedirects(String),
    /// A response could not be decoded (bad framing, invalid UTF-8 body when
    /// text was required, ...).
    Protocol(String),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::HostUnreachable(h) => write!(f, "host unreachable: {h}"),
            NetError::Timeout { host, after_us } => {
                write!(f, "timeout talking to {host} after {after_us}us")
            }
            NetError::ConnectionReset(h) => write!(f, "connection reset by {h}"),
            NetError::BadUrl(u) => write!(f, "bad url: {u}"),
            NetError::TorRequired(h) => write!(f, "{h} is an onion service; a Tor circuit is required"),
            NetError::ClearnetRefused(h) => {
                write!(f, "client is Tor-only; refusing clearnet host {h}")
            }
            NetError::RobotsDisallowed(u) => write!(f, "robots.txt disallows {u}"),
            NetError::RateLimited { host, retry_after_us } => {
                write!(f, "rate limited by {host}; retry after {retry_after_us}us")
            }
            NetError::TooManyRedirects(u) => write!(f, "too many redirects from {u}"),
            NetError::Protocol(m) => write!(f, "protocol error: {m}"),
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = NetError::Timeout { host: "x.com".into(), after_us: 5000 };
        let s = e.to_string();
        assert!(s.contains("x.com"));
        assert!(s.contains("5000"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            NetError::HostUnreachable("a".into()),
            NetError::HostUnreachable("a".into())
        );
        assert_ne!(
            NetError::HostUnreachable("a".into()),
            NetError::ConnectionReset("a".into())
        );
    }
}
