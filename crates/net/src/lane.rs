//! Deterministic per-shard execution lanes for parallel crawling.
//!
//! The fabric ([`crate::sim::SimNet`]) is a discrete-event simulation:
//! every request draws latency from one shared RNG stream and advances
//! one shared clock, so the *arrival order* of requests decides what
//! each request observes. That is fine single-threaded — arrival order
//! is program order — but fatal for parallelism: two worker threads
//! racing through the same RNG/clock would make the artifacts depend on
//! the OS scheduler.
//!
//! A [`Lane`] fixes this by giving one crawl shard its own private
//! slice of the simulation:
//!
//! * an **RNG substream** seeded from the fabric seed and the shard's
//!   stable salt — so the latency/fault draws a shard sees depend only
//!   on (seed, shard, request index), never on what other shards do;
//! * a **virtual-time cursor** starting at the shard's fixed start time
//!   — politeness waits, robots crawl-delays, and latency charges all
//!   advance the lane cursor, not the shared clock;
//! * a **buffered request log** — entries are stamped with lane time
//!   and folded into the shared fabric log in a fixed shard order after
//!   all workers join ([`crate::sim::SimNet::absorb_lane`]).
//!
//! The result: a shard's entire observable behaviour is a pure function
//! of its inputs, independent of which worker runs it and when — which
//! is exactly the property the deterministic merge stage needs to make
//! `workers=8` byte-identical to `workers=1`.

use crate::sim::LogEntry;
use foundation::rng::ChaCha8Rng;
use foundation::sync::Mutex;

/// One shard's private clock, RNG substream, and log buffer. Created by
/// [`crate::sim::SimNet::lane`]; handed to a [`crate::client::Client`]
/// via [`crate::client::Client::fork_for_shard`].
pub struct Lane {
    /// The lane's fixed virtual start (µs since epoch).
    start_us: u64,
    /// The lane's virtual-time cursor (µs since epoch, ≥ `start_us`).
    cursor: Mutex<u64>,
    /// The lane's private latency/fault RNG substream.
    rng: Mutex<ChaCha8Rng>,
    /// Request-log entries buffered until the fabric absorbs the lane.
    log: Mutex<Vec<LogEntry>>,
}

impl Lane {
    /// Build a lane starting at `start_us` with its own RNG substream.
    pub(crate) fn new(start_us: u64, rng: ChaCha8Rng) -> Lane {
        Lane {
            start_us,
            cursor: Mutex::new(start_us),
            rng: Mutex::new(rng),
            log: Mutex::new(Vec::new()),
        }
    }

    /// The lane's fixed virtual start (µs since epoch).
    pub fn start_us(&self) -> u64 {
        self.start_us
    }

    /// Current lane time in µs since the epoch.
    pub fn now_us(&self) -> u64 {
        *self.cursor.lock()
    }

    /// Current lane time in unix seconds.
    pub fn now_unix(&self) -> i64 {
        (self.now_us() / 1_000_000) as i64
    }

    /// Advance the lane cursor by `delta_us`.
    pub fn advance(&self, delta_us: u64) {
        let mut cursor = self.cursor.lock();
        *cursor += delta_us;
    }

    /// Advance the lane cursor to `target_us` (never backwards).
    pub fn advance_to(&self, target_us: u64) {
        let mut cursor = self.cursor.lock();
        if target_us > *cursor {
            *cursor = target_us;
        }
    }

    /// Words consumed from the lane's RNG substream (shard-cursor
    /// provenance recorded into campaign checkpoints).
    pub fn rng_word_position(&self) -> u64 {
        self.rng.lock().word_position()
    }

    /// Buffered log entries so far.
    pub fn log_len(&self) -> usize {
        self.log.lock().len()
    }

    /// Lock the lane RNG for a latency/fault draw (fabric-internal; the
    /// lane RNG is a leaf lock — nothing is acquired while holding it).
    pub(crate) fn rng(&self) -> foundation::sync::MutexGuard<'_, ChaCha8Rng> {
        self.rng.lock()
    }

    /// Buffer one request-log entry (fabric-internal).
    pub(crate) fn push_log(&self, entry: LogEntry) {
        self.log.lock().push(entry);
    }

    /// Drain the buffered log (fabric-internal; called by
    /// [`crate::sim::SimNet::absorb_lane`]).
    pub(crate) fn drain_log(&self) -> Vec<LogEntry> {
        std::mem::take(&mut *self.log.lock())
    }
}

impl telemetry::VirtualClock for Lane {
    fn now_us(&self) -> u64 {
        Lane::now_us(self)
    }
}

impl std::fmt::Debug for Lane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lane")
            .field("start_us", &self.start_us)
            .field("now_us", &self.now_us())
            .field("buffered_log", &self.log_len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use foundation::rng::{RngExt, SeedableRng};

    #[test]
    fn lane_clock_is_private_and_monotone() {
        let lane = Lane::new(1_000, ChaCha8Rng::seed_from_u64(1));
        assert_eq!(lane.start_us(), 1_000);
        assert_eq!(lane.now_us(), 1_000);
        lane.advance(500);
        assert_eq!(lane.now_us(), 1_500);
        lane.advance_to(1_200); // backwards: ignored
        assert_eq!(lane.now_us(), 1_500);
        lane.advance_to(2_000);
        assert_eq!(lane.now_us(), 2_000);
        assert_eq!(lane.now_unix(), 0, "µs cursor under one second");
    }

    #[test]
    fn lane_rng_is_an_independent_substream() {
        let a = Lane::new(0, ChaCha8Rng::seed_from_u64(7));
        let b = Lane::new(0, ChaCha8Rng::seed_from_u64(7));
        let xa: u64 = a.rng().random_range(0..1_000_000);
        let xb: u64 = b.rng().random_range(0..1_000_000);
        assert_eq!(xa, xb, "same substream seed, same draws");
        assert_eq!(a.rng_word_position(), b.rng_word_position());
    }
}
