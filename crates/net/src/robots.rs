//! A `robots.txt` subset: user-agent groups, `Allow`/`Disallow` prefix
//! rules, and `Crawl-delay`.
//!
//! The paper's crawler was "entirely passive and limited to publicly
//! available data"; our crawler enforces the same constraint mechanically by
//! checking every URL against the host's robots policy before fetching.


// conformance: reactor-path — no blocking calls; the accept loop/parsers must never stall a lane

/// One rule inside a user-agent group.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Rule {
    Allow(String),
    Disallow(String),
}

/// A group of rules applying to one `User-agent` pattern.
#[derive(Debug, Clone, PartialEq)]
struct Group {
    agent: String,
    rules: Vec<Rule>,
    crawl_delay_s: Option<f64>,
}

/// A parsed robots.txt policy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RobotsPolicy {
    groups: Vec<Group>,
}

impl RobotsPolicy {
    /// The permissive default used by hosts that serve no robots.txt.
    pub fn allow_all() -> RobotsPolicy {
        RobotsPolicy::default()
    }

    /// A policy that disallows everything for every agent.
    pub fn deny_all() -> RobotsPolicy {
        RobotsPolicy::parse("User-agent: *\nDisallow: /\n")
    }

    /// Parse robots.txt text. Unknown directives and comments are skipped;
    /// parsing never fails (malformed lines are ignored, as real crawlers
    /// do).
    pub fn parse(text: &str) -> RobotsPolicy {
        let mut groups: Vec<Group> = Vec::new();
        // Consecutive `User-agent` lines share the rule block that follows.
        let mut pending_agents: Vec<String> = Vec::new();
        let mut open: Vec<usize> = Vec::new(); // indices of groups receiving rules

        for raw in text.lines() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once(':') else {
                continue;
            };
            let key = key.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            match key.as_str() {
                "user-agent" => {
                    pending_agents.push(value.to_ascii_lowercase());
                }
                "allow" | "disallow" | "crawl-delay" => {
                    if !pending_agents.is_empty() {
                        open.clear();
                        for agent in pending_agents.drain(..) {
                            groups.push(Group {
                                agent,
                                rules: Vec::new(),
                                crawl_delay_s: None,
                            });
                            open.push(groups.len() - 1);
                        }
                    }
                    if open.is_empty() {
                        continue; // rules before any user-agent line: ignored
                    }
                    for &gi in &open {
                        match key.as_str() {
                            "allow" if !value.is_empty() => {
                                groups[gi].rules.push(Rule::Allow(value.clone()));
                            }
                            "disallow" => {
                                if value.is_empty() {
                                    // "Disallow:" (empty) means allow all.
                                } else {
                                    groups[gi].rules.push(Rule::Disallow(value.clone()));
                                }
                            }
                            "crawl-delay" => {
                                groups[gi].crawl_delay_s = value.parse().ok();
                            }
                            _ => {}
                        }
                    }
                }
                _ => {}
            }
        }
        RobotsPolicy { groups }
    }

    /// Find the most specific group matching `agent` (longest agent-token
    /// match, with `*` as fallback).
    fn group_for(&self, agent: &str) -> Option<&Group> {
        let agent = agent.to_ascii_lowercase();
        let mut best: Option<&Group> = None;
        let mut best_len = 0usize;
        for g in &self.groups {
            if g.agent == "*" {
                if best.is_none() {
                    best = Some(g);
                }
            } else if agent.contains(&g.agent) && g.agent.len() >= best_len {
                best_len = g.agent.len();
                best = Some(g);
            }
        }
        best
    }

    /// Is `path` fetchable by `agent`? Longest-prefix-match wins; ties go to
    /// `Allow` (Google semantics).
    pub fn is_allowed(&self, agent: &str, path: &str) -> bool {
        let Some(group) = self.group_for(agent) else {
            return true;
        };
        let mut verdict = true;
        let mut match_len = 0usize;
        for rule in &group.rules {
            let (pat, allow) = match rule {
                Rule::Allow(p) => (p, true),
                Rule::Disallow(p) => (p, false),
            };
            if path.starts_with(pat.as_str()) {
                let better = pat.len() > match_len || (pat.len() == match_len && allow);
                if better {
                    match_len = pat.len();
                    verdict = allow;
                }
            }
        }
        verdict
    }

    /// Crawl delay for `agent` in virtual microseconds, if specified.
    pub fn crawl_delay_us(&self, agent: &str) -> Option<u64> {
        self.group_for(agent)
            .and_then(|g| g.crawl_delay_s)
            .map(|s| (s * 1_000_000.0) as u64)
    }

    /// Render the policy back to robots.txt text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for g in &self.groups {
            out.push_str(&format!("User-agent: {}\n", g.agent));
            for r in &g.rules {
                match r {
                    Rule::Allow(p) => out.push_str(&format!("Allow: {p}\n")),
                    Rule::Disallow(p) => out.push_str(&format!("Disallow: {p}\n")),
                }
            }
            if let Some(d) = g.crawl_delay_s {
                out.push_str(&format!("Crawl-delay: {d}\n"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# marketplace robots
User-agent: *
Disallow: /admin/
Disallow: /checkout
Allow: /admin/public
Crawl-delay: 2

User-agent: acctrade-crawler
Disallow: /private/
";

    #[test]
    fn wildcard_group_applies() {
        let p = RobotsPolicy::parse(SAMPLE);
        assert!(!p.is_allowed("GenericBot/1.0", "/admin/panel"));
        assert!(p.is_allowed("GenericBot/1.0", "/listings/ig"));
        assert!(p.is_allowed("GenericBot/1.0", "/admin/public/page"));
    }

    #[test]
    fn specific_group_overrides_wildcard() {
        let p = RobotsPolicy::parse(SAMPLE);
        // The named group has its own (different) rules.
        assert!(!p.is_allowed("acctrade-crawler/0.1", "/private/x"));
        assert!(p.is_allowed("acctrade-crawler/0.1", "/admin/panel"));
    }

    #[test]
    fn crawl_delay_parsed() {
        let p = RobotsPolicy::parse(SAMPLE);
        assert_eq!(p.crawl_delay_us("GenericBot"), Some(2_000_000));
        assert_eq!(p.crawl_delay_us("acctrade-crawler"), None);
    }

    #[test]
    fn empty_policy_allows_everything() {
        let p = RobotsPolicy::allow_all();
        assert!(p.is_allowed("anything", "/anywhere"));
    }

    #[test]
    fn deny_all_blocks_root() {
        let p = RobotsPolicy::deny_all();
        assert!(!p.is_allowed("bot", "/"));
        assert!(!p.is_allowed("bot", "/x/y"));
    }

    #[test]
    fn longest_match_wins() {
        let p = RobotsPolicy::parse("User-agent: *\nDisallow: /a/\nAllow: /a/b/\n");
        assert!(!p.is_allowed("bot", "/a/x"));
        assert!(p.is_allowed("bot", "/a/b/x"));
    }

    #[test]
    fn render_parse_roundtrip() {
        let p = RobotsPolicy::parse(SAMPLE);
        let q = RobotsPolicy::parse(&p.render());
        assert_eq!(p, q);
    }

    #[test]
    fn malformed_lines_are_ignored() {
        let p = RobotsPolicy::parse("garbage\nUser-agent *\nDisallow: /x\n");
        // "User-agent *" lacks a colon, so the Disallow has no group and is
        // dropped; everything is allowed.
        assert!(p.is_allowed("bot", "/x"));
    }
}
