//! Property tests on the network substrate's invariants.

use acctrade_net::captcha::{splitmix64, CaptchaGate, CaptchaKind};
use acctrade_net::clock::{format_date, unix_from_ymd, ymd};
use acctrade_net::http::{decode_response, encode_response, Response, Status};
use acctrade_net::robots::RobotsPolicy;
use acctrade_net::url::{decode_component, encode_component};
use proptest::prelude::*;

proptest! {
    /// Civil-date conversion round-trips for every day in the study's
    /// century.
    #[test]
    fn ymd_roundtrip(days in 0i64..36_525) {
        let ts = days * 86_400;
        let (y, m, d) = ymd(ts);
        prop_assert_eq!(unix_from_ymd(y, m, d), ts);
        // And the formatter agrees with the decomposition.
        let s = format_date(ts);
        prop_assert_eq!(s, format!("{y:04}-{m:02}-{d:02}"));
    }

    /// Percent-encoding round-trips arbitrary ASCII.
    #[test]
    fn component_encoding_roundtrip(s in "[ -~]{0,60}") {
        prop_assert_eq!(decode_component(&encode_component(&s)), s);
    }

    /// HTTP wire framing round-trips any body bytes.
    #[test]
    fn wire_roundtrip(body in proptest::collection::vec(any::<u8>(), 0..500)) {
        let resp = Response {
            status: Status::Ok,
            headers: Default::default(),
            body: bytes::Bytes::from(body.clone()),
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        prop_assert_eq!(back.body.as_ref(), body.as_slice());
        prop_assert_eq!(back.status, Status::Ok);
    }

    /// robots.txt parsing is total and render/parse idempotent.
    #[test]
    fn robots_total_and_stable(text in "\\PC{0,300}") {
        let p = RobotsPolicy::parse(&text);
        let q = RobotsPolicy::parse(&p.render());
        prop_assert_eq!(p, q);
    }

    /// splitmix64 is injective over small ranges (collision-free nonces).
    #[test]
    fn splitmix_injective(a in any::<u64>(), b in any::<u64>()) {
        if a != b {
            prop_assert_ne!(splitmix64(a), splitmix64(b));
        }
    }

    /// A gate never verifies a token for a different challenge.
    #[test]
    fn captcha_tokens_bound_to_challenge(secret in any::<u64>(), wrong in any::<u64>()) {
        let mut gate = CaptchaGate::new(CaptchaKind::DistortedText, secret);
        let ch = gate.issue();
        // The only accepted token is the deterministic function of the
        // nonce; a random token is (overwhelmingly) rejected.
        prop_assert!(!gate.verify(&ch, wrong) || wrong == splitmix64(ch.nonce ^ 0xC0FF_EE00_D15E_A5ED));
    }
}
