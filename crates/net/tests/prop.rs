//! Property tests on the network substrate's invariants.

use acctrade_net::captcha::{splitmix64, CaptchaGate, CaptchaKind};
use acctrade_net::clock::{format_date, unix_from_ymd, ymd};
use acctrade_net::http::{decode_response, encode_response, Response, Status};
use acctrade_net::robots::RobotsPolicy;
use acctrade_net::url::{decode_component, encode_component};
use foundation::check::{self, any_byte, any_u64, pattern};
use foundation::prop_check;

prop_check! {
    /// Civil-date conversion round-trips for every day in the study's
    /// century.
    fn ymd_roundtrip(days in 0i64..36_525) {
        let ts = days * 86_400;
        let (y, m, d) = ymd(ts);
        assert_eq!(unix_from_ymd(y, m, d), ts);
        // And the formatter agrees with the decomposition.
        let s = format_date(ts);
        assert_eq!(s, format!("{y:04}-{m:02}-{d:02}"));
    }

    /// Percent-encoding round-trips arbitrary ASCII.
    fn component_encoding_roundtrip(s in pattern("[ -~]{0,60}")) {
        assert_eq!(decode_component(&encode_component(&s)), s.as_str());
    }

    /// HTTP wire framing round-trips any body bytes.
    fn wire_roundtrip(body in check::vec(any_byte(), 0..500)) {
        let resp = Response {
            status: Status::Ok,
            headers: Default::default(),
            body: foundation::bytes::Bytes::from(body.clone()),
        };
        let back = decode_response(&encode_response(&resp)).unwrap();
        assert_eq!(back.body.as_ref(), body.as_slice());
        assert_eq!(back.status, Status::Ok);
    }

    /// robots.txt parsing is total and render/parse idempotent.
    fn robots_total_and_stable(text in pattern("\\PC{0,300}")) {
        let p = RobotsPolicy::parse(&text);
        let q = RobotsPolicy::parse(&p.render());
        assert_eq!(p, q);
    }

    /// splitmix64 is injective over small ranges (collision-free nonces).
    fn splitmix_injective(a in any_u64(), b in any_u64()) {
        if a != b {
            assert_ne!(splitmix64(a), splitmix64(b));
        }
    }

    /// A gate never verifies a token for a different challenge.
    fn captcha_tokens_bound_to_challenge(secret in any_u64(), wrong in any_u64()) {
        let mut gate = CaptchaGate::new(CaptchaKind::DistortedText, secret);
        let ch = gate.issue();
        // The only accepted token is the deterministic function of the
        // nonce; a random token is (overwhelmingly) rejected.
        assert!(!gate.verify(&ch, wrong) || wrong == splitmix64(ch.nonce ^ 0xC0FF_EE00_D15E_A5ED));
    }
}
