//! The fabric is shared state (`Arc<SimNet>` + interior mutability); the
//! analyses assume its request log and clock stay consistent under
//! concurrent clients. These tests drive it from crossbeam scoped threads.

use acctrade_net::latency::LatencyModel;
use acctrade_net::prelude::*;

struct Echo;

impl Service for Echo {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        Response::ok().with_text(format!("{} from {}", req.url.path(), ctx.peer))
    }
}

#[test]
fn parallel_clients_share_one_fabric() {
    let net = SimNet::new(99);
    net.register_with("echo.com", Echo, LatencyModel::Fixed { us: 10 }, None);

    const THREADS: usize = 8;
    const REQUESTS: usize = 50;
    crossbeam::scope(|scope| {
        for t in 0..THREADS {
            let net = std::sync::Arc::clone(&net);
            scope.spawn(move |_| {
                let client = Client::new(&net, &format!("client-{t}"));
                for i in 0..REQUESTS {
                    let resp = client.get(&format!("http://echo.com/{t}/{i}")).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                }
            });
        }
    })
    .expect("no thread panicked");

    // Every request was logged exactly once, and the clock advanced by
    // exactly the total fixed latency.
    assert_eq!(net.request_count(), THREADS * REQUESTS);
    let expected_us = (THREADS * REQUESTS) as u64 * 10;
    let elapsed = net.clock().now_us()
        - acctrade_net::clock::COLLECTION_START_UNIX as u64 * 1_000_000;
    assert_eq!(elapsed, expected_us);
}

#[test]
fn server_rate_limit_is_consistent_under_contention() {
    let net = SimNet::new(7);
    // A bucket that only ever grants its initial burst (refill is
    // negligible at fixed 0 latency).
    net.register_with(
        "limited.com",
        Echo,
        LatencyModel::Fixed { us: 0 },
        Some((0.000_001, 10.0)),
    );
    let ok_count = std::sync::atomic::AtomicUsize::new(0);
    crossbeam::scope(|scope| {
        for t in 0..4 {
            let net = std::sync::Arc::clone(&net);
            let ok_count = &ok_count;
            scope.spawn(move |_| {
                let client = Client::new(&net, &format!("c{t}"));
                for i in 0..20 {
                    let resp = client.get(&format!("http://limited.com/{t}/{i}")).unwrap();
                    if resp.status == Status::Ok {
                        ok_count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    } else {
                        assert_eq!(resp.status, Status::TooManyRequests);
                    }
                }
            });
        }
    })
    .expect("no thread panicked");
    // The burst is 10 tokens: exactly 10 requests succeed, however the
    // threads interleave.
    assert_eq!(ok_count.into_inner(), 10);
}
