//! The fabric is shared state (`Arc<SimNet>` + interior mutability); the
//! analyses assume its request log and clock stay consistent under
//! concurrent clients. These tests drive it from `std::thread::scope`
//! scoped threads (re-exported through `foundation::sync`).

use acctrade_net::latency::LatencyModel;
use acctrade_net::prelude::*;
use acctrade_net::ratelimit::TokenBucket;
use foundation::sync::{scope, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

struct Echo;

impl Service for Echo {
    fn handle(&self, req: &Request, ctx: &RequestCtx) -> Response {
        Response::ok().with_text(format!("{} from {}", req.url.path(), ctx.peer))
    }
}

#[test]
fn parallel_clients_share_one_fabric() {
    let net = SimNet::new(99);
    net.register_with("echo.com", Echo, LatencyModel::Fixed { us: 10 }, None);

    const THREADS: usize = 8;
    const REQUESTS: usize = 50;
    scope(|s| {
        for t in 0..THREADS {
            let net = std::sync::Arc::clone(&net);
            s.spawn(move || {
                let client = Client::new(&net, &format!("client-{t}"));
                for i in 0..REQUESTS {
                    let resp = client.get(&format!("http://echo.com/{t}/{i}")).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                }
            });
        }
    });

    // Every request was logged exactly once, and the clock advanced by
    // exactly the total fixed latency.
    assert_eq!(net.request_count(), THREADS * REQUESTS);
    let expected_us = (THREADS * REQUESTS) as u64 * 10;
    let elapsed = net.clock().now_us()
        - acctrade_net::clock::COLLECTION_START_UNIX as u64 * 1_000_000;
    assert_eq!(elapsed, expected_us);
}

#[test]
fn server_rate_limit_is_consistent_under_contention() {
    let net = SimNet::new(7);
    // A bucket that only ever grants its initial burst (refill is
    // negligible at fixed 0 latency).
    net.register_with(
        "limited.com",
        Echo,
        LatencyModel::Fixed { us: 0 },
        Some((0.000_001, 10.0)),
    );
    let ok_count = AtomicUsize::new(0);
    scope(|s| {
        for t in 0..4 {
            let net = std::sync::Arc::clone(&net);
            let ok_count = &ok_count;
            s.spawn(move || {
                let client = Client::new(&net, &format!("c{t}"));
                for i in 0..20 {
                    let resp = client.get(&format!("http://limited.com/{t}/{i}")).unwrap();
                    if resp.status == Status::Ok {
                        ok_count.fetch_add(1, Ordering::Relaxed);
                    } else {
                        assert_eq!(resp.status, Status::TooManyRequests);
                    }
                }
            });
        }
    });
    // The burst is 10 tokens: exactly 10 requests succeed, however the
    // threads interleave.
    assert_eq!(ok_count.into_inner(), 10);
}

/// Deterministic many-thread stress on a *shared* token bucket: 8 worker
/// threads hammer one `Mutex<TokenBucket>` while a virtual clock ticks
/// forward atomically. Whatever the interleaving, the number of grants is
/// bounded by `burst + rate * elapsed` (no token is ever minted twice),
/// and the post-hoc bucket state agrees with the grant count.
#[test]
fn shared_token_bucket_conserves_tokens_across_eight_threads() {
    const THREADS: usize = 8;
    const ATTEMPTS_PER_THREAD: usize = 250;
    const TICK_US: u64 = 1_000; // each attempt advances virtual time 1 ms

    let rate = 20.0; // tokens per virtual second
    let burst = 5.0;
    let bucket = Mutex::new(TokenBucket::new(rate, burst, 0));
    let clock = AtomicU64::new(0);
    let grants = AtomicUsize::new(0);

    scope(|s| {
        for _ in 0..THREADS {
            let bucket = &bucket;
            let clock = &clock;
            let grants = &grants;
            s.spawn(move || {
                for _ in 0..ATTEMPTS_PER_THREAD {
                    // Advance the shared virtual clock, then try at the
                    // post-advance instant. `fetch_add` makes every thread
                    // observe a distinct, monotone timestamp.
                    let now = clock.fetch_add(TICK_US, Ordering::SeqCst) + TICK_US;
                    if bucket.lock().try_acquire(now) {
                        grants.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    let total_attempts = THREADS * ATTEMPTS_PER_THREAD;
    let final_us = clock.load(Ordering::SeqCst);
    assert_eq!(final_us, total_attempts as u64 * TICK_US);

    let granted = grants.into_inner();
    let elapsed_s = final_us as f64 / 1e6;
    let minted = burst + rate * elapsed_s; // 5 + 20 * 2s = 45 tokens ever
    // Conservation: can't grant more tokens than were ever minted.
    assert!(
        (granted as f64) <= minted + 1e-9,
        "granted={granted} exceeds mint cap {minted}"
    );
    // Utilisation: 2 000 attempts chase 45 tokens, so contention can't
    // starve the bucket — every refilled token finds a taker (the only
    // slack is sub-token residue plus the few ticks the full bucket
    // absorbs at startup before the burst drains).
    let lower = (rate * elapsed_s).floor() as usize; // refill alone, sans burst
    assert!(
        granted >= lower - 1,
        "granted={granted} below refill floor {lower}"
    );
    // Post-hoc ledger: grants + residue ≈ minted. The tolerance covers
    // float residue and the ≤ `THREADS` capped ticks at startup.
    let remaining = bucket.into_inner().available(final_us);
    let ledger = granted as f64 + remaining;
    assert!(
        (minted - ledger).abs() < 1.0 + THREADS as f64 * rate * (TICK_US as f64 / 1e6),
        "ledger {ledger} vs minted {minted}"
    );
}

/// Crawl etiquette under sharding: when two shard clients (forked with
/// `host_share = 2`) crawl the *same* host from two OS threads, their
/// combined request stream — in virtual time, across both lanes — must
/// never exceed what ONE sequential polite crawler with the full
/// (rate, burst) budget would have issued. Parallelism is allowed to
/// change wall-clock time, never request density against a host.
#[test]
fn two_shards_on_one_host_respect_the_single_crawler_budget() {
    let net = SimNet::new(17);
    net.register_with("market.example", Echo, LatencyModel::Fixed { us: 2_000 }, None);

    let rate = 4.0; // the host's etiquette budget, requests per virtual second
    let burst = 4.0;
    let base = Client::new(&net, "acctrade-crawler/0.1").with_politeness(rate, burst);

    const PER_SHARD: usize = 30;
    let lanes = [net.lane(0xA11CE), net.lane(0xB0B)];
    assert_eq!(lanes[0].start_us(), lanes[1].start_us(), "shards start together");
    scope(|s| {
        for lane in &lanes {
            let shard = base.fork_for_shard(std::sync::Arc::clone(lane), 2);
            s.spawn(move || {
                for i in 0..PER_SHARD {
                    let resp = shard.get(&format!("http://market.example/page/{i}")).unwrap();
                    assert_eq!(resp.status, Status::Ok);
                }
            });
        }
    });
    for lane in &lanes {
        net.absorb_lane(lane);
    }

    let mut stamps: Vec<u64> = net
        .log_snapshot()
        .into_iter()
        .filter(|e| e.host == "market.example")
        .map(|e| e.at_us)
        .collect();
    assert_eq!(stamps.len(), 2 * PER_SHARD, "every request logged exactly once");
    stamps.sort_unstable();

    // Cumulative budget: after any prefix, the combined shards have not
    // out-requested a single (rate, burst) token bucket.
    let start = lanes[0].start_us();
    for (i, &t) in stamps.iter().enumerate() {
        let elapsed_s = (t - start) as f64 / 1e6;
        let cap = burst + rate * elapsed_s + 1e-6;
        assert!(
            (i + 1) as f64 <= cap,
            "request {} at {elapsed_s:.3}s virtual exceeds the one-crawler cap {cap:.2}",
            i + 1,
        );
    }
    // Sliding-window density: no one-second window of virtual time sees
    // more than burst + rate combined requests.
    for (i, &t) in stamps.iter().enumerate() {
        let in_window = stamps[i..].iter().take_while(|&&u| u < t + 1_000_000).count();
        assert!(
            in_window as f64 <= burst + rate + 1e-6,
            "{in_window} requests inside one virtual second starting at {t}us"
        );
    }
    // The shards were genuinely throttled, not just fast: 60 requests
    // against a 4/s budget force at least (60 - burst) / rate seconds.
    let span_s = (stamps[stamps.len() - 1] - start) as f64 / 1e6;
    assert!(span_s >= (2.0 * PER_SHARD as f64 - burst) / rate - 1.0, "span {span_s:.1}s");
}

/// Grant counts are interleaving-independent in both forced regimes:
/// a starved bucket grants exactly its burst, a saturated bucket grants
/// every attempt — run twice, the counts must agree exactly.
#[test]
fn shared_bucket_grant_count_is_run_deterministic() {
    /// 8 threads, 100 attempts each, 10 ms virtual ticks.
    fn run(rate: f64, burst: f64) -> usize {
        const THREADS: usize = 8;
        const ATTEMPTS: usize = 100;
        let bucket = Mutex::new(TokenBucket::new(rate, burst, 0));
        let clock = AtomicU64::new(0);
        let grants = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..THREADS {
                let (bucket, clock, grants) = (&bucket, &clock, &grants);
                s.spawn(move || {
                    for _ in 0..ATTEMPTS {
                        let now = clock.fetch_add(10_000, Ordering::SeqCst) + 10_000;
                        if bucket.lock().try_acquire(now) {
                            grants.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        grants.into_inner()
    }

    // Starvation: 0.01 tokens/s over 8 virtual seconds refills 0.08 of a
    // token — only the burst is ever grantable, whatever the schedule.
    assert_eq!(run(0.01, 6.0), 6);
    assert_eq!(run(0.01, 6.0), 6);

    // Saturation: 1 000 tokens/s mints 10 per tick against 1 consumer
    // attempt per tick — every one of the 800 attempts succeeds.
    assert_eq!(run(1_000.0, 16.0), 800);
    assert_eq!(run(1_000.0, 16.0), 800);
}
