//! # acctrade
//!
//! Facade crate for the `acctrade` workspace — a full-system Rust
//! reproduction of *"Exploration of the Dynamics of Buy and Sale of Social
//! Media Accounts"* (IMC 2025).
//!
//! The paper is a measurement study of marketplaces that sell social media
//! accounts. This workspace rebuilds the entire measured ecosystem as a
//! deterministic simulation (marketplaces, underground Tor forums, five
//! social platforms, the network between them) plus the paper's measurement
//! pipeline (crawler, profile resolver, NLP scam-post clustering, network
//! analysis, efficacy audit) from scratch in Rust.
//!
//! Start with [`study`] ([`acctrade_core::study`]) to run the end-to-end
//! pipeline, or see the `examples/` directory:
//!
//! * `quickstart` — small world, one marketplace, first numbers in seconds;
//! * `full_study` — every table and figure from the paper;
//! * `scam_pipeline` — the post-clustering NLP pipeline in isolation;
//! * `underground_recon` — Tor-forum manual collection and listing
//!   similarity;
//! * `efficacy_audit` — platform moderation and blocking efficacy;
//! * `indicator_eval` — §9's proposed detection indicators, deployed and
//!   scored against ground truth.

pub use ::conformance;
pub use acctrade_core as core;
pub use acctrade_crawler as crawler;
pub use ::economy;
pub use acctrade_html as html;
pub use acctrade_httpd as httpd;
pub use acctrade_market as market;
pub use acctrade_net as net;
pub use acctrade_social as social;
pub use ::store;
pub use ::telemetry;
pub use acctrade_text as text;
pub use acctrade_workload as workload;

pub use acctrade_core::study;

/// Shared output-directory helper: every example and CI gate writes its
/// artifacts under `target/` (kept out of the repo by `.gitignore`), and
/// durable campaign stores under `target/store/<tag>`.
pub mod output {
    use std::path::PathBuf;

    /// The artifact root (`target/`), created on demand.
    pub fn dir() -> PathBuf {
        let dir = PathBuf::from("target");
        std::fs::create_dir_all(&dir).expect("create target/"); // conformance: allow(panic-policy) — artifact helper: an unwritable target/ should abort examples and CI
        dir
    }

    /// The path of a named artifact under [`dir`].
    pub fn artifact(name: &str) -> PathBuf {
        dir().join(name)
    }

    /// A durable campaign-store directory under `target/store/<tag>`.
    /// The parent is created on demand; the store itself owns `<tag>`.
    pub fn store_dir(tag: &str) -> PathBuf {
        let parent = dir().join("store");
        std::fs::create_dir_all(&parent).expect("create target/store/"); // conformance: allow(panic-policy) — artifact helper: an unwritable target/ should abort examples and CI
        parent.join(tag)
    }
}
