//! # acctrade
//!
//! Facade crate for the `acctrade` workspace — a full-system Rust
//! reproduction of *"Exploration of the Dynamics of Buy and Sale of Social
//! Media Accounts"* (IMC 2025).
//!
//! The paper is a measurement study of marketplaces that sell social media
//! accounts. This workspace rebuilds the entire measured ecosystem as a
//! deterministic simulation (marketplaces, underground Tor forums, five
//! social platforms, the network between them) plus the paper's measurement
//! pipeline (crawler, profile resolver, NLP scam-post clustering, network
//! analysis, efficacy audit) from scratch in Rust.
//!
//! Start with [`study`] ([`acctrade_core::study`]) to run the end-to-end
//! pipeline, or see the `examples/` directory:
//!
//! * `quickstart` — small world, one marketplace, first numbers in seconds;
//! * `full_study` — every table and figure from the paper;
//! * `scam_pipeline` — the post-clustering NLP pipeline in isolation;
//! * `underground_recon` — Tor-forum manual collection and listing
//!   similarity;
//! * `efficacy_audit` — platform moderation and blocking efficacy;
//! * `indicator_eval` — §9's proposed detection indicators, deployed and
//!   scored against ground truth.

pub use acctrade_core as core;
pub use acctrade_crawler as crawler;
pub use acctrade_html as html;
pub use acctrade_market as market;
pub use acctrade_net as net;
pub use acctrade_social as social;
pub use ::telemetry;
pub use acctrade_text as text;
pub use acctrade_workload as workload;

pub use acctrade_core::study;
